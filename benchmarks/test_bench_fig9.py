"""Figure 9 — fraction of packets dropped by the wormhole and fraction of
malicious routes vs. the number of compromised nodes (M = 0..4), with and
without LITEWORP, snapshot at the end of the run.

Paper shape: with 0 or 1 compromised node there is no adverse effect; the
baseline fractions grow with M (nonlinearly — wormhole routes attract a
disproportionate share of traffic); with LITEWORP both fractions stay near
zero for every M.  Scaled from the paper's 2000 s / 30 runs.
"""

from repro.experiments.figures import run_fig9
from repro.experiments.scenario import ScenarioConfig

BASE = ScenarioConfig(n_nodes=100, duration=300.0, seed=8, attack_start=50.0)


def compute():
    return run_fig9(base=BASE, malicious_counts=(0, 1, 2, 3, 4), runs=1)


def test_bench_fig9(benchmark, record_output):
    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_output("fig9_fractions_vs_M", result.format())

    dropped = result.fraction_dropped
    mal_routes = result.fraction_malicious_routes
    # M = 0 and M = 1: no wormhole, no effect (tunnel modes need 2).
    for m in (0, 1):
        assert dropped[(m, False)] == 0.0
        assert mal_routes[(m, False)] == 0.0
    # Baseline damage present at M >= 2 and larger at M = 4 than M = 2.
    assert dropped[(2, False)] > 0.005
    assert mal_routes[(2, False)] > 0.02
    assert dropped[(4, False)] >= dropped[(2, False)] * 0.5
    # LITEWORP keeps the fractions near zero at every M.
    for m in (2, 3, 4):
        assert dropped[(m, True)] < max(0.01, dropped[(m, False)] / 3)
        assert mal_routes[(m, True)] < mal_routes[(m, False)]
