"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures, prints
the series, persists it under ``benchmarks/output/``, and asserts the
qualitative shape the paper reports.  Scaled-down defaults (duration,
replications) keep the suite in the minutes range; the paper-fidelity
parameters are documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def record_output(output_dir):
    """Write a named experiment artifact and echo it to stdout."""

    def _record(name: str, text: str) -> None:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return _record
