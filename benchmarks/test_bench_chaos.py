"""Robustness under fault injection — the liveness layer's headline
result (DESIGN.md section 5b item 5, ablatable via
``heartbeat_period=None``).

One chaos run crashes 20% of the wormhole's guard pool mid-attack and
adds a 10% ambient-loss burst, then asks two questions of each arm:

- **liveness on** — detection must survive the churn (the wormhole is
  still detected and revoked by surviving guards) and *no* crashed honest
  node may be falsely isolated: silence is adjudicated by the failure
  detector, not read as malice.
- **liveness off** (the paper's crash-naive behaviour) — the same plan
  falsely isolates at least one crashed honest guard, demonstrating the
  failure mode the refinement removes.

The report is additionally checked for byte-identical determinism: the
same seed and fault plan must reproduce the exact same output.
"""

from repro.experiments.chaos import ChaosConfig, run_chaos

SEED = 1


def compute():
    on = run_chaos(ChaosConfig(seed=SEED, liveness=True))
    off = run_chaos(ChaosConfig(seed=SEED, liveness=False))
    replay = run_chaos(ChaosConfig(seed=SEED, liveness=True))
    return on, off, replay


def test_bench_chaos(benchmark, record_output):
    on, off, replay = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_output(
        "chaos_liveness",
        "\n\n".join([on.format(), off.format()]),
    )

    # The fault plan is identical in both arms: same crashed guards.
    assert on.plan == off.plan
    assert on.robustness.crashed_honest == off.robustness.crashed_honest
    assert len(on.robustness.crashed_honest) >= 1

    # Detection survives the churn with the liveness layer on.
    assert on.wormhole_detected
    assert on.wormhole_revoked
    assert on.robustness.detection_latency is not None

    # No crashed honest node is mistaken for a wormhole...
    assert on.robustness.falsely_isolated == ()
    # ...whereas the crash-naive ablation falsely isolates at least one.
    assert len(off.robustness.falsely_isolated) >= 1
    assert set(off.robustness.falsely_isolated) <= set(off.robustness.crashed_honest)

    # The failure detector actually ran (and only in the on arm).
    assert on.robustness.deaths_declared > 0
    assert off.robustness.deaths_declared == 0

    # Acked dissemination: most unique alerts are delivered, some retried.
    assert on.robustness.alert_delivery_ratio is not None
    assert on.robustness.alert_delivery_ratio > 0.5

    # Same seed + same plan => byte-identical report.
    assert replay.format() == on.format()
    assert replay.robustness.format() == on.robustness.format()
