"""Table 1 — the wormhole attack-mode taxonomy."""

from repro.attacks.taxonomy import ATTACK_MODES, taxonomy_table


def render() -> str:
    lines = ["Mode name                 | Min #compromised | Special requirements"]
    lines.append("-" * len(lines[0]))
    for name, count, requirements in taxonomy_table():
        lines.append(f"{name:25s} | {count:16d} | {requirements}")
    return "\n".join(lines)


def test_bench_table1(benchmark, record_output):
    text = benchmark.pedantic(render, rounds=1, iterations=1)
    record_output("table1_taxonomy", text)
    rows = taxonomy_table()
    assert len(rows) == 5
    assert rows[0] == ("Packet encapsulation", 2, "None")
    assert rows[-1] == ("Protocol deviations", 1, "None")
    # LITEWORP handles all but the protocol-deviation mode (paper 4.2.3).
    assert sum(1 for m in ATTACK_MODES if m.liteworp_detects) == 4
