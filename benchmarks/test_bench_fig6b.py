"""Figure 6(b) — analytical probability of false alarm vs. the number of
neighbors (same parameters as figure 6(a)).

Paper shape: non-monotonic (rises while extra guards add opportunities for
false suspicion, falls when collisions mask both observations), negligible
everywhere.
"""

from repro.analysis.coverage import CoverageParams, false_alarm_vs_neighbors

NEIGHBOR_COUNTS = list(range(4, 61, 2))


def compute():
    return false_alarm_vs_neighbors(NEIGHBOR_COUNTS, CoverageParams())


def render(series) -> str:
    lines = ["N_B   P(false alarm)"]
    for n_b, p in series:
        lines.append(f"{n_b:4.0f}  {p:12.3e}")
    return "\n".join(lines)


def test_bench_fig6b(benchmark, record_output):
    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_output("fig6b_false_alarm_vs_neighbors", render(series))
    values = [p for _, p in series]
    # Non-monotonic with an interior peak.
    peak_index = values.index(max(values))
    assert 0 < peak_index < len(values) - 1
    # Negligible everywhere; tiny at the paper's operating density (N_B=8).
    assert max(values) < 0.01
    at_operating_density = dict(series)[8.0]
    assert at_operating_density < 1e-4
