"""Ablation — routing metric vs. the encapsulation wormhole (paper 3.1).

The paper notes that ARAN's fastest-reply metric incidentally defeats the
encapsulation mode: the tunnelled copy hides hop count but cannot beat the
direct flood in *time* (it still crosses the same physical hops).  With
the shortest-hop metric the hidden hop count wins routes; with the
first-arrival metric it does not.

Nuance surfaced by the reproduction: the claim only holds when the
tunnel's per-hop latency is at least the flood's per-hop latency.  Flooded
requests deliberately back off before rebroadcast (collision avoidance),
while encapsulated unicasts do not — so an aggressive tunnel can beat the
flood in time as well.  This bench sets the encapsulation per-hop delay to
the flood's per-hop average (the paper's implicit assumption: the tunnel
rides ordinary multihop forwarding with ordinary queueing).
"""

from dataclasses import replace

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.routing.config import RoutingConfig

BASE = ScenarioConfig(
    n_nodes=40,
    duration=220.0,
    seed=6,
    attack_mode="encapsulation",
    attack_start=40.0,
    defense="none",  # isolate the routing-metric effect
    encap_hop_delay=0.30,  # ~ the flood's per-hop latency (jitter mean + MAC)
)


def compute():
    shortest = build_scenario(
        replace(BASE, routing=RoutingConfig(metric="shortest"))
    ).run()
    first = build_scenario(replace(BASE, routing=RoutingConfig(metric="first"))).run()
    return shortest, first


def test_bench_ablation_metric(benchmark, record_output):
    shortest, first = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = (
        f"encapsulation vs shortest-hop metric : malicious routes "
        f"{shortest.malicious_routes}/{shortest.routes_established} "
        f"({shortest.fraction_malicious_routes:.3f}), drops {shortest.wormhole_drops}\n"
        f"encapsulation vs first-arrival (ARAN): malicious routes "
        f"{first.malicious_routes}/{first.routes_established} "
        f"({first.fraction_malicious_routes:.3f}), drops {first.wormhole_drops}"
    )
    record_output("ablation_routing_metric", text)
    # Shortest-hop is exploitable by the encapsulation wormhole...
    assert shortest.fraction_malicious_routes > 0.03
    # ...the ARAN-style first-arrival metric blunts it substantially.
    assert first.fraction_malicious_routes < shortest.fraction_malicious_routes
