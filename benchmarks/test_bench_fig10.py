"""Figure 10 — detection probability (simulated and analytical) and
isolation latency vs. the detection confidence index θ, at N_B = 15 with
M = 2 colluders.

Paper shape: detection probability decreases as θ grows (more guards must
alert despite collisions); isolation latency increases with θ but stays
small (tens of seconds).  Scaled from the paper's 30-run averages.
"""

import math

from repro.experiments.figures import run_fig10
from repro.experiments.scenario import ScenarioConfig

BASE = ScenarioConfig(
    n_nodes=60, avg_neighbors=15.0, duration=250.0, seed=8, attack_start=50.0
)
THETAS = (2, 3, 4, 5, 6, 7, 8)


def compute():
    return run_fig10(base=BASE, thetas=THETAS, runs=2, analytical_neighbors=15.0)


def test_bench_fig10(benchmark, record_output):
    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_output("fig10_detection_vs_theta", result.format())

    # Analytical curve is monotone non-increasing in theta.
    analytic = [result.analytical_detection[t] for t in THETAS]
    assert all(b <= a + 1e-12 for a, b in zip(analytic, analytic[1:]))
    # Simulated detection: high at small theta, no higher at the largest
    # theta than at the smallest (trend matches the analysis).
    assert result.sim_detection[2] >= 0.5
    assert result.sim_detection[THETAS[-1]] <= result.sim_detection[2] + 1e-9
    # Isolation latency at the easy end is finite and small.
    easy_latency = result.sim_latency[2]
    assert easy_latency is not None and easy_latency < 120.0
    # Where both ends have latencies, the hard end is not faster.
    hard_latency = result.sim_latency[THETAS[-1]]
    if hard_latency is not None and not math.isnan(hard_latency):
        assert hard_latency >= easy_latency * 0.5
