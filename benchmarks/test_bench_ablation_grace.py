"""Ablation — the collision-awareness grace window (our engineering
refinement over the paper, DESIGN.md section 5).

Sweeping the fabrication grace shows the tradeoff the refinement buys:

- grace 0 (the paper's raw counter): honest nodes accumulate false MalC
  mass from collision-induced misses;
- larger grace: honest false accusations collapse, at the cost of slower
  MalC accrual against the wormhole (isolation latency grows).
"""

from dataclasses import replace

from repro.core.config import LiteworpConfig
from repro.experiments.scenario import ScenarioConfig, build_scenario

BASE = ScenarioConfig(n_nodes=30, duration=200.0, seed=5, attack_start=40.0)
GRACES = (0.0, 0.5, 1.5, 3.0)


def compute():
    rows = []
    for grace in GRACES:
        config = replace(BASE, liteworp=LiteworpConfig(fabrication_grace=grace))
        scenario = build_scenario(config)
        report = scenario.run()
        bad = set(scenario.malicious_ids)
        false_mass = sum(
            record["value"]
            for record in scenario.trace.of_kind("malc_increment")
            if record["accused"] not in bad
        )
        latency = report.mean_isolation_latency()
        rows.append((grace, false_mass, report.wormhole_drops, latency))
    return rows


def test_bench_ablation_grace(benchmark, record_output):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = ["grace  false-MalC-mass  wormhole-drops  mean-isolation-latency"]
    for grace, false_mass, drops, latency in rows:
        latency_text = f"{latency:8.1f}" if latency is not None else "     n/a"
        lines.append(f"{grace:5.1f}  {false_mass:15d}  {drops:14d}  {latency_text}")
    record_output("ablation_fabrication_grace", "\n".join(lines))

    by_grace = {grace: (mass, drops, lat) for grace, mass, drops, lat in rows}
    # Raw counter (grace 0) accumulates far more false mass than grace 1.5.
    assert by_grace[0.0][0] > 5 * max(1, by_grace[1.5][0])
    # The default still isolates the wormhole.
    assert by_grace[1.5][2] is not None
