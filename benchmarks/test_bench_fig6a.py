"""Figure 6(a) — analytical probability of wormhole detection vs. the
number of neighbors (γ=7, κ=5, θ=3, P_C = 0.05 at N_B = 3, P_C linear in
N_B, g = 0.51·N_B).

Paper shape: rises with density (more guards), peaks, then falls rapidly
as the collision probability grows.
"""

from repro.analysis.coverage import CoverageParams, detection_vs_neighbors

NEIGHBOR_COUNTS = list(range(4, 41, 2))


def compute():
    return detection_vs_neighbors(NEIGHBOR_COUNTS, CoverageParams())


def render(series) -> str:
    lines = ["N_B   P(wormhole detection)"]
    for n_b, p in series:
        bar = "#" * int(round(p * 40))
        lines.append(f"{n_b:4.0f}  {p:8.4f}  {bar}")
    return "\n".join(lines)


def test_bench_fig6a(benchmark, record_output):
    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_output("fig6a_detection_vs_neighbors", render(series))
    values = [p for _, p in series]
    peak = max(values)
    peak_index = values.index(peak)
    # Rises to a high peak in the interior...
    assert peak > 0.95
    assert 0 < peak_index < len(values) - 1
    # ...and falls rapidly beyond it (paper: "starts to fall rapidly").
    assert values[-1] < 0.5 * peak
    # The left edge (sparse network, too few guards for theta=3) is low.
    assert values[0] < peak
