"""Comparison — LITEWORP vs. packet leashes (paper section 2).

Measures the paper's related-work arguments instead of asserting them:

1. Against a **relay wormhole** (replay-style): both defenses win, by
   different mechanisms (leash distance/spoof rejection vs. non-neighbor
   rejection).
2. Against a **colluding-insider out-of-band wormhole**: leashes are
   helpless (insiders re-leash tunnelled traffic as their own) and never
   isolate anyone; LITEWORP detects *and* removes the attackers.
3. **Overhead**: leashes pay per packet on every packet forever; LITEWORP
   pays nothing per packet (discovery at deployment, alerts on detection).
"""

from repro.experiments.scenario import ScenarioConfig, build_scenario


def run(defense, attack_mode="outofband", n_malicious=2, seed=5):
    config = ScenarioConfig(
        n_nodes=30,
        duration=180.0,
        seed=seed,
        attack_mode=attack_mode,
        n_malicious=n_malicious,
        attack_start=30.0,
        defense=defense,
    )
    scenario = build_scenario(config)
    report = scenario.run()
    return scenario, report


def compute():
    results = {}
    for defense in ("none", "geo_leash", "liteworp"):
        results[("insider", defense)] = run(defense)
        results[("relay", defense)] = run(defense, attack_mode="relay", n_malicious=1)
    return results


def render(results) -> str:
    lines = ["attack    defense     drops  mal-routes  isolated  leash-bytes"]
    for (attack, defense), (scenario, report) in sorted(results.items()):
        leash_bytes = sum(la.bytes_overhead for la in scenario.leash_agents.values())
        lines.append(
            f"{attack:9s} {defense:10s} {report.wormhole_drops:6d}  "
            f"{report.malicious_routes:4d}/{report.routes_established:<5d} "
            f"{len(report.isolation_times):8d}  {leash_bytes:10d}"
        )
    return "\n".join(lines)


def test_bench_baseline_leashes(benchmark, record_output):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_output("baseline_leashes_comparison", render(results))

    _, insider_none = results[("insider", "none")]
    _, insider_leash = results[("insider", "geo_leash")]
    _, insider_lw = results[("insider", "liteworp")]
    # Leashes do not blunt the insider wormhole; LITEWORP does.
    assert insider_leash.wormhole_drops > insider_none.wormhole_drops * 0.5
    assert insider_lw.wormhole_drops < insider_none.wormhole_drops / 3
    # Only LITEWORP removes the attackers.
    assert insider_leash.isolation_times == {}
    assert len(insider_lw.isolation_times) == 2

    _, relay_leash = results[("relay", "geo_leash")]
    _, relay_lw = results[("relay", "liteworp")]
    # Both defenses neutralise the replay-style relay.
    assert relay_leash.wormhole_drops == 0
    assert relay_lw.wormhole_drops == 0

    # Leashes pay per packet; LITEWORP pays nothing per packet.
    scenario_leash, _ = results[("insider", "geo_leash")]
    scenario_lw, _ = results[("insider", "liteworp")]
    assert sum(la.bytes_overhead for la in scenario_leash.leash_agents.values()) > 10_000
    assert scenario_lw.leash_agents == {}
