"""Figure 8 — cumulative data packets dropped by the wormhole vs. time,
100 nodes, M in {2, 4}, with and without LITEWORP.

Paper shape: without LITEWORP the cumulative count grows steadily for the
whole run (4 colluders above 2); with LITEWORP it plateaus shortly after
the wormhole is isolated (drops persist briefly on cached routes until
TOut_Route).  Scaled from the paper's 2000 s / 30 runs to 300 s / 1 run per
configuration.
"""

from repro.experiments.figures import run_fig8
from repro.experiments.scenario import ScenarioConfig

BASE = ScenarioConfig(n_nodes=100, duration=300.0, seed=8, attack_start=50.0)


def compute():
    return run_fig8(base=BASE, malicious_counts=(2, 4), runs=1, sample_interval=25.0)


def test_bench_fig8(benchmark, record_output):
    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_output("fig8_cumulative_drops", result.format())

    for m in (2, 4):
        baseline = result.series[(m, False)]
        protected = result.series[(m, True)]
        # Baseline grows steadily: the last quarter still adds drops.
        assert baseline[-1] > baseline[3 * len(baseline) // 4]
        assert baseline[-1] > 50
        # LITEWORP plateaus: a fraction of the baseline, flat at the end.
        assert protected[-1] < baseline[-1] / 3
        mid = len(protected) // 2
        assert protected[-1] - protected[mid] <= max(3.0, 0.25 * protected[-1])
    # More colluders hurt more in the baseline.
    assert result.series[(4, False)][-1] > result.series[(2, False)][-1] * 0.8
