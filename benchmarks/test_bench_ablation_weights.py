"""Ablation — MalC evidence weighting (V_f vs V_d) and watch deadline δ.

Two sweeps:

- Fabrication-only vs drop-only evidence: fabrication is the workhorse
  (it fires on every forged request); drop evidence alone is slower.
- δ too small creates false drop accusations (legitimate forwards take
  longer than the deadline); δ in a sane band does not.
"""

from dataclasses import replace

from repro.core.config import LiteworpConfig
from repro.experiments.scenario import ScenarioConfig, build_scenario

BASE = ScenarioConfig(n_nodes=30, duration=200.0, seed=5, attack_start=40.0)


def run_with(liteworp_config):
    scenario = build_scenario(replace(BASE, liteworp=liteworp_config))
    report = scenario.run()
    bad = set(scenario.malicious_ids)
    false_drop_mass = sum(
        record["value"]
        for record in scenario.trace.of_kind("malc_increment")
        if record["accused"] not in bad and record["reason"] == "drop"
    )
    return report, false_drop_mass


def compute():
    # Evidence-source ablation: only drops can never use fabrications.
    fab_only, _ = run_with(LiteworpConfig(v_fabricate=2, v_drop=1, c_t=8))
    # Give drop-evidence the same weight but ignore fabrications by making
    # them worthless relative to an unreachable threshold is not possible
    # with positive weights, so compare a drops-favoured configuration.
    drops_heavy, _ = run_with(LiteworpConfig(v_fabricate=1, v_drop=4, c_t=8))

    # Deadline ablation.
    tight_delta, tight_false = run_with(LiteworpConfig(delta=0.02))
    sane_delta, sane_false = run_with(LiteworpConfig(delta=0.8))
    return fab_only, drops_heavy, (tight_false, sane_false)


def test_bench_ablation_weights(benchmark, record_output):
    fab_only, drops_heavy, (tight_false, sane_false) = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    text = (
        f"V_f=2,V_d=1 (default): drops {fab_only.wormhole_drops}, "
        f"latency {fab_only.mean_isolation_latency()}\n"
        f"V_f=1,V_d=4 (drop-favoured): drops {drops_heavy.wormhole_drops}, "
        f"latency {drops_heavy.mean_isolation_latency()}\n"
        f"false drop-MalC mass: delta=0.02 -> {tight_false}, delta=0.8 -> {sane_false}"
    )
    record_output("ablation_weights_delta", text)
    # Both weightings detect (fabrication evidence dominates regardless).
    assert fab_only.detections > 0
    assert drops_heavy.detections > 0
    # A too-tight deadline manufactures false drop accusations.
    assert tight_false > sane_false
