"""Table 2 — simulation input parameters (and that the default scenario
actually uses them)."""

from repro.core.config import LiteworpConfig
from repro.experiments.parameters import TABLE2
from repro.experiments.scenario import ScenarioConfig


def render() -> str:
    width = max(len(name) for name, _ in TABLE2.rows())
    return "\n".join(f"{name:{width}s}  {value}" for name, value in TABLE2.rows())


def test_bench_table2(benchmark, record_output):
    text = benchmark.pedantic(render, rounds=1, iterations=1)
    record_output("table2_parameters", text)
    # The scenario defaults are wired to Table 2.
    config = ScenarioConfig()
    assert config.tx_range == TABLE2.tx_range_m
    assert config.avg_neighbors == TABLE2.avg_neighbors
    assert config.routing.route_timeout == TABLE2.route_timeout
    assert config.traffic.data_rate == TABLE2.data_rate
    assert config.traffic.destination_change_rate == TABLE2.dest_change_rate
    assert config.network.bandwidth_bps == TABLE2.channel_bandwidth_bps
    assert LiteworpConfig().malc_window == TABLE2.malc_window
    assert config.n_nodes in TABLE2.node_counts
