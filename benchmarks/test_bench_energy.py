"""Extension bench — energy cost of the defenses.

The paper argues LITEWORP suits resource-constrained nodes because it
adds no per-packet bytes.  The energy meter makes that measurable: total
radio energy under no defense, LITEWORP, and geographic leashes on the
same workload.  LITEWORP's radio energy should be within noise of the
undefended network (monitoring is passive listening the radio does
anyway), while leashes pay amplifier+electronics for the extra leash
bytes on every single transmission.
"""

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.net.energy import EnergyMeter


def run(defense):
    config = ScenarioConfig(
        n_nodes=30,
        duration=150.0,
        seed=9,
        attack_mode="none",
        n_malicious=0,
        defense=defense,
    )
    scenario = build_scenario(config)
    meter = EnergyMeter(scenario.network.channel, scenario.network.radio)
    report = scenario.run()
    return report, meter


def compute():
    return {defense: run(defense) for defense in ("none", "liteworp", "geo_leash")}


def test_bench_energy(benchmark, record_output):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = ["defense     total J     J per delivered packet"]
    per_packet = {}
    for defense, (report, meter) in results.items():
        per = meter.total() / max(1, report.delivered)
        per_packet[defense] = per
        lines.append(f"{defense:10s}  {meter.total():9.4f}  {per:12.6f}")
    record_output("energy_by_defense", "\n".join(lines))

    # LITEWORP's radio energy per delivered packet is within 15% of the
    # undefended network (it transmits nothing extra in steady state).
    assert per_packet["liteworp"] < per_packet["none"] * 1.15
    # Leashes pay for extra bytes on the air on every transmission.
    assert per_packet["geo_leash"] > per_packet["none"] * 1.10
