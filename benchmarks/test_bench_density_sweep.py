"""Headline claim — "LITEWORP can achieve 100% detection of the wormholes
for a wide range of network densities" (paper section 6).

Sweeps the network size at Table-2 density (and one denser setting) and
measures the detected fraction of colluders.  Also exercises the inverse
computation the paper highlights: the density required for a target
detection probability at a given θ.
"""

from dataclasses import replace

from repro.analysis.coverage import CoverageParams, density_for_detection
from repro.experiments.scenario import ScenarioConfig, average_runs

SETTINGS = (
    # (n_nodes, avg_neighbors)
    (20, 8.0),
    (50, 8.0),
    (100, 8.0),
    (50, 12.0),
)


def compute():
    rows = []
    for n_nodes, n_b in SETTINGS:
        config = ScenarioConfig(
            n_nodes=n_nodes,
            avg_neighbors=n_b,
            duration=260.0,
            seed=4,
            attack_start=50.0,
        )
        reports = average_runs(config, runs=2)
        attacked = sum(len(r.first_activity) for r in reports)
        detected = sum(
            1
            for r in reports
            for m in r.first_activity
            if r.isolation_latency(m) is not None
        )
        rows.append((n_nodes, n_b, attacked, detected))
    return rows


def test_bench_density_sweep(benchmark, record_output):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = ["N     N_B   colluders-active  fully-isolated"]
    for n_nodes, n_b, attacked, detected in rows:
        lines.append(f"{n_nodes:4d}  {n_b:4.0f}  {attacked:16d}  {detected:14d}")
    record_output("density_sweep_detection", "\n".join(lines))

    total_attacked = sum(r[2] for r in rows)
    total_detected = sum(r[3] for r in rows)
    assert total_attacked > 0
    # The paper claims 100%; we require near-complete isolation across the
    # sweep (short horizons can leave one end mid-isolation).
    assert total_detected >= total_attacked * 0.8


def test_bench_required_density(benchmark, record_output):
    params = CoverageParams()

    def sweep():
        return [
            (theta, density_for_detection(0.99, replace(params, theta=theta)))
            for theta in (2, 3, 4)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["theta  N_B for 99% detection"]
    for theta, needed in rows:
        text = f"{needed:8.2f}" if needed is not None else "   n/a"
        lines.append(f"{theta:5d}  {text}")
    record_output("required_density", "\n".join(lines))
    # More guards demanded -> more density needed.
    values = [needed for _, needed in rows if needed is not None]
    assert values == sorted(values)
    assert all(2.0 < v < 60.0 for v in values)
