"""Section 5.2 — the cost table (memory / computation / bandwidth).

Checks the paper's headline numbers: NBL storage under half a kilobyte at
N_B = 10, a watch buffer of ~4 entries, and negligible CPU load — and
cross-validates the model against *measured* state sizes from a live
simulation run.
"""

from repro.analysis.cost import CostModel
from repro.experiments.scenario import ScenarioConfig, build_scenario


def compute():
    model = CostModel(
        n_nodes=100, tx_range=30.0, avg_neighbors=10.0,
        avg_route_hops=4.0, route_frequency=0.25, theta=3,
    )
    return model, model.report()


def render(report) -> str:
    lines = ["Quantity                        Value        Unit"]
    for name, value, unit in report.rows():
        lines.append(f"{name:30s} {value:12.3f} {unit}")
    return "\n".join(lines)


def test_bench_cost_model(benchmark, record_output):
    model, report = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_output("cost_section52", render(report))
    # Paper: NBL under half a kilobyte at 10 neighbors.
    assert report.neighbor_list_bytes < 512
    # Paper: a watch buffer of 4 entries is more than enough.
    assert report.watch_entries_steady_state < 4
    # Lightweight: everything in ~1 KB, CPU use well under capacity.
    assert report.total_memory_bytes < 1200
    assert report.cpu_utilisation < 0.5


def test_bench_cost_measured_against_model(benchmark, record_output):
    """Measured watch-buffer peaks and table sizes from a real run stay
    within the provisioned model."""

    def run():
        scenario = build_scenario(
            ScenarioConfig(n_nodes=50, duration=200.0, seed=11, attack_start=40.0)
        )
        scenario.run()
        peaks = [a.monitor.watch_buffer_peak for a in scenario.agents.values()]
        storages = [a.table.storage_bytes() for a in scenario.agents.values()]
        return peaks, storages

    peaks, storages = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        f"watch-buffer peak: max={max(peaks)} mean={sum(peaks)/len(peaks):.2f}\n"
        f"neighbor-table bytes: max={max(storages)} mean={sum(storages)/len(storages):.1f}"
    )
    record_output("cost_measured", text)
    assert max(peaks) <= 24
    assert sum(peaks) / len(peaks) < 6
    assert max(storages) < 1500  # a dense node can exceed the N_B=10 average
