"""Ablation — the second-hop legitimacy check.

Against the *naive* wormhole (far end announces its colluder as previous
hop), the second-hop check alone kills the attack at every receiver.  With
the check disabled, the naive wormhole behaves like the smart one and only
local monitoring (guards) catches it.
"""

from dataclasses import replace

from repro.core.config import LiteworpConfig
from repro.experiments.scenario import ScenarioConfig, build_scenario

BASE = ScenarioConfig(
    n_nodes=30, duration=200.0, seed=5, attack_start=40.0, fake_prev_strategy="naive"
)


def compute():
    with_check = build_scenario(BASE).run()
    scenario_off = build_scenario(
        replace(BASE, liteworp=LiteworpConfig(second_hop_check=False))
    )
    without_check = scenario_off.run()
    return with_check, without_check, scenario_off


def test_bench_ablation_secondhop(benchmark, record_output):
    with_check, without_check, scenario_off = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    text = (
        f"naive wormhole, second-hop check ON : malicious routes "
        f"{with_check.malicious_routes}/{with_check.routes_established}, "
        f"drops {with_check.wormhole_drops}\n"
        f"naive wormhole, second-hop check OFF: malicious routes "
        f"{without_check.malicious_routes}/{without_check.routes_established}, "
        f"drops {without_check.wormhole_drops}, "
        f"isolated {len(without_check.isolation_times)}/2 colluders"
    )
    record_output("ablation_secondhop", text)
    # With the check: the naive wormhole gains essentially nothing.
    assert with_check.malicious_routes <= 2
    # Without it: the attack works at least as well (usually better)...
    assert without_check.malicious_routes >= with_check.malicious_routes
    # ...but local monitoring still detects the colluders eventually.
    assert scenario_off.trace.count("guard_detection") > 0
