"""Mobility extension demo (paper section 7 future work).

A 3x3 deployment where three nodes wander under random-waypoint motion.
The dynamic secure neighbor-discovery layer keeps every LITEWORP table
consistent with the changing radio topology, a keyless outsider that
drifts through the field is never admitted, and a node that was revoked
stays revoked wherever it goes.

Run:  python examples/mobile_network.py
"""

import random

from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.crypto.keys import PairwiseKeyManager
from repro.mobility.dynamic import DynamicNeighborhood
from repro.mobility.waypoint import RandomWaypointModel, WaypointConfig
from repro.net.network import Network
from repro.net.topology import grid_topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog

OUTSIDER = 8
MOBILE = (0, 4, OUTSIDER)


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(seed=2)
    trace = TraceLog()
    topology = grid_topology(columns=3, rows=3, spacing=25.0, tx_range=30.0)
    network = Network(sim, topology, rng, trace=trace)
    keys = PairwiseKeyManager()

    agents = {}
    for node_id in topology.node_ids:
        agent = LiteworpAgent(
            sim, network.node(node_id), keys.enroll(node_id), LiteworpConfig(), trace
        )
        agent.install_oracle(topology.adjacency())
        agents[node_id] = agent

    dynamic = DynamicNeighborhood(
        sim, network.radio, agents, trace, handshake_latency=0.2, keyless={OUTSIDER}
    )
    model = RandomWaypointModel(
        sim, network.radio, MOBILE,
        WaypointConfig(field_side=60.0, min_speed=2.0, max_speed=6.0, pause_time=1.0),
        rng.stream("mobility"),
    )
    model.subscribe(dynamic.on_position_update)

    # Pre-revoke node 4 at node 1 to show revocations travel with the node.
    agents[1].table.revoke(4)

    model.start()
    sim.run(until=90.0)
    model.stop()
    sim.run(until=92.0)

    print(f"links formed: {dynamic.links_formed}, broken: {dynamic.links_broken}, "
          f"handshakes rejected (keyless outsider): {dynamic.handshakes_rejected}")

    print("\nTables vs radio ground truth after 90 s of motion:")
    consistent = True
    for node_id, agent in agents.items():
        if node_id == OUTSIDER:
            continue  # the keyless node can never verify anyone
        truth = set(network.radio.neighbors(node_id))
        believed = set(agent.table.active_neighbors())
        # Node 1 deliberately excludes revoked node 4; the outsider is
        # never admitted anywhere.
        truth.discard(OUTSIDER)
        if node_id == 1:
            truth.discard(4)
        marker = "ok " if believed == truth else "DIFF"
        if believed != truth:
            consistent = False
        print(f"  [{marker}] node {node_id}: believes {sorted(believed)}, truth {sorted(truth)}")
    print(f"\nall tables consistent: {consistent}")
    print(f"outsider {OUTSIDER} admitted anywhere: "
          f"{any(a.table.is_active_neighbor(OUTSIDER) for a in agents.values())}")
    refused = trace.count("mobile_admission_refused", node=1, revoked=4)
    print(f"node 1 refused re-admitting revoked node 4: {bool(refused) or not agents[1].table.is_active_neighbor(4)}")


if __name__ == "__main__":
    main()
