"""Defense × attack matrix: every registered scheme against three wormholes.

Runs the matrix campaign through ``repro.api`` — one journaled campaign
per attack mode (malicious-node counts co-vary with the mode, so the
attack axis cannot live inside a single campaign grid) — then renders
the markdown report the ``repro matrix`` CLI prints: detection rate,
isolation latency, delivery, and wormhole-drop grids with one row per
defense and one column per attack.

The same study, from the shell:

    python -m repro matrix --nodes 24 --duration 90 --runs 2 \
        --journal-dir .repro-matrix --md matrix.md --out matrix.json

Run:  python examples/defense_matrix.py
"""

import tempfile
from pathlib import Path

from repro import api

SPEC = api.MatrixSpec(
    name="example-matrix",
    base=api.ScenarioConfig(n_nodes=24, duration=90.0, seed=7,
                            attack_start=25.0),
    # defenses=() means "every registered defense" — including any
    # third-party plugin added via api.register_defense().
    attacks=("outofband", "highpower", "relay"),
    runs=2,
)


def main() -> None:
    print(f"defenses under test: {', '.join(api.available_defenses())}")
    print(f"{SPEC.total_jobs()} jobs "
          f"({len(SPEC.attacks)} attacks x {len(api.available_defenses())} "
          f"defenses x {SPEC.runs} runs)\n")

    with tempfile.TemporaryDirectory(prefix="repro-matrix-") as temp:
        result = api.matrix(SPEC, journal_dir=Path(temp) / "journals")
        if not result.complete:
            raise SystemExit(f"matrix interrupted: {result.format()}")
        print(result.report.to_markdown())


if __name__ == "__main__":
    main()
