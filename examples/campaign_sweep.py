"""Campaign walkthrough: a resumable grid study through ``repro.api``.

Declares a small campaign in Python (the same shape TOML/JSON specs
load into), runs it with a journal, then kills-and-resumes it to show
the resume contract: no finished job re-runs, and the resumed aggregate
is byte-identical to the uninterrupted one.

Run:  python examples/campaign_sweep.py
"""

import json
import tempfile
from pathlib import Path

from repro import api

SPEC = {
    "name": "example-grid",
    "runs": 2,
    "base": {"n_nodes": 20, "duration": 60.0, "seed": 7, "attack_start": 20.0},
    "axes": {
        "n_malicious": [0, 2],
        "defense": ["none", "liteworp"],
    },
}


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as temp:
        journal = Path(temp) / "example.journal.jsonl"

        print("uninterrupted reference run:")
        reference = api.campaign(SPEC, journal=Path(temp) / "reference.jsonl")
        print(reference.format())
        print()

        # Simulate a crash: stop after 3 of the 8 jobs...
        interrupted = api.campaign(SPEC, journal=journal, max_jobs=3)
        print(f"interrupted: {interrupted.completed_jobs}/"
              f"{interrupted.total_jobs} jobs journaled, "
              f"complete={interrupted.complete}")

        # ...then resume: only the missing 5 execute.
        resumed = api.campaign(SPEC, journal=journal, resume=True)
        print(f"resumed: {resumed.from_journal} from journal, "
              f"{resumed.executed} executed")

        identical = json.dumps(resumed.aggregate, sort_keys=True) == json.dumps(
            reference.aggregate, sort_keys=True
        )
        print(f"aggregate byte-identical to the uninterrupted run: {identical}")


if __name__ == "__main__":
    main()
