"""Data aggregation under a wormhole, with a field picture.

Builds a TinyOS-style beacon tree over a 6x5 grid, runs COUNT aggregation
(every epoch the sink should see all 29 other nodes), then activates a
beacon wormhole that captures a distant subtree and swallows its partial
aggregates.  The sink's count drops — the paper's "wormhole affects data
aggregation" claim, measured.

Run:  python examples/aggregation_under_attack.py
"""

from repro.aggregation.tree import COUNT, AggregationConfig, TreeAggregation
from repro.net.topology import grid_topology
from repro.routing.beacon import BeaconConfig, BeaconTreeRouting, WormholeBeaconRouting
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog
from repro.net.network import Network
from repro.viz import render_field

SINK = 0
WORMHOLE = (1, 28)  # near end beside the sink, far end across the field


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(seed=4)
    trace = TraceLog()
    topology = grid_topology(columns=6, rows=5, spacing=22.0, tx_range=30.0)
    network = Network(sim, topology, rng, trace=trace)

    trees, aggs, colluders = {}, {}, []
    for node_id in topology.node_ids:
        node = network.node(node_id)
        stream = rng.stream(f"b:{node_id}")
        if node_id in WORMHOLE:
            tree = WormholeBeaconRouting(
                sim, node, BeaconConfig(beacon_interval=5.0), trace, stream, SINK,
                network=network,
            )
            colluders.append(tree)
        else:
            tree = BeaconTreeRouting(
                sim, node, BeaconConfig(beacon_interval=5.0), trace, stream, SINK
            )
        trees[node_id] = tree
        agg = TreeAggregation(
            sim, tree,
            AggregationConfig(kind=COUNT, epoch_interval=10.0, depth_slot=0.3),
            trace, reading_fn=lambda node, epoch: 1.0,
        )
        agg.start()
        aggs[node_id] = agg
    colluders[0].pair_with(colluders[1])
    trees[SINK].start()

    print(render_field(topology.positions, malicious=WORMHOLE, highlight=[SINK],
                       width=48, height=14))
    print("* sink   W wormhole ends\n")

    sim.run(until=16.0)
    clean = trace.of_kind("aggregate_result")[-1]
    print(f"clean epoch:     sink counted {clean['count']:2.0f} of "
          f"{topology.size - 1} reporting nodes")

    for colluder in colluders:
        colluder.activate()
        aggs[colluder.node.node_id].stop()  # swallow children's partials
    sim.run(until=60.0)
    corrupted = trace.of_kind("aggregate_result")[-1]
    print(f"under wormhole:  sink counted {corrupted['count']:2.0f} "
          f"(the captured subtree vanished silently)")
    missing = clean["count"] - corrupted["count"]
    print(f"\nthe wormhole suppressed {missing:.0f} nodes' readings without "
          f"any visible failure at the sink")


if __name__ == "__main__":
    main()
