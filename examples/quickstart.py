"""Quickstart: a wormhole attack with and without LITEWORP.

Builds a 50-node sensor network (Table 2 parameters), launches an
out-of-band wormhole between two colluders at t = 40 s, and compares the
unprotected network against one running LITEWORP.

Run:  python examples/quickstart.py
"""

from repro.api import ScenarioConfig, build_scenario


def run(defense: str):
    config = ScenarioConfig(
        n_nodes=50,
        duration=240.0,
        seed=42,
        attack_mode="outofband",
        n_malicious=2,
        attack_start=40.0,
        defense=defense,
    )
    scenario = build_scenario(config)
    report = scenario.run()
    return scenario, report


def main() -> None:
    print("LITEWORP quickstart — out-of-band wormhole, 50 nodes, 240 s")
    print()

    base_scenario, base = run(defense="none")
    lw_scenario, protected = run(defense="liteworp")

    print(f"colluders: {base_scenario.malicious_ids}")
    print()
    print(f"{'':32s}{'baseline':>12s}{'LITEWORP':>12s}")
    print(f"{'data packets originated':32s}{base.originated:12d}{protected.originated:12d}")
    print(f"{'data packets delivered':32s}{base.delivered:12d}{protected.delivered:12d}")
    print(f"{'swallowed by the wormhole':32s}{base.wormhole_drops:12d}{protected.wormhole_drops:12d}")
    print(f"{'routes established':32s}{base.routes_established:12d}{protected.routes_established:12d}")
    print(f"{'routes through the wormhole':32s}{base.malicious_routes:12d}{protected.malicious_routes:12d}")
    print()

    if protected.isolation_times:
        print("isolation of the colluders (LITEWORP):")
        for node in sorted(protected.isolation_times):
            latency = protected.isolation_latency(node)
            print(f"  node {node}: fully isolated {latency:.1f} s after its first malicious act")
    else:
        print("the wormhole was not fully isolated within the horizon")
    print()

    guard_detections = lw_scenario.trace.count("guard_detection")
    alerts = sum(a.isolation.alerts_sent for a in lw_scenario.agents.values())
    print(f"guard detections: {guard_detections}, alerts sent: {alerts}")
    print()
    factor = base.wormhole_drops / max(1, protected.wormhole_drops)
    print(f"LITEWORP cut wormhole data loss by a factor of ~{factor:.0f}x")


if __name__ == "__main__":
    main()
