"""Secure two-hop neighbor discovery, message by message (paper 4.2.1).

Runs the HELLO / authenticated-reply / neighbor-list protocol on a small
deployment that includes one *outsider* node without cryptographic keys,
and shows that:

- every legitimate node ends up with complete first- and second-hop tables;
- the outsider is in nobody's neighbor list (its replies cannot verify);
- after activation, frames from the outsider are rejected.

Run:  python examples/secure_neighbor_discovery.py
"""

from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.crypto.keys import PairwiseKeyManager
from repro.net.network import Network
from repro.net.packet import Frame, RouteRequest
from repro.net.topology import grid_topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog

OUTSIDER = 4  # the center of the grid, surrounded by honest nodes


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(seed=3)
    trace = TraceLog()
    topology = grid_topology(columns=3, rows=3, spacing=25.0, tx_range=30.0)
    network = Network(sim, topology, rng, trace=trace)
    keys = PairwiseKeyManager()
    config = LiteworpConfig()

    agents = {}
    for node_id in topology.node_ids:
        store = keys.outsider(node_id) if node_id == OUTSIDER else keys.enroll(node_id)
        agent = LiteworpAgent(
            sim, network.node(node_id), store, config, trace,
            rng=rng.stream(f"lw:{node_id}"),
        )
        agent.start_discovery()
        agents[node_id] = agent

    sim.run(until=config.activate_time + 1.0)

    print("Discovery complete.  First-hop tables (o = outsider):")
    for node_id in topology.node_ids:
        marker = " (outsider, no keys)" if node_id == OUTSIDER else ""
        neighbors = sorted(agents[node_id].table.neighbors())
        ground_truth = sorted(n for n in topology.neighbors(node_id) if n != OUTSIDER)
        print(f"  node {node_id}{marker}: verified neighbors {neighbors} "
              f"(radio truth minus outsider: {ground_truth})")

    print("\nSecond-hop knowledge at node 0:")
    for neighbor in sorted(agents[0].table.neighbors()):
        reach = sorted(agents[0].table.neighbors_of(neighbor) or ())
        print(f"  R_{neighbor} = {reach}")

    # The outsider now tries to inject a route request.
    print("\nOutsider injects a route request after activation...")
    ghost = Frame(
        packet=RouteRequest(origin=OUTSIDER, request_id=1, target=0),
        transmitter=OUTSIDER,
    )
    network.node(1).deliver(ghost)
    rejected = trace.count("frame_rejected", reason="nonneighbor", node=1)
    print(f"node 1 rejected it as a non-neighbor: {bool(rejected)}")


if __name__ == "__main__":
    main()
