"""Domain scenario: a sensor field reporting to a sink under wormhole attack.

The paper motivates LITEWORP with sensor networks: many low-power nodes
funnel readings to a sink over multihop routes, and a wormhole near the
sink can capture (and then drop) a large share of the field's traffic.
This example builds exactly that: many-to-one traffic toward a corner
sink, a wormhole whose far end sits next to the sink, and LITEWORP
guarding the field.

Run:  python examples/sensor_field_to_sink.py
"""

from repro.api import ScenarioConfig, build_scenario
from repro.net.radio import distance
from repro.sim.timers import PeriodicTimer


REPORT_PERIOD_MEAN = 8.0  # seconds between readings per sensor


def pick_wormhole(scenario, sink):
    """Colluder placement for maximal damage: far end adjacent to the sink,
    near end across the field."""
    positions = scenario.topology.positions
    sink_pos = positions[sink]
    candidates = sorted(
        (node for node in scenario.topology.node_ids if node != sink),
        key=lambda node: distance(positions[node], sink_pos),
    )
    near_sink = next(n for n in candidates[:6] if n != sink)
    far_away = candidates[-1]
    return near_sink, far_away


def main() -> None:
    for defense in ("none", "liteworp"):
        config = ScenarioConfig(
            n_nodes=60,
            duration=300.0,
            seed=11,
            attack_mode="outofband",
            n_malicious=2,
            attack_start=60.0,
            defense=defense,
        )
        scenario = build_scenario(config)

        # Re-aim the traffic: every honest node reports to the sink.
        sink = scenario.honest_ids[0]
        scenario.traffic.stop()
        timers = []
        for node in scenario.honest_ids:
            if node == sink:
                continue
            router = scenario.routers[node]
            rng = scenario.rng.stream(f"sensor:{node}")
            timer = PeriodicTimer(
                scenario.sim,
                lambda r=router, s=sink: r.send_data(s),
                lambda rng=rng: rng.expovariate(1.0 / REPORT_PERIOD_MEAN),
            )
            timer.start(initial_delay=5.0 + rng.random() * REPORT_PERIOD_MEAN)
            timers.append(timer)

        scenario.sim.run(until=config.duration)
        report = scenario.metrics.report(duration=config.duration)

        tag = "LITEWORP" if defense == "liteworp" else "baseline"
        print(f"\n--- sensor field -> sink, {tag} ---")
        print(f"sink: node {sink}; colluders: {scenario.malicious_ids}")
        print(f"readings originated: {report.originated}")
        print(f"readings delivered:  {report.delivered} "
              f"({100 * report.delivered / max(1, report.originated):.1f}%)")
        print(f"swallowed by wormhole: {report.wormhole_drops}")
        print(f"routes through wormhole: {report.malicious_routes}/{report.routes_established}")
        if defense == "liteworp" and report.isolation_times:
            for node in sorted(report.isolation_times):
                print(f"colluder {node} isolated after "
                      f"{report.isolation_latency(node):.1f} s")


if __name__ == "__main__":
    main()
