"""A tour of all five wormhole attack modes (paper Table 1 / section 3).

Runs each launch mode against a LITEWORP-protected network and reports
what the defense does with it — including the one mode the paper says it
cannot detect (protocol deviation), and the watch-data extension that can.

Run:  python examples/attack_modes_tour.py
"""

from dataclasses import replace

from repro import LiteworpConfig, ScenarioConfig, build_scenario
from repro.attacks.taxonomy import ATTACK_MODES


def run_mode(mode_key: str, n_malicious: int, liteworp: LiteworpConfig | None = None):
    config = ScenarioConfig(
        n_nodes=30,
        duration=180.0,
        seed=5,
        attack_mode=mode_key,
        n_malicious=n_malicious,
        attack_start=30.0,
    )
    if liteworp is not None:
        config = replace(config, liteworp=liteworp)
    scenario = build_scenario(config)
    report = scenario.run()
    bad = set(scenario.malicious_ids)
    detections = len(
        {
            record["accused"]
            for record in scenario.trace.of_kind("guard_detection")
            if record["accused"] in bad
        }
    )
    rejects = sum(
        1
        for record in scenario.trace.of_kind("frame_rejected")
        if record["tx"] in bad
    )
    return report, detections, rejects


MODE_TO_SIM = {
    "encapsulation": 2,
    "outofband": 2,
    "highpower": 1,
    "relay": 1,
    "deviation": 1,
}


def main() -> None:
    print("LITEWORP vs. the five wormhole launch modes")
    print("=" * 78)
    for mode in ATTACK_MODES:
        sim_key = "rushing" if mode.key == "deviation" else mode.key
        report, detections, rejects = run_mode(sim_key, MODE_TO_SIM[mode.key])
        print(f"\n{mode.name}  (paper {mode.paper_section}, "
              f"min {mode.min_compromised_nodes} compromised, "
              f"requires: {mode.special_requirements})")
        print(f"  wormhole data drops: {report.wormhole_drops:4d}   "
              f"malicious routes: {report.malicious_routes}/{report.routes_established}")
        print(f"  colluders detected by guards: {detections}   "
              f"frames rejected by legitimacy checks: {rejects}")
        expected = "detected/neutralised" if mode.liteworp_detects else "NOT detected (as the paper states)"
        print(f"  paper's claim for LITEWORP: {expected}")

    print("\nExtension: watching data packets catches the protocol-deviation mode")
    report, detections, _ = run_mode("rushing", 1, LiteworpConfig(watch_data=True))
    print(f"  with watch_data=True: attacker detected by guards: {bool(detections)}")


if __name__ == "__main__":
    main()
