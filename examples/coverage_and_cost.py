"""The paper's analysis, interactively: figure 6 curves and the 5.2 cost
table, straight from the closed forms in ``repro.analysis``.

Run:  python examples/coverage_and_cost.py
"""

from repro.analysis.cost import CostModel
from repro.analysis.coverage import (
    CoverageParams,
    detection_vs_neighbors,
    detection_vs_theta,
    expected_guards,
    false_alarm_vs_neighbors,
    guard_region_area_min,
    mean_guard_region_area,
)


def ascii_plot(series, width=50, label="value"):
    peak = max(v for _, v in series) or 1.0
    for x, v in series:
        bar = "#" * int(round(v / peak * width))
        print(f"  {x:5.0f}  {v:8.4f}  {bar}")


def main() -> None:
    r = 30.0
    print("Guard geometry (r = 30 m)")
    print(f"  minimum guard-region area  : {guard_region_area_min(r):9.1f} m^2 (link length = r)")
    print(f"  mean guard-region area     : {mean_guard_region_area(r):9.1f} m^2")
    print(f"  expected guards at N_B = 10: {expected_guards(10):,.1f} (paper's 0.51*N_B)")
    print(f"  expected guards (exact)    : {expected_guards(10, exact=True):,.2f}")

    params = CoverageParams()  # gamma=7, kappa=5, theta=3, Pc=0.05 @ N_B=3
    print("\nFigure 6(a): P(wormhole detection) vs. number of neighbors")
    ascii_plot(detection_vs_neighbors(range(4, 41, 4), params))

    print("\nFigure 6(b): P(false alarm) vs. number of neighbors")
    for n_b, p in false_alarm_vs_neighbors(range(4, 41, 4), params):
        print(f"  {n_b:5.0f}  {p:.3e}")

    print("\nFigure 10 (analytical): P(detection) vs. theta at N_B = 15")
    for theta, p in detection_vs_theta(range(2, 9), n_neighbors=15.0, params=params):
        print(f"  theta={theta}:  {p:.3f}")

    print("\nSection 5.2 cost model (N=100, r=30 m, N_B=10, h=4)")
    report = CostModel(
        n_nodes=100, tx_range=30.0, avg_neighbors=10.0,
        avg_route_hops=4.0, route_frequency=0.25,
    ).report()
    for name, value, unit in report.rows():
        print(f"  {name:30s} {value:12.3f} {unit}")
    print("\n  -> neighbor lists fit in under half a kilobyte, the watch")
    print("     buffer needs a handful of entries, and the CPU load is a")
    print("     small fraction of a 4 MHz mote: LITEWORP is lightweight.")


if __name__ == "__main__":
    main()
