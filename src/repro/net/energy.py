"""Per-node energy accounting.

The paper's case for LITEWORP is resource-constrained sensor nodes, so
the repository can account for the resource that actually kills them:
energy.  The model is the standard first-order radio model (Heinzelman et
al.): transmitting costs electronics plus amplifier energy growing with
range, receiving costs electronics only, and promiscuous overhearing — the
price of local monitoring — costs the same as receiving.

The meter taps the channel: every transmission charges the sender, every
(attempted) reception charges the receiver, whether or not the frame was
decodable or addressed to it.  This makes "what does local monitoring
cost in Joules" a measurable question (see the energy benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.channel import Channel, Reception
from repro.net.packet import Frame, NodeId


@dataclass(frozen=True)
class EnergyConfig:
    """First-order radio energy parameters (typical mote-class values).

    Attributes
    ----------
    electronics_j_per_bit:
        Energy to run the TX/RX circuitry, per bit (50 nJ/bit).
    amplifier_j_per_bit_m2:
        TX amplifier energy per bit per square metre of range
        (100 pJ/bit/m²) — the free-space d² model.
    idle_w:
        Idle listening power; charged per simulated second when a closing
        report is produced.
    """

    electronics_j_per_bit: float = 50e-9
    amplifier_j_per_bit_m2: float = 100e-12
    idle_w: float = 0.0

    def __post_init__(self) -> None:
        if self.electronics_j_per_bit < 0 or self.amplifier_j_per_bit_m2 < 0:
            raise ValueError("energy constants must be non-negative")
        if self.idle_w < 0:
            raise ValueError("idle_w must be non-negative")

    def tx_energy(self, bits: int, tx_range: float) -> float:
        """Energy to transmit ``bits`` to ``tx_range`` metres."""
        return bits * (
            self.electronics_j_per_bit + self.amplifier_j_per_bit_m2 * tx_range ** 2
        )

    def rx_energy(self, bits: int) -> float:
        """Energy to receive (or overhear) ``bits``."""
        return bits * self.electronics_j_per_bit


class EnergyMeter:
    """Charges nodes for every transmission and reception on a channel."""

    def __init__(self, channel: Channel, radio, config: Optional[EnergyConfig] = None) -> None:
        self.config = config or EnergyConfig()
        self._radio = radio
        self.tx_joules: Dict[NodeId, float] = {}
        self.rx_joules: Dict[NodeId, float] = {}
        channel.add_tx_observer(self._on_transmit)
        channel.add_reception_observer(self._on_reception)

    def _on_transmit(self, sender: NodeId, frame: Frame, _time: float) -> None:
        bits = frame.size_bytes * 8
        energy = self.config.tx_energy(bits, self._radio.tx_range(sender))
        self.tx_joules[sender] = self.tx_joules.get(sender, 0.0) + energy

    def _on_reception(self, reception: Reception) -> None:
        bits = reception.frame.size_bytes * 8
        energy = self.config.rx_energy(bits)
        receiver = reception.receiver
        self.rx_joules[receiver] = self.rx_joules.get(receiver, 0.0) + energy

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def consumed(self, node: NodeId) -> float:
        """Total radio energy charged to ``node`` so far (J)."""
        return self.tx_joules.get(node, 0.0) + self.rx_joules.get(node, 0.0)

    def total(self) -> float:
        """Network-wide radio energy (J)."""
        return sum(self.tx_joules.values()) + sum(self.rx_joules.values())

    def total_with_idle(self, duration: float, n_nodes: int) -> float:
        """Network-wide energy including idle listening over ``duration``."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        return self.total() + self.config.idle_w * duration * n_nodes

    def breakdown(self) -> Dict[str, float]:
        """Aggregate (tx, rx, total) in Joules."""
        tx = sum(self.tx_joules.values())
        rx = sum(self.rx_joules.values())
        return {"tx": tx, "rx": rx, "total": tx + rx}
