"""Wireless network substrate.

Models the physical and link layers that the paper's ns-2 experiments rely
on: a unit-disk radio, a shared broadcast medium with interference-based
collisions and half-duplex receivers, a CSMA-style MAC with random backoff,
uniform-density topology generation, and the per-node runtime container.

Layering (bottom to top)::

    radio (propagation)  ->  channel (medium, collisions)
        ->  mac (carrier sense, backoff, queueing)
        ->  node (frame dispatch to filters/listeners)

All packets travel inside a :class:`~repro.net.packet.Frame`, which carries
the link-layer fields LITEWORP cares about: the (claimed) transmitter, the
optional link destination, and the *announced previous hop* that every
forwarder must declare (paper section 4.2.1).
"""

from repro.net.channel import Channel, Reception
from repro.net.mac import CsmaMac, MacConfig
from repro.net.node import Node
from repro.net.network import Network, NetworkConfig
from repro.net.packet import (
    AlertAckPacket,
    AlertPacket,
    DataPacket,
    Frame,
    HeartbeatPacket,
    HelloPacket,
    HelloReplyPacket,
    NeighborListPacket,
    NoisePacket,
    Packet,
    ProbeAckPacket,
    ProbePacket,
    RouteReply,
    RouteRequest,
)
from repro.net.radio import UnitDiskRadio
from repro.net.topology import (
    Topology,
    field_side_for_density,
    generate_connected_topology,
    grid_topology,
    uniform_topology,
)

__all__ = [
    "AlertAckPacket",
    "AlertPacket",
    "Channel",
    "CsmaMac",
    "DataPacket",
    "Frame",
    "HeartbeatPacket",
    "HelloPacket",
    "HelloReplyPacket",
    "MacConfig",
    "NeighborListPacket",
    "NoisePacket",
    "ProbeAckPacket",
    "ProbePacket",
    "Network",
    "NetworkConfig",
    "Node",
    "Packet",
    "Reception",
    "RouteReply",
    "RouteRequest",
    "Topology",
    "UnitDiskRadio",
    "field_side_for_density",
    "generate_connected_topology",
    "grid_topology",
    "uniform_topology",
]
