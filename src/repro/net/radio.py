"""Unit-disk radio propagation model.

The paper's analysis and ns-2 setup both use a fixed communication range
(r = 30 m, Table 2) with symmetric bi-directional links.  We model exactly
that: node B hears node A iff their distance is at most A's transmit range.
Per-node range overrides support the high-power-transmission wormhole mode
(section 3.3), which breaks symmetry on purpose — the defense's symmetric-
channel assumption is what detects it.

Coverage queries are served by a :class:`~repro.net.grid.SpatialGrid`
(cell size = the default range) so a broadcast touches only the nodes in
adjacent cells instead of scanning all n positions.  The brute-force
scans survive as ``_brute_*`` methods: they are the semantic reference
(the property tests assert the grid matches them exactly) and the code
path used under ``repro.sim.accel.reference_mode``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.grid import SpatialGrid
from repro.sim import accel

NodeId = int
Position = Tuple[float, float]


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two positions."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


class UnitDiskRadio:
    """Deterministic disk propagation with per-node transmit ranges.

    Parameters
    ----------
    positions:
        Mapping node id -> (x, y) in metres.
    default_range:
        Communication range r applied to every node unless overridden.
    use_grid:
        Force the spatial index on/off.  Defaults to the stack-wide
        accelerator switch (:func:`repro.sim.accel.features_enabled`);
        results are identical either way, only the query cost differs.
    """

    def __init__(
        self,
        positions: Dict[NodeId, Position],
        default_range: float = 30.0,
        use_grid: Optional[bool] = None,
    ) -> None:
        if default_range <= 0:
            raise ValueError(f"range must be positive, got {default_range!r}")
        self._positions = dict(positions)
        self._default_range = float(default_range)
        self._range_overrides: Dict[NodeId, float] = {}
        self._coverage_cache: Dict[Tuple[NodeId, float], Tuple[NodeId, ...]] = {}
        # Hot-path memos over the static topology: per-(sender, range)
        # receiver/distance lists (what the channel iterates on every
        # transmission) and the symmetric pairwise distance table.
        self._coverage_dist_cache: Dict[
            Tuple[NodeId, float], Tuple[Tuple[NodeId, float], ...]
        ] = {}
        self._pair_distances: Dict[Tuple[NodeId, NodeId], float] = {}
        self._use_grid = accel.features_enabled() if use_grid is None else use_grid
        self._grid: Optional[SpatialGrid] = (
            SpatialGrid(self._positions, self._default_range) if self._use_grid else None
        )
        #: Euclidean distance evaluations performed by coverage queries
        #: (grid candidates or brute scans).  The scaling regression test
        #: asserts a broadcast at n=1000 stays O(neighbors) on this.
        self.distance_computations = 0

    @property
    def default_range(self) -> float:
        """The network-wide communication range r."""
        return self._default_range

    @property
    def uses_grid_index(self) -> bool:
        """Whether coverage queries go through the spatial grid."""
        return self._grid is not None

    @property
    def node_ids(self) -> List[NodeId]:
        """All node ids known to the radio."""
        return list(self._positions)

    def position(self, node: NodeId) -> Position:
        """Position of ``node``."""
        return self._positions[node]

    def set_position(self, node: NodeId, position: Position) -> None:
        """Move a node (mobility extension); invalidates all distance memos."""
        known = node in self._positions
        self._positions[node] = position
        if self._grid is not None:
            if known:
                self._grid.move(node, position)
            else:
                self._grid.insert(node, position)
        self._coverage_cache.clear()
        self._coverage_dist_cache.clear()
        self._pair_distances.clear()

    def distance_between(self, a: NodeId, b: NodeId) -> float:
        """Memoized Euclidean distance between two nodes.

        The topology is static for the whole run in every paper scenario,
        so each pair's distance is computed at most once; a position
        update (mobility) flushes the table.
        """
        key = (a, b) if a <= b else (b, a)
        cached = self._pair_distances.get(key)
        if cached is None:
            positions = self._positions
            cached = distance(positions[a], positions[b])
            self.distance_computations += 1
            self._pair_distances[key] = cached
        return cached

    def tx_range(self, node: NodeId) -> float:
        """Effective transmit range of ``node`` (override or default)."""
        return self._range_overrides.get(node, self._default_range)

    def set_tx_range(self, node: NodeId, tx_range: float) -> None:
        """Give ``node`` a non-default transmit range (high-power attacker).

        The grid's cell layout is keyed to the default range, so an
        override larger than a cell just widens the query ring — no
        reindexing is needed.
        """
        if tx_range <= 0:
            raise ValueError(f"range must be positive, got {tx_range!r}")
        self._range_overrides[node] = float(tx_range)

    def coverage(self, sender: NodeId, tx_range: float | None = None) -> Tuple[NodeId, ...]:
        """Node ids (excluding the sender) within the sender's transmit range.

        Cached per ``(sender, range)`` because the network is static; a
        position update clears the cache.
        """
        if tx_range is None:
            tx_range = self.tx_range(sender)
        cache_key = (sender, tx_range)
        cached = self._coverage_cache.get(cache_key)
        if cached is not None:
            return cached
        covered = tuple(
            node for node, _ in self.coverage_with_distance(sender, tx_range)
        )
        self._coverage_cache[cache_key] = covered
        return covered

    def coverage_with_distance(
        self, sender: NodeId, tx_range: float | None = None
    ) -> Tuple[Tuple[NodeId, float], ...]:
        """``(receiver, distance)`` pairs within the sender's range.

        This is the channel's per-transmission hot path: the receiver set
        *and* every receiver's distance are fixed for a static topology,
        so both are computed once per ``(sender, range)`` and replayed on
        every subsequent transmission.  The grid answers the query in
        O(neighbors); ordering matches the brute scan exactly.
        """
        if tx_range is None:
            tx_range = self.tx_range(sender)
        cache_key = (sender, tx_range)
        cached = self._coverage_dist_cache.get(cache_key)
        if cached is not None:
            return cached
        if self._grid is not None:
            hits = self._grid.query_disk(
                self._positions[sender], tx_range, exclude=sender
            )
            self.distance_computations += self._grid.distance_computations
            self._grid.distance_computations = 0
            covered = tuple(hits)
        else:
            covered = self._brute_coverage_with_distance(sender, tx_range)
        self._coverage_dist_cache[cache_key] = covered
        return covered

    def _brute_coverage_with_distance(
        self, sender: NodeId, tx_range: float
    ) -> Tuple[Tuple[NodeId, float], ...]:
        """Reference O(n) scan; the grid must reproduce this bit-for-bit."""
        origin = self._positions[sender]
        pairs = []
        for node, pos in self._positions.items():
            if node == sender:
                continue
            dist = distance(origin, pos)
            self.distance_computations += 1
            if dist <= tx_range:
                pairs.append((node, dist))
        return tuple(pairs)

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Symmetric neighbors at the *default* range.

        This is the ground-truth neighbor relation used by the topology
        oracle and by legitimacy checks in tests.  Note it deliberately
        ignores range overrides: a high-power attacker can reach farther,
        but far nodes are not its legitimate neighbors.
        """
        return self.coverage(node, self._default_range)

    def are_neighbors(self, a: NodeId, b: NodeId) -> bool:
        """Whether a and b are within the default range of each other."""
        return self.distance_between(a, b) <= self._default_range

    def common_neighbors(self, a: NodeId, b: NodeId) -> Tuple[NodeId, ...]:
        """Nodes within default range of both a and b — guard candidates.

        Served from the grid-backed (and cached) neighbor sets, so a
        guard-set query costs two cell-ring lookups, not two O(n) scans.
        """
        near_a = set(self.neighbors(a))
        return tuple(n for n in self.neighbors(b) if n in near_a)

    def _brute_common_neighbors(self, a: NodeId, b: NodeId) -> Tuple[NodeId, ...]:
        """Reference implementation over brute-force coverage scans."""
        near_a = {n for n, _ in self._brute_coverage_with_distance(a, self._default_range)}
        return tuple(
            n
            for n, _ in self._brute_coverage_with_distance(b, self._default_range)
            if n in near_a
        )

    def audible_from(self, receiver: NodeId, senders: Iterable[NodeId]) -> List[NodeId]:
        """Subset of ``senders`` whose transmissions reach ``receiver``.

        One disk query around the receiver (radius = the largest sender
        range) answers for all senders at once; order follows ``senders``.
        """
        senders = list(senders)
        if self._grid is None:
            return self._brute_audible_from(receiver, senders)
        others = [s for s in senders if s != receiver]
        if not others:
            return []
        radius = max(self.tx_range(s) for s in others)
        hits = self._grid.query_disk(
            self._positions[receiver], radius, exclude=receiver
        )
        self.distance_computations += self._grid.distance_computations
        self._grid.distance_computations = 0
        in_range = dict(hits)
        return [
            s
            for s in others
            if s in in_range and in_range[s] <= self.tx_range(s)
        ]

    def _brute_audible_from(
        self, receiver: NodeId, senders: Iterable[NodeId]
    ) -> List[NodeId]:
        """Reference per-pair scan over the senders list."""
        result = []
        for sender in senders:
            if sender == receiver:
                continue
            if self.distance_between(sender, receiver) <= self.tx_range(sender):
                result.append(sender)
        return result
