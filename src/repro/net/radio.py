"""Unit-disk radio propagation model.

The paper's analysis and ns-2 setup both use a fixed communication range
(r = 30 m, Table 2) with symmetric bi-directional links.  We model exactly
that: node B hears node A iff their distance is at most A's transmit range.
Per-node range overrides support the high-power-transmission wormhole mode
(section 3.3), which breaks symmetry on purpose — the defense's symmetric-
channel assumption is what detects it.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

NodeId = int
Position = Tuple[float, float]


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two positions."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


class UnitDiskRadio:
    """Deterministic disk propagation with per-node transmit ranges.

    Parameters
    ----------
    positions:
        Mapping node id -> (x, y) in metres.
    default_range:
        Communication range r applied to every node unless overridden.
    """

    def __init__(self, positions: Dict[NodeId, Position], default_range: float = 30.0) -> None:
        if default_range <= 0:
            raise ValueError(f"range must be positive, got {default_range!r}")
        self._positions = dict(positions)
        self._default_range = float(default_range)
        self._range_overrides: Dict[NodeId, float] = {}
        self._coverage_cache: Dict[Tuple[NodeId, float], Tuple[NodeId, ...]] = {}

    @property
    def default_range(self) -> float:
        """The network-wide communication range r."""
        return self._default_range

    @property
    def node_ids(self) -> List[NodeId]:
        """All node ids known to the radio."""
        return list(self._positions)

    def position(self, node: NodeId) -> Position:
        """Position of ``node``."""
        return self._positions[node]

    def set_position(self, node: NodeId, position: Position) -> None:
        """Move a node (mobility extension); invalidates the coverage cache."""
        self._positions[node] = position
        self._coverage_cache.clear()

    def tx_range(self, node: NodeId) -> float:
        """Effective transmit range of ``node`` (override or default)."""
        return self._range_overrides.get(node, self._default_range)

    def set_tx_range(self, node: NodeId, tx_range: float) -> None:
        """Give ``node`` a non-default transmit range (high-power attacker)."""
        if tx_range <= 0:
            raise ValueError(f"range must be positive, got {tx_range!r}")
        self._range_overrides[node] = float(tx_range)

    def coverage(self, sender: NodeId, tx_range: float | None = None) -> Tuple[NodeId, ...]:
        """Node ids (excluding the sender) within the sender's transmit range.

        Cached per ``(sender, range)`` because the network is static; a
        position update clears the cache.
        """
        if tx_range is None:
            tx_range = self.tx_range(sender)
        cache_key = (sender, tx_range)
        cached = self._coverage_cache.get(cache_key)
        if cached is not None:
            return cached
        origin = self._positions[sender]
        covered = tuple(
            node
            for node, pos in self._positions.items()
            if node != sender and distance(origin, pos) <= tx_range
        )
        self._coverage_cache[cache_key] = covered
        return covered

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Symmetric neighbors at the *default* range.

        This is the ground-truth neighbor relation used by the topology
        oracle and by legitimacy checks in tests.  Note it deliberately
        ignores range overrides: a high-power attacker can reach farther,
        but far nodes are not its legitimate neighbors.
        """
        return self.coverage(node, self._default_range)

    def are_neighbors(self, a: NodeId, b: NodeId) -> bool:
        """Whether a and b are within the default range of each other."""
        return distance(self._positions[a], self._positions[b]) <= self._default_range

    def common_neighbors(self, a: NodeId, b: NodeId) -> Tuple[NodeId, ...]:
        """Nodes within default range of both a and b — guard candidates."""
        near_a = set(self.neighbors(a))
        return tuple(n for n in self.neighbors(b) if n in near_a)

    def audible_from(self, receiver: NodeId, senders: Iterable[NodeId]) -> List[NodeId]:
        """Subset of ``senders`` whose transmissions reach ``receiver``."""
        rx_pos = self._positions[receiver]
        result = []
        for sender in senders:
            if sender == receiver:
                continue
            if distance(self._positions[sender], rx_pos) <= self.tx_range(sender):
                result.append(sender)
        return result
