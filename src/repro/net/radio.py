"""Unit-disk radio propagation model.

The paper's analysis and ns-2 setup both use a fixed communication range
(r = 30 m, Table 2) with symmetric bi-directional links.  We model exactly
that: node B hears node A iff their distance is at most A's transmit range.
Per-node range overrides support the high-power-transmission wormhole mode
(section 3.3), which breaks symmetry on purpose — the defense's symmetric-
channel assumption is what detects it.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

NodeId = int
Position = Tuple[float, float]


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two positions."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


class UnitDiskRadio:
    """Deterministic disk propagation with per-node transmit ranges.

    Parameters
    ----------
    positions:
        Mapping node id -> (x, y) in metres.
    default_range:
        Communication range r applied to every node unless overridden.
    """

    def __init__(self, positions: Dict[NodeId, Position], default_range: float = 30.0) -> None:
        if default_range <= 0:
            raise ValueError(f"range must be positive, got {default_range!r}")
        self._positions = dict(positions)
        self._default_range = float(default_range)
        self._range_overrides: Dict[NodeId, float] = {}
        self._coverage_cache: Dict[Tuple[NodeId, float], Tuple[NodeId, ...]] = {}
        # Hot-path memos over the static topology: per-(sender, range)
        # receiver/distance lists (what the channel iterates on every
        # transmission) and the symmetric pairwise distance table.
        self._coverage_dist_cache: Dict[
            Tuple[NodeId, float], Tuple[Tuple[NodeId, float], ...]
        ] = {}
        self._pair_distances: Dict[Tuple[NodeId, NodeId], float] = {}

    @property
    def default_range(self) -> float:
        """The network-wide communication range r."""
        return self._default_range

    @property
    def node_ids(self) -> List[NodeId]:
        """All node ids known to the radio."""
        return list(self._positions)

    def position(self, node: NodeId) -> Position:
        """Position of ``node``."""
        return self._positions[node]

    def set_position(self, node: NodeId, position: Position) -> None:
        """Move a node (mobility extension); invalidates all distance memos."""
        self._positions[node] = position
        self._coverage_cache.clear()
        self._coverage_dist_cache.clear()
        self._pair_distances.clear()

    def distance_between(self, a: NodeId, b: NodeId) -> float:
        """Memoized Euclidean distance between two nodes.

        The topology is static for the whole run in every paper scenario,
        so each pair's distance is computed at most once; a position
        update (mobility) flushes the table.
        """
        key = (a, b) if a <= b else (b, a)
        cached = self._pair_distances.get(key)
        if cached is None:
            positions = self._positions
            cached = distance(positions[a], positions[b])
            self._pair_distances[key] = cached
        return cached

    def tx_range(self, node: NodeId) -> float:
        """Effective transmit range of ``node`` (override or default)."""
        return self._range_overrides.get(node, self._default_range)

    def set_tx_range(self, node: NodeId, tx_range: float) -> None:
        """Give ``node`` a non-default transmit range (high-power attacker)."""
        if tx_range <= 0:
            raise ValueError(f"range must be positive, got {tx_range!r}")
        self._range_overrides[node] = float(tx_range)

    def coverage(self, sender: NodeId, tx_range: float | None = None) -> Tuple[NodeId, ...]:
        """Node ids (excluding the sender) within the sender's transmit range.

        Cached per ``(sender, range)`` because the network is static; a
        position update clears the cache.
        """
        if tx_range is None:
            tx_range = self.tx_range(sender)
        cache_key = (sender, tx_range)
        cached = self._coverage_cache.get(cache_key)
        if cached is not None:
            return cached
        covered = tuple(
            node for node, _ in self.coverage_with_distance(sender, tx_range)
        )
        self._coverage_cache[cache_key] = covered
        return covered

    def coverage_with_distance(
        self, sender: NodeId, tx_range: float | None = None
    ) -> Tuple[Tuple[NodeId, float], ...]:
        """``(receiver, distance)`` pairs within the sender's range.

        This is the channel's per-transmission hot path: the receiver set
        *and* every receiver's distance are fixed for a static topology,
        so both are computed once per ``(sender, range)`` and replayed on
        every subsequent transmission.
        """
        if tx_range is None:
            tx_range = self.tx_range(sender)
        cache_key = (sender, tx_range)
        cached = self._coverage_dist_cache.get(cache_key)
        if cached is not None:
            return cached
        origin = self._positions[sender]
        pairs = []
        for node, pos in self._positions.items():
            if node == sender:
                continue
            dist = distance(origin, pos)
            if dist <= tx_range:
                pairs.append((node, dist))
        covered = tuple(pairs)
        self._coverage_dist_cache[cache_key] = covered
        return covered

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Symmetric neighbors at the *default* range.

        This is the ground-truth neighbor relation used by the topology
        oracle and by legitimacy checks in tests.  Note it deliberately
        ignores range overrides: a high-power attacker can reach farther,
        but far nodes are not its legitimate neighbors.
        """
        return self.coverage(node, self._default_range)

    def are_neighbors(self, a: NodeId, b: NodeId) -> bool:
        """Whether a and b are within the default range of each other."""
        return self.distance_between(a, b) <= self._default_range

    def common_neighbors(self, a: NodeId, b: NodeId) -> Tuple[NodeId, ...]:
        """Nodes within default range of both a and b — guard candidates."""
        near_a = set(self.neighbors(a))
        return tuple(n for n in self.neighbors(b) if n in near_a)

    def audible_from(self, receiver: NodeId, senders: Iterable[NodeId]) -> List[NodeId]:
        """Subset of ``senders`` whose transmissions reach ``receiver``."""
        result = []
        for sender in senders:
            if sender == receiver:
                continue
            if self.distance_between(sender, receiver) <= self.tx_range(sender):
                result.append(sender)
        return result
