"""The per-node runtime container.

A :class:`Node` owns a MAC instance and dispatches every received frame
through a two-stage pipeline:

1. **Filters** — admission checks that may reject a frame before any
   protocol logic sees it.  LITEWORP's legitimacy checks (non-neighbor
   reject, second-hop check, revoked-node reject) are installed here.
   A rejected frame is still *observable*: observers run on all frames.
2. **Listeners** — protocol agents (routing, neighbor discovery, alerts).
   Listeners receive accepted frames whether addressed to the node or
   overheard; each listener decides what concerns it.

**Observers** run on every frame before filtering — this is where the local
monitor lives, because a guard must watch traffic it would itself discard.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.net.mac import CsmaMac
from repro.net.packet import Frame, NodeId, Packet

FrameFilter = Callable[[Frame], bool]
FrameListener = Callable[[Frame], None]
SendFilter = Callable[[Frame], bool]
LifecycleListener = Callable[[bool], None]


class Node:
    """A network participant: id, position, MAC, and a protocol pipeline."""

    def __init__(self, node_id: NodeId, position: Tuple[float, float], mac: CsmaMac) -> None:
        self.node_id = node_id
        self.position = position
        self.mac = mac
        self.alive = True
        self.clock_skew = 0.0
        self._filters: List[FrameFilter] = []
        self._listeners: List[FrameListener] = []
        self._observers: List[FrameListener] = []
        self._send_filters: List[SendFilter] = []
        self._lifecycle_listeners: List[LifecycleListener] = []
        self.frames_received = 0
        self.frames_rejected = 0
        self.crashes = 0

    # ------------------------------------------------------------------
    # Pipeline wiring
    # ------------------------------------------------------------------
    def add_filter(self, frame_filter: FrameFilter) -> None:
        """Admission check: return False to reject the frame."""
        self._filters.append(frame_filter)

    def add_listener(self, listener: FrameListener) -> None:
        """Protocol handler invoked for every accepted frame."""
        self._listeners.append(listener)

    def add_observer(self, observer: FrameListener) -> None:
        """Promiscuous tap invoked for every frame, even rejected ones."""
        self._observers.append(observer)

    def add_send_filter(self, send_filter: SendFilter) -> None:
        """Outbound check: return False to suppress a transmission
        (LITEWORP refuses to send to revoked nodes)."""
        self._send_filters.append(send_filter)

    def add_lifecycle_listener(self, listener: LifecycleListener) -> None:
        """Called with ``alive`` whenever the node fails or recovers —
        protocol agents use this to drop volatile state on a crash and
        rejoin on reboot."""
        self._lifecycle_listeners.append(listener)

    # ------------------------------------------------------------------
    # Fault lifecycle
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash-stop: the radio goes silent and deaf until :meth:`recover`.

        Frames already on the air keep propagating (a real crash truncates
        mid-frame; the difference is below the channel model's resolution).
        Queued, not-yet-transmitted frames are dropped with the MAC.
        """
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self.mac.disable()
        for listener in self._lifecycle_listeners:
            listener(False)

    def recover(self) -> None:
        """Reboot after a crash: the radio comes back with an empty queue;
        protocol agents re-run their join procedures via the lifecycle
        listeners."""
        if self.alive:
            return
        self.alive = True
        self.mac.enable()
        for listener in self._lifecycle_listeners:
            listener(True)

    # ------------------------------------------------------------------
    # Receive path (channel delivery handler)
    # ------------------------------------------------------------------
    def deliver(self, frame: Frame) -> None:
        """Entry point registered with the channel."""
        if not self.alive:
            return
        self.frames_received += 1
        for observer in self._observers:
            observer(frame)
        for frame_filter in self._filters:
            if not frame_filter(frame):
                self.frames_rejected += 1
                return
        for listener in self._listeners:
            listener(frame)

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def broadcast(
        self,
        packet: Packet,
        prev_hop: Optional[NodeId] = None,
        jitter: Optional[float] = None,
        tx_range: Optional[float] = None,
    ) -> bool:
        """Broadcast ``packet``; returns False if a send filter vetoed it."""
        frame = Frame(packet=packet, transmitter=self.node_id, link_dst=None, prev_hop=prev_hop)
        return self._submit(frame, jitter, tx_range)

    def unicast(
        self,
        packet: Packet,
        next_hop: NodeId,
        prev_hop: Optional[NodeId] = None,
        jitter: Optional[float] = None,
        tx_range: Optional[float] = None,
    ) -> bool:
        """Send ``packet`` to ``next_hop``; still overheard by all in range."""
        frame = Frame(
            packet=packet, transmitter=self.node_id, link_dst=next_hop, prev_hop=prev_hop
        )
        return self._submit(frame, jitter, tx_range)

    def raw_send(self, frame: Frame, jitter: Optional[float] = None, tx_range: Optional[float] = None) -> bool:
        """Transmit an arbitrary pre-built frame (attack code uses this to
        spoof headers); send filters still apply on the *local* node."""
        return self._submit(frame, jitter, tx_range)

    def _submit(self, frame: Frame, jitter: Optional[float], tx_range: Optional[float]) -> bool:
        if not self.alive:
            return False
        for send_filter in self._send_filters:
            if not send_filter(frame):
                return False
        self.mac.send(frame, jitter=jitter, tx_range=tx_range)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} @ ({self.position[0]:.1f}, {self.position[1]:.1f})>"
