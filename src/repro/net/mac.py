"""CSMA-style medium access control.

Each node owns one :class:`CsmaMac`.  Outgoing frames are queued; the head
of the queue is transmitted after an optional random *jitter* (the paper's
"nodes typically back off for a random amount of time before forwarding",
section 3.5 — the protocol-deviation attacker sets jitter to zero), subject
to carrier sensing with binary-exponential backoff.

The MAC gives up on a frame after ``max_attempts`` busy senses and reports
it via a trace record — such losses count toward the natural-loss budget of
the experiments.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.net.channel import Channel
from repro.net.packet import Frame, NodeId
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class MacConfig:
    """Tunables for the CSMA MAC.

    Attributes
    ----------
    base_backoff:
        Initial backoff window (seconds); doubles per failed sense.
    max_attempts:
        Carrier-sense attempts before the frame is dropped.
    default_jitter:
        Upper bound of the uniform pre-transmission jitter applied to
        broadcast forwards when the caller does not specify one.
    arq_retries:
        Link-layer retransmissions for unicast frames whose destination
        did not acknowledge (802.11-style ARQ; broadcasts are never
        retransmitted).
    """

    base_backoff: float = 0.010
    max_attempts: int = 12
    default_jitter: float = 0.015
    arq_retries: int = 4

    def __post_init__(self) -> None:
        if self.base_backoff <= 0:
            raise ValueError("base_backoff must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.default_jitter < 0:
            raise ValueError("default_jitter must be non-negative")
        if self.arq_retries < 0:
            raise ValueError("arq_retries must be non-negative")


class CsmaMac:
    """Carrier-sense MAC with jitter and exponential backoff for one node."""

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        node: NodeId,
        rng: random.Random,
        config: Optional[MacConfig] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self._sim = sim
        self._channel = channel
        self._node = node
        self._rng = rng
        self._config = config or MacConfig()
        self._trace = trace
        self._queue: Deque[Tuple[Frame, Optional[float], int]] = deque()
        self._busy = False
        self.enabled = True
        self.sent = 0
        self.dropped = 0
        self.arq_failures = 0

    @property
    def queue_length(self) -> int:
        """Frames waiting for the medium (excluding one in service)."""
        return len(self._queue)

    def disable(self) -> None:
        """Crash support: drop the queue and refuse service until
        :meth:`enable`.  Pending scheduler events drain as no-ops."""
        self.enabled = False
        self.dropped += len(self._queue)
        self._queue.clear()

    def enable(self) -> None:
        """Resume service after :meth:`disable` (the queue starts empty)."""
        self.enabled = True

    def send(self, frame: Frame, jitter: Optional[float] = None, tx_range: Optional[float] = None) -> None:
        """Enqueue a frame.

        ``jitter`` is the upper bound of a uniform pre-transmission delay;
        pass ``0.0`` to transmit as soon as the medium allows (the rushing
        attacker does this).  ``None`` selects the configured default.
        """
        if not self.enabled:
            self.dropped += 1
            return
        self._queue.append((frame, tx_range, 0))
        effective = self._config.default_jitter if jitter is None else jitter
        if not self._busy:
            self._busy = True
            delay = self._rng.uniform(0.0, effective) if effective > 0 else 0.0
            self._sim.schedule(delay, self._attempt, 0)

    def _attempt(self, attempt: int) -> None:
        if not self.enabled or not self._queue:
            self._busy = False
            return
        if self._channel.is_busy(self._node):
            if attempt + 1 >= self._config.max_attempts:
                frame, _, _ = self._queue.popleft()
                self.dropped += 1
                if self._trace is not None:
                    self._trace.emit(
                        self._sim.now, "mac_drop", node=self._node, **frame.describe()
                    )
                self._next_frame()
                return
            window = self._config.base_backoff * (2 ** attempt)
            self._sim.schedule(self._rng.uniform(0.0, window), self._attempt, attempt + 1)
            return
        frame, tx_range, tries = self._queue.popleft()
        if frame.link_dst is not None and self._config.arq_retries > 0:
            duration = self._channel.transmit(
                self._node,
                frame,
                tx_range=tx_range,
                on_unicast_outcome=lambda ok, f=frame, r=tx_range, t=tries: self._arq_outcome(
                    ok, f, r, t
                ),
            )
            self.sent += 1
            return
        duration = self._channel.transmit(self._node, frame, tx_range=tx_range)
        self.sent += 1
        self._sim.schedule(duration, self._next_frame)

    def _arq_outcome(self, delivered: bool, frame: Frame, tx_range: Optional[float], tries: int) -> None:
        if not self.enabled:
            self._busy = False
            return
        if not delivered and tries < self._config.arq_retries:
            # Retransmit ahead of anything queued later, after a short backoff.
            self._queue.appendleft((frame, tx_range, tries + 1))
            self._sim.schedule(
                self._rng.uniform(0.0, self._config.base_backoff), self._attempt, 0
            )
            return
        if not delivered:
            self.arq_failures += 1
            if self._trace is not None:
                self._trace.emit(
                    self._sim.now, "arq_failure", node=self._node, **frame.describe()
                )
        self._next_frame()

    def _next_frame(self) -> None:
        if self._queue:
            self._sim.schedule(self._rng.uniform(0.0, self._config.base_backoff), self._attempt, 0)
        else:
            self._busy = False
