"""Shared broadcast medium with interference-based collisions.

The channel delivers every transmission to every node inside the sender's
transmit range — promiscuous reception is what makes local monitoring
possible.  Losses arise from three mechanisms, all of which the paper's
simulation "accounts for" as natural collisions:

- **Overlap interference** — two receptions overlapping in time at the same
  receiver destroy each other, unless the *capture effect* saves the
  stronger one: a signal whose transmitter is at least ``capture_ratio``
  times closer than the interferer is decoded anyway (standard
  SIR-threshold capture under path loss).
- **Half-duplex receivers** — a node transmitting during any part of a
  reception misses it.
- **Optional ambient loss** — an independent per-reception loss probability
  for failure-injection experiments.

The channel does not queue or defer; carrier sensing and backoff live in
:mod:`repro.net.mac`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.net.packet import Frame, NodeId
from repro.net.radio import UnitDiskRadio
from repro.sim import accel
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog


class Reception:
    """An in-flight reception at one receiver.

    A slotted plain class rather than a dataclass: one instance is built
    per (transmission, in-range receiver), which makes this the single
    most-allocated object in a run.
    """

    __slots__ = (
        "receiver", "frame", "start", "end", "distance",
        "collided", "lost", "on_outcome",
    )

    def __init__(
        self,
        receiver: NodeId,
        frame: Frame,
        start: float,
        end: float,
        distance: float = 0.0,
    ) -> None:
        self.receiver = receiver
        self.frame = frame
        self.start = start
        self.end = end
        self.distance = distance
        self.collided = False
        self.lost = False
        # Link-layer ACK callback for the unicast destination (else None).
        self.on_outcome: Optional[Callable[[bool], None]] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "collided" if self.collided else ("lost" if self.lost else "ok")
        return (
            f"<Reception rx={self.receiver} [{self.start:.6f}, {self.end:.6f}] {state}>"
        )


class Channel:
    """The wireless medium.

    Parameters
    ----------
    sim, radio, rng, trace:
        Simulation kernel, propagation model, RNG registry, and trace sink.
    bandwidth_bps:
        Channel bit rate (Table 2: 40 kbps).
    ambient_loss:
        Independent probability that an otherwise-successful reception is
        lost (failure injection; 0 by default).
    capture_ratio:
        A reception survives an overlap when its transmitter is at least
        this factor closer to the receiver than the interferer
        (0 disables capture: every overlap kills both frames).
    batched:
        Deliver each transmission's receptions with ONE scheduled event
        (processed strictly in creation order at end-of-air-time) instead
        of one event per receiver.  Event ordering is provably identical:
        the per-receiver finish events always carried consecutive
        sequence numbers, so they fired back-to-back anyway.  Defaults to
        the stack-wide accelerator switch.
    pooled:
        Recycle finished Reception objects through a free list.
        Automatically suspended while reception observers are attached
        (observers may legitimately retain receptions).  Defaults to the
        stack-wide accelerator switch.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: UnitDiskRadio,
        rng: RngRegistry,
        trace: Optional[TraceLog] = None,
        bandwidth_bps: float = 40_000.0,
        ambient_loss: float = 0.0,
        capture_ratio: float = 1.1,
        batched: Optional[bool] = None,
        pooled: Optional[bool] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps!r}")
        if not 0.0 <= ambient_loss < 1.0:
            raise ValueError(f"ambient_loss must be in [0, 1), got {ambient_loss!r}")
        if capture_ratio < 0:
            raise ValueError(f"capture_ratio must be non-negative, got {capture_ratio!r}")
        self._sim = sim
        self._radio = radio
        self._rng = rng.stream("channel")
        self._trace = trace
        self._bandwidth = float(bandwidth_bps)
        self._ambient_loss = float(ambient_loss)
        self._capture_ratio = float(capture_ratio)
        self._blocked_links: Set[Tuple[NodeId, NodeId]] = set()
        self._in_flight: Dict[NodeId, List[Reception]] = {}
        self._tx_until: Dict[NodeId, float] = {}
        self._delivery_handlers: Dict[NodeId, Callable[[Frame], None]] = {}
        self._receive_gates: Dict[NodeId, Callable[[], bool]] = {}
        self._stampers: Dict[NodeId, Callable[[Frame], Frame]] = {}
        self._loss_handlers: Dict[NodeId, Callable[[float], None]] = {}
        self._tx_observers: List[Callable[[NodeId, Frame, float], None]] = []
        self._reception_observers: List[Callable[[Reception], None]] = []
        fast = accel.features_enabled()
        self._batched = fast if batched is None else batched
        self._pooled = fast if pooled is None else pooled
        self._pool: List[Reception] = []
        self.transmissions = 0
        self.collisions = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, node: NodeId, handler: Callable[[Frame], None]) -> None:
        """Register the frame-delivery handler for ``node``."""
        self._delivery_handlers[node] = handler

    def set_receive_gate(self, node: NodeId, gate: Callable[[], bool]) -> None:
        """Register a predicate consulted at transmission time: when it
        returns False the node's radio is off (crashed / depleted) and no
        reception is created at all — in particular the link-layer ack of
        a unicast to it never comes."""
        self._receive_gates[node] = gate

    def set_frame_stamper(self, node: NodeId, stamper: Callable[[Frame], Frame]) -> None:
        """Transform every frame ``node`` transmits, at the moment of
        transmission (PHY-layer stamping — packet leashes use this to
        attach the sender's location and the *actual* send time, after any
        MAC queueing).  A node that re-sends someone else's frame without
        a stamper of its own leaves the original stamp in place."""
        self._stampers[node] = stamper

    def attach_loss_handler(self, node: NodeId, handler: Callable[[float], None]) -> None:
        """Notify ``node`` when it loses a reception (a real radio senses a
        garbled frame via energy detection / CRC failure even though it
        cannot decode it).  LITEWORP guards use this to withhold judgment
        when their own observation was impaired."""
        self._loss_handlers[node] = handler

    def add_tx_observer(self, observer: Callable[[NodeId, Frame, float], None]) -> None:
        """Observe every physical transmission (used by tests and metrics)."""
        self._tx_observers.append(observer)

    def add_reception_observer(self, observer: Callable[[Reception], None]) -> None:
        """Observe every finished reception, decodable or not (the energy
        meter charges radios for listening either way)."""
        self._reception_observers.append(observer)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    @property
    def ambient_loss(self) -> float:
        """Current independent per-reception loss probability."""
        return self._ambient_loss

    def set_ambient_loss(self, probability: float) -> None:
        """Change the ambient loss probability mid-run (loss bursts)."""
        if not 0.0 <= probability < 1.0:
            raise ValueError(f"ambient_loss must be in [0, 1), got {probability!r}")
        self._ambient_loss = float(probability)

    def set_link_down(self, a: NodeId, b: NodeId) -> None:
        """Sever the symmetric radio link a <-> b (link-flap faults).
        Neither endpoint hears the other while the link is down; everyone
        else is unaffected."""
        self._blocked_links.add(self._link_key(a, b))

    def set_link_up(self, a: NodeId, b: NodeId) -> None:
        """Restore a link severed by :meth:`set_link_down`.  Idempotent."""
        self._blocked_links.discard(self._link_key(a, b))

    def link_is_down(self, a: NodeId, b: NodeId) -> bool:
        """Whether the a <-> b link is currently severed."""
        return self._link_key(a, b) in self._blocked_links

    @staticmethod
    def _link_key(a: NodeId, b: NodeId) -> Tuple[NodeId, NodeId]:
        return (a, b) if a <= b else (b, a)

    # ------------------------------------------------------------------
    # Medium state
    # ------------------------------------------------------------------
    def duration_of(self, frame: Frame) -> float:
        """Air time of a frame at the channel bit rate."""
        return frame.size_bytes * 8.0 / self._bandwidth

    def is_transmitting(self, node: NodeId) -> bool:
        """Whether ``node`` is mid-transmission."""
        return self._tx_until.get(node, 0.0) > self._sim.now

    def is_busy(self, node: NodeId) -> bool:
        """Carrier sense at ``node``: own transmission or any audible one."""
        if self.is_transmitting(node):
            return True
        return bool(self._in_flight.get(node))

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(
        self,
        sender: NodeId,
        frame: Frame,
        tx_range: Optional[float] = None,
        on_unicast_outcome: Optional[Callable[[bool], None]] = None,
    ) -> float:
        """Put a frame on the air from ``sender``.

        Returns the transmission duration.  Collision bookkeeping happens
        immediately; deliveries are scheduled at end of reception.

        ``on_unicast_outcome`` — for frames with a link destination, called
        once at end of transmission with whether that destination decoded
        the frame.  This models the link-layer acknowledgment of the MAC
        (the ACK itself is not simulated; it is short enough to ignore).
        """
        stamper = self._stampers.get(sender)
        if stamper is not None:
            frame = stamper(frame)
        now = self._sim.now
        duration = self.duration_of(frame)
        end = now + duration
        self.transmissions += 1
        self._tx_until[sender] = max(self._tx_until.get(sender, 0.0), end)

        # Half-duplex: transmitting kills the sender's own in-flight receptions.
        for reception in self._in_flight.get(sender, ()):
            if not reception.collided:
                reception.collided = True
                self.collisions += 1

        for observer in self._tx_observers:
            observer(sender, frame, now)

        # Everything below runs once per transmission for every in-range
        # receiver — the innermost loop of the whole simulator.  The
        # receiver set and all sender->receiver distances come from the
        # radio's static-topology memo, and the per-iteration attribute
        # lookups are hoisted.
        delivery_handlers = self._delivery_handlers
        receive_gates = self._receive_gates
        blocked = self._blocked_links
        tx_until = self._tx_until
        in_flight = self._in_flight
        ambient_loss = self._ambient_loss
        schedule = self._sim.schedule
        pool = self._pool
        link_dst = frame.link_dst if on_unicast_outcome is not None else None
        destination_covered = False
        batch: Optional[List[Reception]] = [] if self._batched else None
        for receiver, dist in self._radio.coverage_with_distance(sender, tx_range):
            if receiver not in delivery_handlers:
                continue
            if blocked and self.link_is_down(sender, receiver):
                continue
            gate = receive_gates.get(receiver)
            if gate is not None and not gate():
                continue
            if pool:
                reception = pool.pop()
                reception.receiver = receiver
                reception.frame = frame
                reception.start = now
                reception.end = end
                reception.distance = dist
                reception.collided = False
                reception.lost = False
                reception.on_outcome = None
            else:
                reception = Reception(receiver, frame, now, end, dist)
            if tx_until.get(receiver, 0.0) > now:
                # Receiver is itself transmitting: misses the frame.
                reception.collided = True
                self.collisions += 1
            queue = in_flight.get(receiver)
            if queue is None:
                queue = in_flight[receiver] = []
            else:
                for other in queue:
                    self._resolve_overlap(reception, other)
            if ambient_loss and self._rng.random() < ambient_loss:
                reception.lost = True
            if receiver == link_dst:
                destination_covered = True
                reception.on_outcome = on_unicast_outcome
            queue.append(reception)
            if batch is None:
                schedule(duration, self._finish_reception, reception)
            else:
                batch.append(reception)
        if batch:
            # One event delivers the whole audible set.  Receptions are
            # processed strictly in creation order, each fully finished
            # (dequeued, observed, delivered) before the next begins —
            # indistinguishable from the per-receiver events they replace,
            # whose consecutive sequence numbers fired back-to-back.
            schedule(duration, self._finish_batch, batch)
        if on_unicast_outcome is not None and not destination_covered:
            # Destination out of range (or detached): the ACK never comes.
            self._sim.schedule(duration, on_unicast_outcome, False)
        return duration

    def _resolve_overlap(self, new: Reception, other: Reception) -> None:
        """Apply interference between two overlapping receptions at one
        receiver, honoring the capture effect."""
        ratio = self._capture_ratio
        new_captures = ratio > 0 and new.distance * ratio <= other.distance
        other_captures = ratio > 0 and other.distance * ratio <= new.distance
        if not other_captures and not other.collided:
            other.collided = True
            self.collisions += 1
        if not new_captures and not new.collided:
            new.collided = True
            self.collisions += 1

    def _finish_batch(self, batch: List[Reception]) -> None:
        """Finish one transmission's receptions, in creation order.

        Later receptions stay in their receivers' in-flight queues while
        earlier handlers run (exactly as with per-receiver events), so
        carrier sense and overlap resolution from re-entrant transmits
        observe identical medium state.
        """
        finish = self._finish_reception
        pool = self._pool
        for reception in batch:
            finish(reception)
            if self._pooled and not self._reception_observers and len(pool) < 4096:
                # Nothing downstream retains finished receptions (the
                # observer check guards the one API that may): recycle.
                reception.frame = None  # type: ignore[assignment]
                reception.on_outcome = None
                pool.append(reception)

    def _finish_reception(self, reception: Reception) -> None:
        queue = self._in_flight.get(reception.receiver)
        if queue is not None:
            try:
                queue.remove(reception)
            except ValueError:  # pragma: no cover - defensive
                pass
        for observer in self._reception_observers:
            observer(reception)
        outcome = reception.on_outcome
        if reception.collided or reception.lost:
            if self._trace is not None:
                self._trace.emit(
                    self._sim.now,
                    "rx_lost",
                    receiver=reception.receiver,
                    collided=reception.collided,
                    **reception.frame.describe(),
                )
            loss_handler = self._loss_handlers.get(reception.receiver)
            if loss_handler is not None:
                loss_handler(self._sim.now)
            if outcome is not None:
                outcome(False)
            return
        handler = self._delivery_handlers.get(reception.receiver)
        if handler is not None:
            handler(reception.frame)
        if outcome is not None:
            outcome(True)
