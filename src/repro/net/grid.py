"""Uniform spatial grid over node positions.

Coverage queries are the inner loop of every broadcast: the brute-force
radio scans all n positions per (sender, range) pair, which is what caps
topologies at paper scale.  The grid buckets nodes into square cells of
side = the default transmit range, so a range-r disk query only examines
the O(1) ring of cells overlapping the disk — O(neighbors) work instead
of O(n).

Two properties matter for byte-identity with the brute-force scan:

- Results are returned in *position-map insertion order* (the order the
  brute force iterates ``positions.items()``), restored by sorting
  candidates on their insertion rank.
- Distances are computed by the same ``math.hypot`` call on the same
  floats, so values are bit-identical.

Mobility (``set_position``) migrates a node between cells incrementally;
range overrides larger than the cell size simply widen the query ring
(``ceil(r / cell)`` rings), so the high-power attack mode needs no
special casing.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Tuple

NodeId = int
Position = Tuple[float, float]
Cell = Tuple[int, int]


class SpatialGrid:
    """Point index with incremental updates and rank-ordered disk queries."""

    def __init__(self, positions: Dict[NodeId, Position], cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell size must be positive, got {cell_size!r}")
        self._cell_size = float(cell_size)
        self._positions: Dict[NodeId, Position] = {}
        self._cells: Dict[Cell, List[NodeId]] = {}
        self._cell_of: Dict[NodeId, Cell] = {}
        self._rank: Dict[NodeId, int] = {}
        # Candidate distance evaluations, for the O(neighbors) regression
        # test — see UnitDiskRadio.distance_computations.
        self.distance_computations = 0
        for node, pos in positions.items():
            self.insert(node, pos)

    @property
    def cell_size(self) -> float:
        return self._cell_size

    def _cell_for(self, pos: Position) -> Cell:
        cell = self._cell_size
        return (math.floor(pos[0] / cell), math.floor(pos[1] / cell))

    def insert(self, node: NodeId, pos: Position) -> None:
        """Add a node (or move it if already present)."""
        if node in self._positions:
            self.move(node, pos)
            return
        self._rank[node] = len(self._rank)
        self._positions[node] = pos
        cell = self._cell_for(pos)
        self._cell_of[node] = cell
        self._cells.setdefault(cell, []).append(node)

    def move(self, node: NodeId, pos: Position) -> None:
        """Update a node's position, migrating cells only when needed."""
        self._positions[node] = pos
        new_cell = self._cell_for(pos)
        old_cell = self._cell_of[node]
        if new_cell == old_cell:
            return
        bucket = self._cells[old_cell]
        bucket.remove(node)
        if not bucket:
            del self._cells[old_cell]
        self._cell_of[node] = new_cell
        self._cells.setdefault(new_cell, []).append(node)

    def _candidates(self, origin: Position, radius: float) -> Iterator[NodeId]:
        cell = self._cell_size
        # The distance filter uses rounded hypot(), which can report a
        # node at distance exactly `radius` even when its coordinate lies
        # an ulp outside [origin - radius, origin + radius]; pad the cell
        # window by a relative epsilon so such boundary nodes stay inside
        # the scan (real-valued positions never sit on cell edges, so
        # the candidate set is unchanged away from exact boundaries).
        pad = (abs(origin[0]) + abs(origin[1]) + radius) * 1e-12
        cx0 = math.floor((origin[0] - radius - pad) / cell)
        cx1 = math.floor((origin[0] + radius + pad) / cell)
        cy0 = math.floor((origin[1] - radius - pad) / cell)
        cy1 = math.floor((origin[1] + radius + pad) / cell)
        cells = self._cells
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                bucket = cells.get((cx, cy))
                if bucket:
                    yield from bucket

    def query_disk(
        self, origin: Position, radius: float, exclude: NodeId | None = None
    ) -> List[Tuple[NodeId, float]]:
        """``(node, distance)`` pairs within ``radius`` of ``origin``.

        Ordered by position-map insertion rank — identical to a brute
        scan over the insertion-ordered positions dict.
        """
        positions = self._positions
        hypot = math.hypot
        ox, oy = origin
        hits: List[Tuple[NodeId, float]] = []
        count = 0
        for node in self._candidates(origin, radius):
            if node == exclude:
                continue
            pos = positions[node]
            dist = hypot(ox - pos[0], oy - pos[1])
            count += 1
            if dist <= radius:
                hits.append((node, dist))
        self.distance_computations += count
        rank = self._rank
        hits.sort(key=lambda pair: rank[pair[0]])
        return hits
