"""Topology generation.

The paper distributes nodes uniformly over a square field whose side grows
with the node count so that the average density — equivalently the average
neighbor count N_B = pi * r^2 * d — stays fixed (Table 2: N_B = 8,
field 80x80 m for N = 20 up to ~180x180 m for N = 150, r = 30 m).

Besides the uniform generator we provide a deterministic grid (for unit
tests that need known neighbor sets) and helpers for connectivity and for
placing malicious nodes more than two hops apart, as the paper's runs do.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.net.radio import UnitDiskRadio, distance

NodeId = int
Position = Tuple[float, float]


def field_side_for_density(n_nodes: int, tx_range: float, avg_neighbors: float) -> float:
    """Side of the square field giving the target average neighbor count.

    From N_B = pi r^2 d and d = N / L^2:  L = r * sqrt(pi * N / N_B).
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if avg_neighbors <= 0:
        raise ValueError("avg_neighbors must be positive")
    return tx_range * math.sqrt(math.pi * n_nodes / avg_neighbors)


@dataclass
class Topology:
    """A static node placement plus the derived neighbor relation."""

    positions: Dict[NodeId, Position]
    tx_range: float
    field_side: float = 0.0
    _adjacency: Optional[Dict[NodeId, Tuple[NodeId, ...]]] = field(default=None, repr=False)

    @property
    def node_ids(self) -> List[NodeId]:
        """All node ids, sorted."""
        return sorted(self.positions)

    @property
    def size(self) -> int:
        """Number of nodes."""
        return len(self.positions)

    def adjacency(self) -> Dict[NodeId, Tuple[NodeId, ...]]:
        """Neighbor lists at ``tx_range`` (symmetric; computed once)."""
        if self._adjacency is None:
            radio = UnitDiskRadio(self.positions, self.tx_range)
            self._adjacency = {node: radio.neighbors(node) for node in self.positions}
        return self._adjacency

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Direct neighbors of ``node``."""
        return self.adjacency()[node]

    def average_degree(self) -> float:
        """Mean neighbor count over all nodes."""
        adjacency = self.adjacency()
        if not adjacency:
            return 0.0
        return sum(len(v) for v in adjacency.values()) / len(adjacency)

    def is_connected(self) -> bool:
        """Whether the unit-disk graph is a single component."""
        nodes = self.node_ids
        if not nodes:
            return True
        return len(self.reachable_from(nodes[0])) == len(nodes)

    def reachable_from(self, start: NodeId) -> Set[NodeId]:
        """All nodes reachable from ``start`` over radio links."""
        adjacency = self.adjacency()
        seen = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    def hop_distance(self, a: NodeId, b: NodeId) -> Optional[int]:
        """Shortest hop count between a and b, or None if disconnected."""
        if a == b:
            return 0
        adjacency = self.adjacency()
        seen = {a}
        frontier: deque = deque([(a, 0)])
        while frontier:
            node, hops = frontier.popleft()
            for neighbor in adjacency[node]:
                if neighbor == b:
                    return hops + 1
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append((neighbor, hops + 1))
        return None

    def radio(self) -> UnitDiskRadio:
        """Fresh :class:`UnitDiskRadio` over this placement."""
        return UnitDiskRadio(self.positions, self.tx_range)


def uniform_topology(
    n_nodes: int,
    tx_range: float,
    field_side: float,
    rng: random.Random,
    first_id: int = 0,
) -> Topology:
    """Place ``n_nodes`` uniformly at random in a square field."""
    positions = {
        first_id + i: (rng.uniform(0.0, field_side), rng.uniform(0.0, field_side))
        for i in range(n_nodes)
    }
    return Topology(positions=positions, tx_range=tx_range, field_side=field_side)


def grid_topology(columns: int, rows: int, spacing: float, tx_range: float) -> Topology:
    """Deterministic grid placement; with spacing < r <= spacing*sqrt(2) the
    neighbor sets are the 4-connected grid, convenient for unit tests."""
    positions: Dict[NodeId, Position] = {}
    node = 0
    for row in range(rows):
        for col in range(columns):
            positions[node] = (col * spacing, row * spacing)
            node += 1
    side = max(columns - 1, 0) * spacing
    return Topology(positions=positions, tx_range=tx_range, field_side=side)


def generate_connected_topology(
    n_nodes: int,
    tx_range: float,
    avg_neighbors: float,
    rng: random.Random,
    max_tries: int = 200,
    min_degree: int = 1,
) -> Topology:
    """Draw uniform topologies until one is connected (and meets min degree).

    The paper's density (N_B = 8) yields connected graphs with high
    probability; the retry loop absorbs unlucky draws deterministically
    under the provided RNG.
    """
    side = field_side_for_density(n_nodes, tx_range, avg_neighbors)
    for _ in range(max_tries):
        topology = uniform_topology(n_nodes, tx_range, side, rng)
        adjacency = topology.adjacency()
        if min_degree > 0 and any(len(v) < min_degree for v in adjacency.values()):
            continue
        if topology.is_connected():
            return topology
    raise RuntimeError(
        f"could not draw a connected topology in {max_tries} tries "
        f"(n={n_nodes}, r={tx_range}, N_B={avg_neighbors})"
    )


def choose_separated_nodes(
    topology: Topology,
    count: int,
    min_hops: int,
    rng: random.Random,
    candidates: Optional[Sequence[NodeId]] = None,
    max_tries: int = 500,
) -> List[NodeId]:
    """Pick ``count`` nodes pairwise more than ``min_hops`` hops apart.

    The paper selects malicious nodes "at random such that they are more
    than 2 hops away from each other"; call with ``min_hops=2``.
    """
    pool = list(candidates if candidates is not None else topology.node_ids)
    if count == 0:
        return []
    if count > len(pool):
        raise ValueError(f"cannot choose {count} nodes from a pool of {len(pool)}")
    for _ in range(max_tries):
        chosen = rng.sample(pool, count)
        ok = True
        for i in range(len(chosen)):
            for j in range(i + 1, len(chosen)):
                hops = topology.hop_distance(chosen[i], chosen[j])
                if hops is not None and hops <= min_hops:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            return chosen
    raise RuntimeError(
        f"could not place {count} nodes pairwise more than {min_hops} hops apart"
    )


def farthest_pair(topology: Topology, rng: random.Random, samples: int = 40) -> Tuple[NodeId, NodeId]:
    """A (sampled) pair of nodes with large Euclidean separation.

    Used by examples to pick wormhole endpoints that actually shortcut the
    network.
    """
    nodes = topology.node_ids
    best: Tuple[NodeId, NodeId] = (nodes[0], nodes[-1])
    best_dist = -1.0
    for _ in range(samples):
        a, b = rng.sample(nodes, 2)
        d = distance(topology.positions[a], topology.positions[b])
        if d > best_dist:
            best_dist = d
            best = (a, b)
    return best
