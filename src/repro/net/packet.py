"""Packet and frame definitions.

Every protocol message is a :class:`Packet` subclass; every on-air
transmission wraps one packet in a :class:`Frame` that adds the link-layer
header.  Two design points matter for LITEWORP:

- ``Frame.prev_hop`` is the *announced previous hop*: the node the
  transmitter claims to have received the packet from.  Honest forwarders
  announce truthfully; wormhole nodes fabricate it (paper figure 4).
- ``Packet.key()`` identifies the *same logical packet* across hops — e.g. a
  route request keeps the key ``("REQ", origin, request_id)`` at every
  forwarder — which is what guards use to correlate watch-buffer entries
  with later forwards.

Sizes are in bytes and drive transmission durations on the 40 kbps channel
from the paper's Table 2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

NodeId = int

_packet_uids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Packet:
    """Base class for all protocol messages.

    ``uid`` identifies a concrete Python object lineage (useful in traces);
    :meth:`key` identifies the logical packet across hops.
    """

    uid: int = field(default_factory=lambda: next(_packet_uids), init=False, compare=False)

    def key(self) -> Tuple[Any, ...]:
        """Logical identity of the packet, stable across forwarding hops."""
        raise NotImplementedError

    @property
    def size_bytes(self) -> int:
        """On-air size, used for transmission-duration computation."""
        raise NotImplementedError

    @property
    def is_control(self) -> bool:
        """Whether LITEWORP treats this as control traffic (watched by guards)."""
        return True

    @property
    def monitored(self) -> bool:
        """Whether guards watch this packet type for fabrication/drops.
        Routed control packets (route requests/replies, beacons) are;
        one-hop protocol messages (HELLO, alerts, ...) are not."""
        return False


@dataclass(frozen=True, slots=True)
class HelloPacket(Packet):
    """One-hop broadcast announcing a freshly deployed node (paper 4.2.1)."""

    sender: NodeId = 0

    def key(self) -> Tuple[Any, ...]:
        return ("HELLO", self.sender)

    @property
    def size_bytes(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class HelloReplyPacket(Packet):
    """Authenticated reply to a HELLO, addressed to the announcer."""

    sender: NodeId = 0
    announcer: NodeId = 0
    auth: bytes = b""

    def key(self) -> Tuple[Any, ...]:
        return ("HELLO_REPLY", self.sender, self.announcer)

    @property
    def size_bytes(self) -> int:
        return 24


@dataclass(frozen=True, slots=True)
class NeighborListPacket(Packet):
    """Broadcast of a node's direct-neighbor list ``R_A``.

    ``auths`` maps each neighbor id to the MAC computed with the pairwise
    key shared with that neighbor, so each recipient can verify the list
    individually (paper 4.2.1).
    """

    sender: NodeId = 0
    neighbors: Tuple[NodeId, ...] = ()
    auths: Tuple[Tuple[NodeId, bytes], ...] = ()

    def key(self) -> Tuple[Any, ...]:
        return ("NLIST", self.sender)

    @property
    def size_bytes(self) -> int:
        return 8 + 4 * len(self.neighbors) + 8 * len(self.auths)

    def auth_for(self, neighbor: NodeId) -> Optional[bytes]:
        """The authentication tag destined for ``neighbor``, if present."""
        for node, tag in self.auths:
            if node == neighbor:
                return tag
        return None


@dataclass(frozen=True, slots=True)
class RouteRequest(Packet):
    """Flooded on-demand route request (REQ).

    ``hop_count`` is the number of hops the request has traversed; wormhole
    ends forward it without incrementing to appear close to the origin.
    """

    origin: NodeId = 0
    request_id: int = 0
    target: NodeId = 0
    hop_count: int = 0
    path: Tuple[NodeId, ...] = ()

    def key(self) -> Tuple[Any, ...]:
        return ("REQ", self.origin, self.request_id)

    @property
    def size_bytes(self) -> int:
        return 32

    @property
    def monitored(self) -> bool:
        return True

    def forwarded_by(self, node: NodeId) -> "RouteRequest":
        """Copy of the request as rebroadcast by ``node`` (one more hop)."""
        return RouteRequest(
            origin=self.origin,
            request_id=self.request_id,
            target=self.target,
            hop_count=self.hop_count + 1,
            path=self.path + (node,),
        )


@dataclass(frozen=True, slots=True)
class RouteReply(Packet):
    """Route reply (REP), unicast hop-by-hop back toward the origin.

    ``path`` records the nodes the corresponding request traversed (origin
    first); it is carried for bookkeeping and malicious-route metrics, the
    forwarding itself follows reverse pointers.
    """

    origin: NodeId = 0
    request_id: int = 0
    target: NodeId = 0
    hop_count: int = 0
    path: Tuple[NodeId, ...] = ()

    def key(self) -> Tuple[Any, ...]:
        return ("REP", self.origin, self.request_id)

    @property
    def size_bytes(self) -> int:
        return 32 + 4 * len(self.path)

    @property
    def monitored(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class DataPacket(Packet):
    """Application data, forwarded along an established route."""

    origin: NodeId = 0
    destination: NodeId = 0
    flow_id: int = 0
    sequence: int = 0
    payload_size: int = 64

    def key(self) -> Tuple[Any, ...]:
        return ("DATA", self.origin, self.flow_id, self.sequence)

    @property
    def size_bytes(self) -> int:
        return self.payload_size

    @property
    def is_control(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class RouteErrorPacket(Packet):
    """Broadcast by a node that *cannot* forward a packet it was handed
    (no reverse pointer, or the next hop has been revoked).

    Guards clear the corresponding watch-buffer entry when they hear it, so
    a legitimate inability to forward is not mistaken for a malicious drop.
    A malicious node could of course abuse this to dodge drop accusations —
    but the paper already notes a smart wormhole can dodge them by
    forwarding a copy over the slow route; fabrication remains the primary
    detection signal.
    """

    reporter: NodeId = 0
    inner_key: Tuple[Any, ...] = ()

    def key(self) -> Tuple[Any, ...]:
        return ("RERR", self.reporter) + self.inner_key

    @property
    def size_bytes(self) -> int:
        return 24


@dataclass(frozen=True, slots=True)
class HeartbeatPacket(Packet):
    """One-hop liveness beacon (liveness refinement, DESIGN.md 5b item 5).

    Broadcast periodically so neighbors can tell a crashed node from a
    malicious dropper.  Never monitored: heartbeats are one-hop and carry
    no forwarding obligation.
    """

    sender: NodeId = 0
    sequence: int = 0

    def key(self) -> Tuple[Any, ...]:
        return ("HBEAT", self.sender, self.sequence)

    @property
    def size_bytes(self) -> int:
        return 12


@dataclass(frozen=True, slots=True)
class ProbePacket(Packet):
    """Unicast liveness probe sent to a SUSPECT neighbor."""

    sender: NodeId = 0
    target: NodeId = 0
    nonce: int = 0

    def key(self) -> Tuple[Any, ...]:
        return ("PROBE", self.sender, self.target, self.nonce)

    @property
    def size_bytes(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class ProbeAckPacket(Packet):
    """Reply to a :class:`ProbePacket`, echoing its nonce."""

    sender: NodeId = 0
    target: NodeId = 0
    nonce: int = 0

    def key(self) -> Tuple[Any, ...]:
        return ("PROBE_ACK", self.sender, self.target, self.nonce)

    @property
    def size_bytes(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class NoisePacket(Packet):
    """Meaningless filler traffic used by the MAC-saturation fault.

    No protocol layer listens for it; its only effect is to occupy air
    time and collide with legitimate frames.
    """

    sender: NodeId = 0
    sequence: int = 0
    payload_size: int = 32

    def key(self) -> Tuple[Any, ...]:
        return ("NOISE", self.sender, self.sequence)

    @property
    def size_bytes(self) -> int:
        return self.payload_size

    @property
    def is_control(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class AlertPacket(Packet):
    """Authenticated accusation sent by a guard to a neighbor of the accused.

    ``relay_via`` supports the one-relay delivery used when the guard and
    the recipient are two hops apart (both being neighbors of the accused
    guarantees a common neighbor exists in the usual case).
    """

    guard: NodeId = 0
    accused: NodeId = 0
    recipient: NodeId = 0
    auth: bytes = b""
    relay_via: Optional[NodeId] = None

    def key(self) -> Tuple[Any, ...]:
        return ("ALERT", self.guard, self.accused, self.recipient)

    @property
    def size_bytes(self) -> int:
        return 24


@dataclass(frozen=True, slots=True)
class AlertAckPacket(Packet):
    """Authenticated acknowledgment of a received alert.

    Sent only when bounded alert retransmission is enabled
    (``LiteworpConfig.alert_retries`` > 0): the recipient confirms the
    accusation arrived so the guard stops retransmitting.  ``relay_via``
    mirrors the alert's one-relay delivery for two-hop guard/recipient
    pairs.
    """

    sender: NodeId = 0
    guard: NodeId = 0
    accused: NodeId = 0
    auth: bytes = b""
    relay_via: Optional[NodeId] = None

    def key(self) -> Tuple[Any, ...]:
        return ("ALERT_ACK", self.sender, self.guard, self.accused)

    @property
    def size_bytes(self) -> int:
        return 24


@dataclass(frozen=True, slots=True)
class RttProbePacket(Packet):
    """Unicast round-trip-time probe (RTT wormhole detector plugin).

    The prober records the send time keyed by nonce; the matching
    :class:`RttEchoPacket` closes the sample.  Control traffic, so a
    packet-relay wormhole relays it — and thereby stretches the measured
    RTT, which is the detection signal.
    """

    sender: NodeId = 0
    target: NodeId = 0
    nonce: int = 0

    def key(self) -> Tuple[Any, ...]:
        return ("RTT_PROBE", self.sender, self.target, self.nonce)

    @property
    def size_bytes(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class RttEchoPacket(Packet):
    """Immediate echo of an :class:`RttProbePacket`, nonce preserved."""

    sender: NodeId = 0
    target: NodeId = 0
    nonce: int = 0

    def key(self) -> Tuple[Any, ...]:
        return ("RTT_ECHO", self.sender, self.target, self.nonce)

    @property
    def size_bytes(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class SndChallengePacket(Packet):
    """Time-of-flight challenge (secure-neighbor-discovery plugin).

    The challenger starts its clock when the frame hits the air; the
    neighbor must return an authenticated :class:`SndResponsePacket`
    within the response window for the link to count as verified.
    """

    sender: NodeId = 0
    target: NodeId = 0
    nonce: int = 0

    def key(self) -> Tuple[Any, ...]:
        return ("SND_CHAL", self.sender, self.target, self.nonce)

    @property
    def size_bytes(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class SndResponsePacket(Packet):
    """Authenticated reply to an :class:`SndChallengePacket`.

    ``auth`` is an HMAC over (challenger, responder, nonce) under the
    pairwise key, so a wormhole cannot forge responses for links it
    merely relays — it can only delay them past the window.
    """

    sender: NodeId = 0
    target: NodeId = 0
    nonce: int = 0
    auth: bytes = b""

    def key(self) -> Tuple[Any, ...]:
        return ("SND_RESP", self.sender, self.target, self.nonce)

    @property
    def size_bytes(self) -> int:
        return 24


@dataclass(frozen=True, slots=True)
class Frame:
    """Link-layer transmission unit.

    Attributes
    ----------
    transmitter:
        The link-layer source *as claimed in the header*.  Honest nodes put
        their own id; a packet-relay attacker retransmits frames preserving
        the original header, which is exactly what makes two distant nodes
        believe they are neighbors.
    link_dst:
        ``None`` for broadcast, else the intended next hop.  All in-range
        nodes still receive the frame (promiscuous overhearing is what
        enables local monitoring).
    prev_hop:
        Announced previous hop — ``None`` when the transmitter originated
        the packet.
    leash:
        Optional packet leash (baseline defense, see
        :mod:`repro.baselines.leashes`): authenticated sender location and
        send time, stamped at the radio at transmission.  Carried opaquely
        here; anything with a ``size_bytes`` attribute counts toward the
        frame's air time.
    """

    packet: Packet
    transmitter: NodeId
    link_dst: Optional[NodeId] = None
    prev_hop: Optional[NodeId] = None
    leash: Optional[Any] = None

    @property
    def is_broadcast(self) -> bool:
        """Whether the frame has no specific link-layer destination."""
        return self.link_dst is None

    @property
    def size_bytes(self) -> int:
        """Packet size plus a fixed 12-byte link header (plus any leash)."""
        extra = getattr(self.leash, "size_bytes", 0) if self.leash is not None else 0
        return self.packet.size_bytes + 12 + extra

    def describe(self) -> Dict[str, Any]:
        """Compact dict for traces."""
        return {
            "packet": self.packet.key(),
            "tx": self.transmitter,
            "dst": self.link_dst,
            "prev": self.prev_hop,
        }
