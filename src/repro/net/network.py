"""Network assembly: simulator + radio + channel + nodes.

:class:`Network` is the composition root for a simulated deployment.  Given
a :class:`~repro.net.topology.Topology` it builds the radio, the channel,
and one :class:`~repro.net.node.Node` (with its own MAC) per placement, and
exposes lookup helpers the protocol layers use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.net.channel import Channel
from repro.net.mac import CsmaMac, MacConfig
from repro.net.node import Node
from repro.net.packet import NodeId
from repro.net.radio import UnitDiskRadio
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class NetworkConfig:
    """Physical/link-layer parameters (defaults follow Table 2)."""

    bandwidth_bps: float = 40_000.0
    ambient_loss: float = 0.0
    capture_ratio: float = 1.1
    mac: MacConfig = MacConfig()


class Network:
    """A fully wired simulated network over a static topology."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        rng: RngRegistry,
        trace: Optional[TraceLog] = None,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.rng = rng
        self.trace = trace if trace is not None else TraceLog()
        self.config = config or NetworkConfig()
        self.radio = UnitDiskRadio(topology.positions, topology.tx_range)
        self.channel = Channel(
            sim,
            self.radio,
            rng,
            trace=self.trace,
            bandwidth_bps=self.config.bandwidth_bps,
            ambient_loss=self.config.ambient_loss,
            capture_ratio=self.config.capture_ratio,
        )
        self.nodes: Dict[NodeId, Node] = {}
        for node_id, position in topology.positions.items():
            mac = CsmaMac(
                sim,
                self.channel,
                node_id,
                rng.stream(f"mac:{node_id}"),
                config=self.config.mac,
                trace=self.trace,
            )
            node = Node(node_id, position, mac)
            self.nodes[node_id] = node
            self.channel.attach(node_id, node.deliver)
            self.channel.set_receive_gate(node_id, lambda n=node: n.alive)

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def node(self, node_id: NodeId) -> Node:
        """The node object for ``node_id``."""
        return self.nodes[node_id]

    def node_ids(self) -> Tuple[NodeId, ...]:
        """All node ids, sorted."""
        return tuple(sorted(self.nodes))

    def neighbors(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        """Ground-truth radio neighbors (default range)."""
        return self.topology.neighbors(node_id)

    def common_neighbors(self, a: NodeId, b: NodeId) -> Tuple[NodeId, ...]:
        """Ground-truth guard candidates for a link between a and b."""
        near_a = set(self.topology.neighbors(a))
        return tuple(n for n in self.topology.neighbors(b) if n in near_a)

    def set_high_power(self, node_id: NodeId, range_multiplier: float) -> None:
        """Grant a node an extended transmit range (attack mode 3.3)."""
        if range_multiplier <= 0:
            raise ValueError("range multiplier must be positive")
        self.radio.set_tx_range(node_id, self.topology.tx_range * range_multiplier)

    def emit(self, kind: str, **fields: object) -> None:
        """Convenience trace emission stamped with the current time."""
        self.trace.emit(self.sim.now, kind, **fields)
