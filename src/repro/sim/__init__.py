"""Discrete-event simulation engine.

This package provides the substrate on which the wireless network, the
routing protocols, the attacks, and LITEWORP itself run.  It is a small,
deterministic, seedable discrete-event kernel in the style of ns-2's
scheduler:

- :class:`~repro.sim.engine.Simulator` — the event loop (clock + heap).
- :class:`~repro.sim.engine.Event` — a cancellable scheduled callback.
- :class:`~repro.sim.rng.RngRegistry` — named, independently seeded random
  streams so that, e.g., traffic randomness and channel randomness do not
  perturb each other across configuration changes.
- :class:`~repro.sim.timers.PeriodicTimer` — restartable periodic callbacks.
- :class:`~repro.sim.trace.TraceLog` — structured trace records for tests
  and experiment post-processing.
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.rng import RngRegistry
from repro.sim.timers import PeriodicTimer, Timeout
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Event",
    "PeriodicTimer",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Timeout",
    "TraceLog",
    "TraceRecord",
]
