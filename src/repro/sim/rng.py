"""Named, independently seeded random streams.

Experiments in the paper are averaged over 30 runs with randomised node
placement, traffic, and attacker selection.  To keep those three sources of
randomness independent (so that, e.g., enabling LITEWORP does not shift the
topology draw), every consumer asks the registry for a *named* stream.
Streams are derived deterministically from the root seed and the name, so a
run is fully described by ``(root_seed, config)``.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RngRegistry:
    """Factory for named :class:`random.Random` streams.

    >>> reg = RngRegistry(seed=7)
    >>> a = reg.stream("traffic")
    >>> b = reg.stream("topology")
    >>> a is reg.stream("traffic")
    True
    >>> a is b
    False
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was built from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The per-stream seed mixes the root seed with a CRC of the name, so
        distinct names yield independent-looking streams and the mapping is
        stable across processes (unlike ``hash()``, which is salted).
        """
        rng = self._streams.get(name)
        if rng is None:
            derived = (self._seed * 1_000_003 + zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF
            rng = random.Random(derived)
            self._streams[name] = rng
        return rng

    def fork(self, run_index: int) -> "RngRegistry":
        """Registry for an independent replication (used for the 30-run averages)."""
        return RngRegistry(seed=self._seed * 7919 + run_index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={sorted(self._streams)})"
