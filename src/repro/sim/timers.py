"""Timer helpers layered on top of the event kernel.

Protocol code needs two recurring shapes:

- :class:`Timeout` — a restartable one-shot deadline (watch-buffer entries,
  route-cache eviction, neighbor-discovery reply windows).
- :class:`PeriodicTimer` — a repeating callback (traffic generation ticks,
  metric sampling).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator


class Timeout:
    """A restartable one-shot timer.

    ``start`` arms the timer; ``cancel`` disarms it; starting an armed timer
    re-arms it from now (the previous deadline is dropped).  The callback
    receives no arguments — bind state with a closure or ``functools.partial``.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """Whether the timer currently has a pending deadline."""
        return self._event is not None and self._event.pending

    @property
    def deadline(self) -> Optional[float]:
        """Absolute time at which the timer will fire, or None if disarmed."""
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """(Re-)arm the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTimer:
    """A repeating timer with optionally randomised periods.

    ``period_fn`` is called before each arming to obtain the next interval —
    pass a constant via ``lambda: 1.0`` or an exponential sampler for Poisson
    processes.  The callback runs once per period until :meth:`stop`.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], Any],
        period_fn: Callable[[], float],
    ) -> None:
        self._sim = sim
        self._callback = callback
        self._period_fn = period_fn
        self._event: Optional[Event] = None
        self._running = False

    @property
    def running(self) -> bool:
        """Whether the timer is currently scheduled to keep firing."""
        return self._running

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin firing.  ``initial_delay`` overrides the first period."""
        if self._running:
            return
        self._running = True
        delay = self._period_fn() if initial_delay is None else initial_delay
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Stop firing.  Idempotent."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:
            self._event = self._sim.schedule(self._period_fn(), self._fire)
