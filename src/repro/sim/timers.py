"""Timer helpers layered on top of the event kernel.

Protocol code needs two recurring shapes:

- :class:`Timeout` — a restartable one-shot deadline (watch-buffer entries,
  route-cache eviction, neighbor-discovery reply windows).
- :class:`PeriodicTimer` — a repeating callback (traffic generation ticks,
  metric sampling).

:class:`TimerWheel` is the pure-Python mirror of the queue structure
inside the C kernel (``repro.sim._ckernel``): a slot ring for the
short-deadline timer traffic that dominates simulation runs plus an
overflow heap for far deadlines, with exact ``(time, seq)`` ordering.
The C kernel is the production implementation; this class exists so the
ordering algorithm is testable (and fuzzable by hypothesis) from Python,
and as a documented reference for the C code's invariants.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.engine import Event, Simulator


class TimerWheel:
    """Slot-indexed timer queue with exact ``(time, seq)`` ordering.

    Entries whose time falls within ``n_slots * slot_width`` of the
    cursor land in a ring bucket (O(1) push; the bucket is heapified
    lazily when first drained); later entries go to an overflow heap.
    Every pop compares the ring minimum against the overflow minimum, so
    ordering never depends on migrating overflow entries — the same
    design as the C kernel's queue.

    The cursor follows the popped times: entries may be pushed at any
    time >= the last popped time (enforced), exactly the discipline a
    discrete-event kernel provides.
    """

    def __init__(self, slot_width: float = 1e-3, n_slots: int = 4096) -> None:
        if slot_width <= 0 or not math.isfinite(slot_width):
            raise ValueError(f"slot_width must be positive and finite, got {slot_width!r}")
        if n_slots < 2:
            raise ValueError(f"need at least 2 slots, got {n_slots!r}")
        self._width = float(slot_width)
        self._n_slots = int(n_slots)
        self._slots: List[List[Tuple[float, int, Any]]] = [[] for _ in range(n_slots)]
        self._heapified = [False] * n_slots
        self._occupied: set[int] = set()
        self._cursor = 0  # absolute slot index, monotone
        self._far: List[Tuple[float, int, Any]] = []
        self._size = 0
        self._wheel_size = 0
        self._last_time = -math.inf

    def __len__(self) -> int:
        return self._size

    @property
    def far_count(self) -> int:
        """Entries currently in the overflow heap (introspection)."""
        return len(self._far)

    def _slot_of(self, time: float) -> int:
        return int(time / self._width)

    def push(self, time: float, seq: int, item: Any = None) -> None:
        """Queue ``item`` at ``(time, seq)``.  ``time`` must not precede
        the most recently popped entry's time."""
        if time < self._last_time:
            raise ValueError(f"push at t={time!r} precedes popped t={self._last_time!r}")
        entry = (time, seq, item)
        slot = self._slot_of(time)
        if slot < self._cursor:
            slot = self._cursor
        if slot - self._cursor < self._n_slots:
            ring = slot % self._n_slots
            bucket = self._slots[ring]
            if self._heapified[ring]:
                heapq.heappush(bucket, entry)
            else:
                bucket.append(entry)
            self._occupied.add(ring)
            self._wheel_size += 1
        else:
            heapq.heappush(self._far, entry)
        self._size += 1

    def _wheel_min_ring(self) -> Optional[int]:
        if not self._wheel_size:
            return None
        n = self._n_slots
        start = self._cursor % n
        for step in range(n):
            ring = (start + step) % n
            if ring in self._occupied:
                self._cursor += step
                if not self._heapified[ring]:
                    heapq.heapify(self._slots[ring])
                    self._heapified[ring] = True
                return ring
        return None

    def peek(self) -> Optional[Tuple[float, int, Any]]:
        """The minimum entry without removing it, or None when empty."""
        ring = self._wheel_min_ring()
        wheel = self._slots[ring][0] if ring is not None else None
        far = self._far[0] if self._far else None
        if wheel is not None and far is not None:
            return far if far < wheel else wheel
        return wheel if wheel is not None else far

    def pop(self) -> Optional[Tuple[float, int, Any]]:
        """Remove and return the minimum ``(time, seq, item)`` entry."""
        ring = self._wheel_min_ring()
        wheel = self._slots[ring][0] if ring is not None else None
        take_far = self._far and (wheel is None or self._far[0] < wheel)
        if take_far:
            entry = heapq.heappop(self._far)
        elif ring is not None:
            entry = heapq.heappop(self._slots[ring])
            self._wheel_size -= 1
            if not self._slots[ring]:
                self._occupied.discard(ring)
                self._heapified[ring] = False
        else:
            return None
        self._size -= 1
        self._last_time = entry[0]
        new_cursor = self._slot_of(entry[0])
        if new_cursor > self._cursor:
            self._cursor = new_cursor
        return entry


class Timeout:
    """A restartable one-shot timer.

    ``start`` arms the timer; ``cancel`` disarms it; starting an armed timer
    re-arms it from now (the previous deadline is dropped).  The callback
    receives no arguments — bind state with a closure or ``functools.partial``.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """Whether the timer currently has a pending deadline."""
        return self._event is not None and self._event.pending

    @property
    def deadline(self) -> Optional[float]:
        """Absolute time at which the timer will fire, or None if disarmed."""
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """(Re-)arm the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTimer:
    """A repeating timer with optionally randomised periods.

    ``period_fn`` is called before each arming to obtain the next interval —
    pass a constant via ``lambda: 1.0`` or an exponential sampler for Poisson
    processes.  The callback runs once per period until :meth:`stop`.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], Any],
        period_fn: Callable[[], float],
    ) -> None:
        self._sim = sim
        self._callback = callback
        self._period_fn = period_fn
        self._event: Optional[Event] = None
        self._running = False

    @property
    def running(self) -> bool:
        """Whether the timer is currently scheduled to keep firing."""
        return self._running

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin firing.  ``initial_delay`` overrides the first period."""
        if self._running:
            return
        self._running = True
        delay = self._period_fn() if initial_delay is None else initial_delay
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Stop firing.  Idempotent."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:
            self._event = self._sim.schedule(self._period_fn(), self._fire)
