"""Build and select the C-accelerated event kernel.

The hot path of every experiment is the event dispatch loop, and the
pure-Python :class:`repro.sim.engine.Simulator` tops out well below what
1000-node campaigns need.  This module compiles ``_ckernel.c`` on demand
with the system C compiler, caches the shared object next to the source,
and hands out whichever kernel is active.

Selection is controlled by the ``REPRO_ACCEL`` environment variable:

- ``auto`` (default): use the C kernel if it builds, else fall back to
  the pure-Python engine silently.
- ``off``: never build or use the C kernel.
- ``require``: fail loudly if the C kernel cannot be built — used by CI
  and the benchmark suite so a broken toolchain cannot masquerade as a
  performance regression.

:func:`reference_mode` switches the whole stack — kernel, radio index,
batched delivery, pooling — to the straightforward reference
implementations for the duration of a ``with`` block.  The byte-identity
benchmark uses it to run every scenario twice in one process and compare
MetricsReports structurally.
"""

from __future__ import annotations

import contextlib
import importlib
import os
import subprocess
import sys
import sysconfig
import tempfile
import threading
from typing import Iterator, Optional

_SOURCE = os.path.join(os.path.dirname(__file__), "_ckernel.c")

_lock = threading.Lock()
_ckernel = None          # module object once loaded, False once failed
_reference_depth = 0


class AccelError(RuntimeError):
    """Raised when REPRO_ACCEL=require and the C kernel is unavailable."""


def accel_mode() -> str:
    """The effective REPRO_ACCEL setting (auto / off / require)."""
    mode = os.environ.get("REPRO_ACCEL", "auto").strip().lower()
    if mode not in ("auto", "off", "require"):
        raise AccelError(f"REPRO_ACCEL must be auto, off or require, got {mode!r}")
    return mode


def _ext_path() -> str:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return os.path.join(os.path.dirname(__file__), "_ckernel" + suffix)


def _build(ext_path: str) -> None:
    """Compile _ckernel.c into ext_path (atomic rename, safe under races)."""
    include = sysconfig.get_paths()["include"]
    cc = os.environ.get("CC", "cc")
    fd, tmp = tempfile.mkstemp(
        suffix=".so", prefix="_ckernel-", dir=os.path.dirname(ext_path)
    )
    os.close(fd)
    try:
        subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", f"-I{include}", _SOURCE, "-o", tmp],
            check=True,
            capture_output=True,
            text=True,
        )
        os.replace(tmp, ext_path)
    finally:
        with contextlib.suppress(OSError):
            os.unlink(tmp)


def _load() -> Optional[object]:
    """Return the _ckernel module, building it if needed; None on failure."""
    global _ckernel
    if _ckernel is not None:
        return _ckernel or None
    with _lock:
        if _ckernel is not None:
            return _ckernel or None
        try:
            ext_path = _ext_path()
            stale = (
                not os.path.exists(ext_path)
                or os.path.getmtime(ext_path) < os.path.getmtime(_SOURCE)
            )
            if stale:
                _build(ext_path)
            module = importlib.import_module("repro.sim._ckernel")
            from repro.sim.engine import SimulationError

            module._set_error_class(SimulationError)
            _ckernel = module
        except Exception as exc:  # noqa: BLE001 - any failure means fallback
            _ckernel = False
            if accel_mode() == "require":
                raise AccelError(
                    f"REPRO_ACCEL=require but the C kernel failed to build/load: {exc}"
                ) from exc
            return None
    return _ckernel or None


def kernel_available() -> bool:
    """Whether the C kernel can be (or has been) loaded under current mode."""
    if accel_mode() == "off":
        return False
    return _load() is not None


def enabled() -> bool:
    """Whether accelerated code paths should be used right now.

    False inside :func:`reference_mode`, when REPRO_ACCEL=off, or when the
    C kernel is unavailable in auto mode.  The radio/channel layers use
    this at construction time to pick indexed/batched vs reference paths.
    """
    if _reference_depth > 0:
        return False
    mode = accel_mode()
    if mode == "off":
        return False
    if mode == "require":
        _load()
        return True
    return _load() is not None


def features_enabled() -> bool:
    """Whether the pure-Python fast paths are active.

    Gates the spatial grid index, batched reception delivery and object
    pooling.  Unlike :func:`enabled` this does not require the C kernel
    to build — the fast paths are pure Python and independently correct —
    but it honours REPRO_ACCEL=off and :func:`reference_mode` so one
    switch flips the whole stack to the reference implementations.
    """
    return _reference_depth == 0 and accel_mode() != "off"


def reference_active() -> bool:
    """Whether :func:`reference_mode` is currently in force."""
    return _reference_depth > 0


@contextlib.contextmanager
def reference_mode() -> Iterator[None]:
    """Force the reference implementations for the duration of the block.

    Scenarios built inside the block get the pure-Python kernel, the
    brute-force radio queries, per-receiver delivery and no pooling —
    the exact pre-rearchitecture stack, for in-process A/B identity runs.
    """
    global _reference_depth
    _reference_depth += 1
    try:
        yield
    finally:
        _reference_depth -= 1


def make_simulator(start_time: float = 0.0):
    """Instantiate the fastest kernel allowed by mode and reference state."""
    from repro.sim.engine import Simulator

    if _reference_depth > 0 or accel_mode() == "off":
        return Simulator(start_time)
    module = _load()
    if module is None:
        return Simulator(start_time)
    return module.Simulator(start_time)


def self_check() -> str:
    """One-line status string for diagnostics (used by ``repro bench``)."""
    mode = accel_mode()
    if mode == "off":
        return "accel: off (REPRO_ACCEL=off)"
    if kernel_available():
        return f"accel: C kernel active (mode={mode}, {sys.implementation.name})"
    return f"accel: unavailable, pure-Python fallback (mode={mode})"
