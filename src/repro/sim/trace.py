"""Structured trace log.

The experiment harness and many integration tests assert on *what happened*
rather than on return values — which node detected which attacker, when a
route through a wormhole was established, when a packet was dropped.  The
trace log is the single sink for those facts: protocol code emits
``TraceRecord``s, and consumers filter by kind.

Observability extensions (see :mod:`repro.obs` and docs/OBSERVABILITY.md):

- **Sinks** — :meth:`TraceLog.attach_sink` streams every record to an
  external consumer (e.g. a JSONL file) the moment it is emitted, so the
  full trace can leave the process without ever being resident in memory.
- **Bounded residency** — constructing the log with a ``capacity`` turns
  the in-memory store into a ring buffer: the newest ``capacity`` records
  stay queryable, older ones are evicted (and counted).  Subscribers and
  sinks always see every record regardless of eviction.
- **Validation** — :meth:`set_validator` installs a per-record check
  (the schema registry's strict mode) that runs before the record is
  stored or forwarded.
- **Degradation** — a sink whose ``write`` raises :class:`OSError`
  (ENOSPC, EIO, a yanked mount) is detached with a warning instead of
  aborting the run; if the log was unbounded it falls back to a bounded
  ring buffer so the loss of the export path cannot exhaust memory.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Union

#: Ring capacity adopted when an unbounded log loses its sink to an IO
#: error: large enough to keep a useful post-mortem window, small enough
#: never to look like the unbounded store it replaces.
DEGRADED_RING_CAPACITY = 65536


@dataclass(frozen=True)
class TraceRecord:
    """One trace fact: a timestamp, a kind tag, and free-form fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Field accessor with a default, mirroring ``dict.get``."""
        return self.fields.get(key, default)


class TraceLog:
    """Append-only log of :class:`TraceRecord` with filtered retrieval.

    Subscribers may register live callbacks per kind (the metric collectors
    do this) so that experiments do not need to re-scan the log.

    Parameters
    ----------
    capacity:
        ``None`` (default) keeps every record in memory — the historical
        behaviour every test relies on.  A positive integer bounds the
        resident store to the newest ``capacity`` records (ring-buffer
        mode); evicted records are still delivered to subscribers and
        sinks, and counted in :attr:`dropped_records`.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive or None, got {capacity!r}")
        self.capacity = capacity
        self._records: Union[List[TraceRecord], Deque[TraceRecord]] = (
            [] if capacity is None else deque(maxlen=capacity)
        )
        self._subscribers: Dict[str, List[Callable[[TraceRecord], None]]] = {}
        self._sinks: List[Any] = []
        self._validator: Optional[Callable[[TraceRecord], None]] = None
        self.total_emitted = 0
        self.peak_resident = 0
        self.degraded_sinks: List[str] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def resident_records(self) -> int:
        """Records currently held in memory (≤ capacity in ring mode)."""
        return len(self._records)

    @property
    def dropped_records(self) -> int:
        """Records evicted by the ring buffer since construction."""
        return self.total_emitted - len(self._records)

    def emit(self, time: float, kind: str, **fields: Any) -> TraceRecord:
        """Record a fact and notify validator, sinks, and subscribers."""
        record = TraceRecord(time=time, kind=kind, fields=fields)
        if self._validator is not None:
            self._validator(record)
        self._records.append(record)
        self.total_emitted += 1
        if len(self._records) > self.peak_resident:
            self.peak_resident = len(self._records)
        for sink in tuple(self._sinks):
            try:
                sink.write(record)
            except OSError as exc:
                self._degrade_sink(sink, exc)
        for callback in self._subscribers.get(kind, ()):
            callback(record)
        return record

    def _degrade_sink(self, sink: Any, exc: OSError) -> None:
        # An export sink hitting ENOSPC/EIO must not abort a multi-hour
        # run: detach it, keep what we can in memory, and say so loudly.
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass
        close = getattr(sink, "close", None)
        if callable(close):
            try:
                close()
            except OSError:
                pass
        label = type(sink).__name__
        self.degraded_sinks.append(label)
        if self.capacity is None:
            # Without the export path an unbounded store would grow until
            # OOM; cap it at a post-mortem-sized ring instead.
            self.capacity = DEGRADED_RING_CAPACITY
            self._records = deque(self._records, maxlen=DEGRADED_RING_CAPACITY)
        warnings.warn(
            f"trace sink {label} failed ({exc}); sink detached, falling "
            f"back to in-memory ring buffer (capacity {self.capacity})",
            RuntimeWarning,
            stacklevel=4,
        )
        self.emit(0.0, "sink_degraded", sink=label, error=str(exc))

    def subscribe(self, kind: str, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every future record of ``kind``."""
        self._subscribers.setdefault(kind, []).append(callback)

    # ------------------------------------------------------------------
    # Sinks and validation
    # ------------------------------------------------------------------
    def attach_sink(self, sink: Any) -> None:
        """Stream every future record to ``sink`` (an object with a
        ``write(record)`` method and, optionally, ``close()``).  Sinks see
        records in emission order, before ring-buffer eviction."""
        if not callable(getattr(sink, "write", None)):
            raise TypeError(f"sink must have a write(record) method: {sink!r}")
        self._sinks.append(sink)

    def detach_sink(self, sink: Any) -> None:
        """Stop streaming to ``sink`` (does not close it)."""
        self._sinks.remove(sink)

    @property
    def sinks(self) -> tuple:
        """The currently attached sinks, in attachment order."""
        return tuple(self._sinks)

    def close_sinks(self) -> None:
        """Close and detach every attached sink (flushes file sinks)."""
        sinks, self._sinks = self._sinks, []
        for sink in sinks:
            close = getattr(sink, "close", None)
            if callable(close):
                close()

    def set_validator(self, validator: Optional[Callable[[TraceRecord], None]]) -> None:
        """Install (or clear, with ``None``) a per-record validator invoked
        on every emit before the record is stored.  The schema registry's
        strict mode (:func:`repro.obs.schema.install_strict`) uses this."""
        self._validator = validator

    # ------------------------------------------------------------------
    # Queries (over the resident window)
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All resident records with the given kind, in emission order."""
        return [r for r in self._records if r.kind == kind]

    def first(self, kind: str, **match: Any) -> Optional[TraceRecord]:
        """First resident record of ``kind`` whose fields include ``match``."""
        for record in self._records:
            if record.kind != kind:
                continue
            if all(record.fields.get(k) == v for k, v in match.items()):
                return record
        return None

    def count(self, kind: str, **match: Any) -> int:
        """Number of resident records of ``kind`` matching ``match``."""
        total = 0
        for record in self._records:
            if record.kind != kind:
                continue
            if all(record.fields.get(k) == v for k, v in match.items()):
                total += 1
        return total

    def clear(self) -> None:
        """Drop all stored records (subscribers and sinks are kept)."""
        self._records.clear()
