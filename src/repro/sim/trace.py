"""Structured trace log.

The experiment harness and many integration tests assert on *what happened*
rather than on return values — which node detected which attacker, when a
route through a wormhole was established, when a packet was dropped.  The
trace log is the single sink for those facts: protocol code emits
``TraceRecord``s, and consumers filter by kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace fact: a timestamp, a kind tag, and free-form fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Field accessor with a default, mirroring ``dict.get``."""
        return self.fields.get(key, default)


class TraceLog:
    """Append-only log of :class:`TraceRecord` with filtered retrieval.

    Subscribers may register live callbacks per kind (the metric collectors
    do this) so that experiments do not need to re-scan the log.
    """

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []
        self._subscribers: Dict[str, List[Callable[[TraceRecord], None]]] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def emit(self, time: float, kind: str, **fields: Any) -> TraceRecord:
        """Record a fact and notify subscribers for ``kind``."""
        record = TraceRecord(time=time, kind=kind, fields=fields)
        self._records.append(record)
        for callback in self._subscribers.get(kind, ()):
            callback(record)
        return record

    def subscribe(self, kind: str, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every future record of ``kind``."""
        self._subscribers.setdefault(kind, []).append(callback)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records with the given kind, in emission order."""
        return [r for r in self._records if r.kind == kind]

    def first(self, kind: str, **match: Any) -> Optional[TraceRecord]:
        """First record of ``kind`` whose fields include all of ``match``."""
        for record in self._records:
            if record.kind != kind:
                continue
            if all(record.fields.get(k) == v for k, v in match.items()):
                return record
        return None

    def count(self, kind: str, **match: Any) -> int:
        """Number of records of ``kind`` whose fields include ``match``."""
        total = 0
        for record in self._records:
            if record.kind != kind:
                continue
            if all(record.fields.get(k) == v for k, v in match.items()):
                total += 1
        return total

    def clear(self) -> None:
        """Drop all stored records (subscribers are kept)."""
        self._records.clear()
