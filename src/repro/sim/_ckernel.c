/* Accelerated discrete-event kernel.
 *
 * A drop-in replacement for repro.sim.engine.Simulator implementing the
 * identical scheduling semantics — events fire in non-decreasing time
 * order with FIFO tie-breaking by scheduling sequence, cancellation is
 * O(1), `run(until=...)` is a closed interval — at C speed.
 *
 * Queue structure (the "timer wheel" of docs/PERFORMANCE.md):
 *
 *   - a slot ring of NSLOTS buckets, each WHEEL_WIDTH seconds wide,
 *     covering the near future [cursor, cursor + NSLOTS * width).  The
 *     short-deadline timer traffic that dominates simulation runs
 *     (frame receptions, watch-buffer expiries, retry backoff, MAC
 *     waits) lands here with O(1) pushes; a bucket is lazily heapified
 *     the first time the dispatch loop drains it, so intra-bucket
 *     (time, seq) order is exact.
 *   - a far binary heap for events beyond the wheel horizon.
 *
 * Correct interleaving does not rely on migrating far events into the
 * wheel: every pop lexicographically compares the wheel minimum and the
 * far-heap minimum on (time, seq), so an event that was classified
 * "far" when scheduled still fires in exactly the right place.
 *
 * Cancelled events stay in place and are skipped when popped (same as
 * the pure-Python engine).  When the queue grows past a threshold with
 * a high dead fraction, it is compacted in place so cancel-heavy long
 * campaigns stop carrying dead entries (see maybe_compact).
 *
 * Built on demand by repro.sim.accel; the pure-Python engine remains
 * the reference implementation and the fallback.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <math.h>
#include <string.h>

#define NSLOTS 4096u            /* power of two */
#define SLOT_MASK (NSLOTS - 1u)
#define BITS_WORDS (NSLOTS / 64u)
#define DEFAULT_WIDTH 1e-3      /* seconds per slot */
/* Saturation bound for time->slot conversion: far below 2^63 so that
 * cursor + NSLOTS can never overflow. */
#define SLOT_SAT ((unsigned long long)1 << 62)

/* The exception class raised for scheduler misuse.  Injected from
 * repro.sim.engine so callers catch the same SimulationError whichever
 * engine is active; falls back to RuntimeError if never set. */
static PyObject *sim_error = NULL;

static PyObject *
error_class(void)
{
    return sim_error ? sim_error : PyExc_RuntimeError;
}

/* ------------------------------------------------------------------ */
/* Event                                                              */
/* ------------------------------------------------------------------ */
typedef struct {
    PyObject_HEAD
    double time;
    unsigned long long seq;
    PyObject *callback;
    PyObject *args;     /* tuple or NULL */
    PyObject *kwargs;   /* dict or NULL */
    char cancelled;
    char fired;
} EventObj;

static PyTypeObject EventType;

static void
Event_dealloc(EventObj *self)
{
    PyObject_GC_UnTrack(self);
    Py_CLEAR(self->callback);
    Py_CLEAR(self->args);
    Py_CLEAR(self->kwargs);
    PyObject_GC_Del(self);
}

static int
Event_traverse(EventObj *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->args);
    Py_VISIT(self->kwargs);
    return 0;
}

static int
Event_clear_gc(EventObj *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->args);
    Py_CLEAR(self->kwargs);
    return 0;
}

static PyObject *
Event_cancel(EventObj *self, PyObject *Py_UNUSED(ignored))
{
    if (!self->fired)
        self->cancelled = 1;
    Py_RETURN_NONE;
}

static PyObject *
Event_get_cancelled(EventObj *self, void *closure)
{
    return PyBool_FromLong(self->cancelled);
}

static PyObject *
Event_get_fired(EventObj *self, void *closure)
{
    return PyBool_FromLong(self->fired);
}

static PyObject *
Event_get_pending(EventObj *self, void *closure)
{
    return PyBool_FromLong(!(self->cancelled || self->fired));
}

static PyObject *
Event_repr(EventObj *self)
{
    const char *state = self->cancelled ? "cancelled"
                        : (self->fired ? "fired" : "pending");
    return PyUnicode_FromFormat("<Event t=%R %R [%s]>",
                                PyFloat_FromDouble(self->time),
                                self->callback, state);
}

static PyMethodDef Event_methods[] = {
    {"cancel", (PyCFunction)Event_cancel, METH_NOARGS,
     "Prevent the callback from running.  Idempotent."},
    {NULL}
};

static PyGetSetDef Event_getset[] = {
    {"cancelled", (getter)Event_get_cancelled, NULL,
     "Whether cancel() was called before the event fired.", NULL},
    {"fired", (getter)Event_get_fired, NULL,
     "Whether the event's callback has run.", NULL},
    {"pending", (getter)Event_get_pending, NULL,
     "Whether the event is still waiting to fire.", NULL},
    {NULL}
};

static PyMemberDef Event_members[] = {
    {"time", T_DOUBLE, offsetof(EventObj, time), READONLY,
     "Absolute virtual time at which the event fires."},
    {"callback", T_OBJECT, offsetof(EventObj, callback), READONLY, ""},
    {"args", T_OBJECT, offsetof(EventObj, args), READONLY, ""},
    {"kwargs", T_OBJECT, offsetof(EventObj, kwargs), READONLY, ""},
    {NULL}
};

static PyTypeObject EventType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.Event",
    .tp_basicsize = sizeof(EventObj),
    .tp_dealloc = (destructor)Event_dealloc,
    .tp_repr = (reprfunc)Event_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)Event_traverse,
    .tp_clear = (inquiry)Event_clear_gc,
    .tp_methods = Event_methods,
    .tp_getset = Event_getset,
    .tp_members = Event_members,
    .tp_doc = "A scheduled callback (accelerated kernel).",
};

/* ------------------------------------------------------------------ */
/* Queue storage                                                      */
/* ------------------------------------------------------------------ */
typedef struct {
    double time;
    unsigned long long seq;
    EventObj *ev;               /* strong reference */
} Entry;

#define ENTRY_LT(a, b) \
    ((a).time < (b).time || ((a).time == (b).time && (a).seq < (b).seq))

typedef struct {
    Entry *data;
    Py_ssize_t size;
    Py_ssize_t cap;
    char heapified;
} Bucket;

static int
bucket_reserve(Bucket *b, Py_ssize_t extra)
{
    if (b->size + extra <= b->cap)
        return 0;
    Py_ssize_t cap = b->cap ? b->cap * 2 : 8;
    while (cap < b->size + extra)
        cap *= 2;
    Entry *data = PyMem_Realloc(b->data, (size_t)cap * sizeof(Entry));
    if (!data) {
        PyErr_NoMemory();
        return -1;
    }
    b->data = data;
    b->cap = cap;
    return 0;
}

static void
heap_sift_up(Entry *data, Py_ssize_t i)
{
    Entry e = data[i];
    while (i > 0) {
        Py_ssize_t p = (i - 1) >> 1;
        if (ENTRY_LT(e, data[p])) {
            data[i] = data[p];
            i = p;
        } else
            break;
    }
    data[i] = e;
}

static void
heap_sift_down(Entry *data, Py_ssize_t n, Py_ssize_t i)
{
    Entry e = data[i];
    for (;;) {
        Py_ssize_t c = 2 * i + 1;
        if (c >= n)
            break;
        if (c + 1 < n && ENTRY_LT(data[c + 1], data[c]))
            c++;
        if (ENTRY_LT(data[c], e)) {
            data[i] = data[c];
            i = c;
        } else
            break;
    }
    data[i] = e;
}

static void
heapify(Entry *data, Py_ssize_t n)
{
    for (Py_ssize_t i = n / 2 - 1; i >= 0; i--)
        heap_sift_down(data, n, i);
}

/* ------------------------------------------------------------------ */
/* Simulator                                                          */
/* ------------------------------------------------------------------ */
typedef struct {
    PyObject_HEAD
    double now;
    double width;               /* slot width, seconds */
    unsigned long long seq;
    unsigned long long cursor;  /* absolute slot index, monotone */
    Bucket slots[NSLOTS];
    uint64_t bits[BITS_WORDS];  /* slot occupancy bitmap (ring index) */
    Py_ssize_t wheel_count;
    Bucket far;                 /* overflow heap, always heap-ordered */
    unsigned long long processed;
    Py_ssize_t last_live;       /* live count at last compaction check */
    unsigned long long compactions;
    char running;
} SimObj;

static inline void
bit_set(SimObj *self, unsigned ring)
{
    self->bits[ring >> 6] |= (uint64_t)1 << (ring & 63u);
}

static inline void
bit_clear(SimObj *self, unsigned ring)
{
    self->bits[ring >> 6] &= ~((uint64_t)1 << (ring & 63u));
}

/* Absolute slot index for time t, saturated so arithmetic never
 * overflows.  Caller guarantees t >= 0 contextually (t >= now). */
static inline unsigned long long
slot_of(SimObj *self, double t)
{
    double ds = t / self->width;
    if (ds >= (double)SLOT_SAT)
        return SLOT_SAT;
    if (ds < 0.0)
        return 0;
    return (unsigned long long)ds;
}

/* Distance (in ring positions) from `from` to the next set bit at or
 * after it; NSLOTS when no bit is set.  `from` is a ring index. */
static unsigned
next_set_bit(SimObj *self, unsigned from)
{
    unsigned word = from >> 6;
    unsigned off = from & 63u;
    uint64_t w = self->bits[word] >> off;
    if (w)
        return (unsigned)__builtin_ctzll(w);
    unsigned dist = 64u - off;
    for (unsigned i = 1; i <= BITS_WORDS; i++) {
        uint64_t v = self->bits[(word + i) & (BITS_WORDS - 1u)];
        if (v)
            return dist + (unsigned)__builtin_ctzll(v);
        dist += 64u;
        if (dist >= NSLOTS)
            break;
    }
    return NSLOTS;
}

/* Push an entry (steals the Entry's reference to ev). */
static int
queue_push(SimObj *self, Entry e)
{
    unsigned long long s = slot_of(self, e.time);
    if (s < self->cursor)
        s = self->cursor;
    if (s - self->cursor < NSLOTS) {
        Bucket *b = &self->slots[(unsigned)(s & SLOT_MASK)];
        if (bucket_reserve(b, 1) < 0)
            return -1;
        b->data[b->size++] = e;
        if (b->heapified)
            heap_sift_up(b->data, b->size - 1);
        bit_set(self, (unsigned)(s & SLOT_MASK));
        self->wheel_count++;
    } else {
        Bucket *f = &self->far;
        if (bucket_reserve(f, 1) < 0)
            return -1;
        f->data[f->size++] = e;
        heap_sift_up(f->data, f->size - 1);
    }
    return 0;
}

/* Advance the cursor to keep pace with the clock.  Entries never live
 * behind floor(now / width): every queued event has time >= now. */
static inline void
cursor_catch_up(SimObj *self)
{
    unsigned long long s = slot_of(self, self->now);
    if (s > self->cursor)
        self->cursor = s;
}

/* Locate the queue minimum.  Returns the bucket holding it (heapified,
 * minimum at data[0]) or NULL when the queue is empty.  Advances the
 * cursor over empty slots as a side effect (order-neutral). */
static Bucket *
queue_min(SimObj *self)
{
    Bucket *wheel_best = NULL;
    if (self->wheel_count) {
        cursor_catch_up(self);
        unsigned ring = (unsigned)(self->cursor & SLOT_MASK);
        unsigned dist = next_set_bit(self, ring);
        if (dist >= NSLOTS) {
            /* Bitmap and count disagree: cannot happen, but stay safe. */
            self->wheel_count = 0;
        } else {
            self->cursor += dist;
            Bucket *b = &self->slots[(unsigned)(self->cursor & SLOT_MASK)];
            if (!b->heapified) {
                heapify(b->data, b->size);
                b->heapified = 1;
            }
            wheel_best = b;
        }
    }
    Bucket *f = self->far.size ? &self->far : NULL;
    if (wheel_best && f)
        return ENTRY_LT(f->data[0], wheel_best->data[0]) ? f : wheel_best;
    return wheel_best ? wheel_best : f;
}

/* Pop the minimum entry out of `b` (as returned by queue_min). */
static Entry
queue_pop_from(SimObj *self, Bucket *b)
{
    Entry top = b->data[0];
    b->data[0] = b->data[--b->size];
    if (b->size)
        heap_sift_down(b->data, b->size, 0);
    if (b != &self->far) {
        self->wheel_count--;
        if (b->size == 0) {
            b->heapified = 0;
            bit_clear(self, (unsigned)(self->cursor & SLOT_MASK));
        }
    }
    return top;
}

static Py_ssize_t
queue_total(SimObj *self)
{
    return self->wheel_count + self->far.size;
}

/* Drop cancelled/fired entries everywhere.  Heap order inside each
 * filtered bucket is preserved by re-heapifying. */
static void
queue_compact(SimObj *self)
{
    Py_ssize_t live_wheel = 0;
    for (unsigned i = 0; i < NSLOTS; i++) {
        Bucket *b = &self->slots[i];
        if (!b->size)
            continue;
        Py_ssize_t w = 0;
        for (Py_ssize_t r = 0; r < b->size; r++) {
            EventObj *ev = b->data[r].ev;
            if (ev->cancelled || ev->fired)
                Py_DECREF(ev);
            else
                b->data[w++] = b->data[r];
        }
        b->size = w;
        if (!w) {
            b->heapified = 0;
            bit_clear(self, i);
        } else if (b->heapified)
            heapify(b->data, w);
        live_wheel += w;
    }
    self->wheel_count = live_wheel;
    Bucket *f = &self->far;
    Py_ssize_t w = 0;
    for (Py_ssize_t r = 0; r < f->size; r++) {
        EventObj *ev = f->data[r].ev;
        if (ev->cancelled || ev->fired)
            Py_DECREF(ev);
        else
            f->data[w++] = f->data[r];
    }
    f->size = w;
    heapify(f->data, w);
    self->compactions++;
    self->last_live = queue_total(self);
}

/* Amortized compaction: when the queue has doubled since the last
 * check, count the dead fraction and compact if it exceeds 25%. */
static void
maybe_compact(SimObj *self)
{
    Py_ssize_t total = queue_total(self);
    if (total < 8192 || total <= 2 * self->last_live)
        return;
    Py_ssize_t live = 0;
    for (unsigned i = 0; i < NSLOTS; i++) {
        Bucket *b = &self->slots[i];
        for (Py_ssize_t r = 0; r < b->size; r++) {
            EventObj *ev = b->data[r].ev;
            live += !(ev->cancelled || ev->fired);
        }
    }
    for (Py_ssize_t r = 0; r < self->far.size; r++) {
        EventObj *ev = self->far.data[r].ev;
        live += !(ev->cancelled || ev->fired);
    }
    if ((total - live) * 4 >= total)
        queue_compact(self);
    else
        self->last_live = live;
}

/* ------------------------------------------------------------------ */
/* Simulator type methods                                             */
/* ------------------------------------------------------------------ */
static void
Sim_dealloc(SimObj *self)
{
    PyObject_GC_UnTrack(self);
    for (unsigned i = 0; i < NSLOTS; i++) {
        Bucket *b = &self->slots[i];
        for (Py_ssize_t r = 0; r < b->size; r++)
            Py_DECREF(b->data[r].ev);
        PyMem_Free(b->data);
    }
    for (Py_ssize_t r = 0; r < self->far.size; r++)
        Py_DECREF(self->far.data[r].ev);
    PyMem_Free(self->far.data);
    PyObject_GC_Del(self);
}

static int
Sim_traverse(SimObj *self, visitproc visit, void *arg)
{
    for (unsigned i = 0; i < NSLOTS; i++) {
        Bucket *b = &self->slots[i];
        for (Py_ssize_t r = 0; r < b->size; r++)
            Py_VISIT(b->data[r].ev);
    }
    for (Py_ssize_t r = 0; r < self->far.size; r++)
        Py_VISIT(self->far.data[r].ev);
    return 0;
}

static int
Sim_clear_gc(SimObj *self)
{
    for (unsigned i = 0; i < NSLOTS; i++) {
        Bucket *b = &self->slots[i];
        Py_ssize_t n = b->size;
        b->size = 0;
        b->heapified = 0;
        for (Py_ssize_t r = 0; r < n; r++)
            Py_DECREF(b->data[r].ev);
    }
    memset(self->bits, 0, sizeof(self->bits));
    self->wheel_count = 0;
    Py_ssize_t n = self->far.size;
    self->far.size = 0;
    for (Py_ssize_t r = 0; r < n; r++)
        Py_DECREF(self->far.data[r].ev);
    return 0;
}

static PyObject *
Sim_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"start_time", "wheel_width", NULL};
    double start_time = 0.0;
    double width = DEFAULT_WIDTH;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|dd", kwlist,
                                     &start_time, &width))
        return NULL;
    if (!(width > 0.0) || !isfinite(width)) {
        PyErr_SetString(error_class(), "wheel_width must be positive and finite");
        return NULL;
    }
    SimObj *self = (SimObj *)type->tp_alloc(type, 0);
    if (!self)
        return NULL;
    self->now = start_time;
    self->width = width;
    self->seq = 0;
    self->processed = 0;
    self->wheel_count = 0;
    self->last_live = 0;
    self->compactions = 0;
    self->running = 0;
    memset(self->slots, 0, sizeof(self->slots));
    memset(self->bits, 0, sizeof(self->bits));
    memset(&self->far, 0, sizeof(self->far));
    self->cursor = slot_of(self, start_time);
    return (PyObject *)self;
}

/* Shared scheduling core: build the Event, push, return it. */
static PyObject *
schedule_common(SimObj *self, double time, PyObject *const *args,
                Py_ssize_t nargs, PyObject *kwnames)
{
    EventObj *ev = PyObject_GC_New(EventObj, &EventType);
    if (!ev)
        return NULL;
    ev->time = time;
    ev->seq = self->seq++;
    ev->callback = Py_NewRef(args[1]);
    ev->cancelled = 0;
    ev->fired = 0;
    ev->args = NULL;
    ev->kwargs = NULL;
    if (nargs > 2) {
        ev->args = PyTuple_New(nargs - 2);
        if (!ev->args) {
            Py_DECREF(ev);
            return NULL;
        }
        for (Py_ssize_t i = 2; i < nargs; i++)
            PyTuple_SET_ITEM(ev->args, i - 2, Py_NewRef(args[i]));
    }
    if (kwnames && PyTuple_GET_SIZE(kwnames)) {
        ev->kwargs = PyDict_New();
        if (!ev->kwargs) {
            Py_DECREF(ev);
            return NULL;
        }
        for (Py_ssize_t i = 0; i < PyTuple_GET_SIZE(kwnames); i++) {
            if (PyDict_SetItem(ev->kwargs, PyTuple_GET_ITEM(kwnames, i),
                               args[nargs + i]) < 0) {
                Py_DECREF(ev);
                return NULL;
            }
        }
    }
    PyObject_GC_Track((PyObject *)ev);
    Entry e = {time, ev->seq, (EventObj *)Py_NewRef((PyObject *)ev)};
    if (queue_push(self, e) < 0) {
        Py_DECREF(ev);  /* queue's reference */
        Py_DECREF(ev);
        return NULL;
    }
    maybe_compact(self);
    return (PyObject *)ev;
}

static PyObject *
Sim_schedule(SimObj *self, PyObject *const *args, Py_ssize_t nargs,
             PyObject *kwnames)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule(delay, callback, *args, **kwargs)");
        return NULL;
    }
    double delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (!isfinite(delay)) {
        PyErr_Format(error_class(), "delay must be finite, got %R", args[0]);
        return NULL;
    }
    if (delay < 0.0) {
        PyErr_Format(error_class(), "delay must be non-negative, got %R",
                     args[0]);
        return NULL;
    }
    return schedule_common(self, self->now + delay, args, nargs, kwnames);
}

static PyObject *
Sim_schedule_at(SimObj *self, PyObject *const *args, Py_ssize_t nargs,
                PyObject *kwnames)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at(time, callback, *args, **kwargs)");
        return NULL;
    }
    double time = PyFloat_AsDouble(args[0]);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    if (!isfinite(time)) {
        PyErr_Format(error_class(), "event time must be finite, got %R",
                     args[0]);
        return NULL;
    }
    if (time < self->now) {
        PyErr_Format(error_class(),
                     "cannot schedule in the past: t=%R < now=%R", args[0],
                     PyFloat_FromDouble(self->now));
        return NULL;
    }
    return schedule_common(self, time, args, nargs, kwnames);
}

static PyObject *
call_event(EventObj *ev)
{
    if (ev->kwargs) {
        PyObject *args = ev->args;
        if (!args) {
            args = PyTuple_New(0);
            if (!args)
                return NULL;
            PyObject *r = PyObject_Call(ev->callback, args, ev->kwargs);
            Py_DECREF(args);
            return r;
        }
        return PyObject_Call(ev->callback, args, ev->kwargs);
    }
    if (ev->args)
        return PyObject_CallObject(ev->callback, ev->args);
    return PyObject_CallNoArgs(ev->callback);
}

static PyObject *
Sim_run(SimObj *self, PyObject *const *args, Py_ssize_t nargs,
        PyObject *kwnames)
{
    PyObject *until_obj = NULL;
    PyObject *max_obj = NULL;
    if (nargs >= 1)
        until_obj = args[0];
    if (nargs >= 2)
        max_obj = args[1];
    if (nargs > 2) {
        PyErr_SetString(PyExc_TypeError, "run(until=None, max_events=None)");
        return NULL;
    }
    if (kwnames) {
        for (Py_ssize_t i = 0; i < PyTuple_GET_SIZE(kwnames); i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            PyObject *value = args[nargs + i];
            if (PyUnicode_CompareWithASCIIString(name, "until") == 0)
                until_obj = value;
            else if (PyUnicode_CompareWithASCIIString(name, "max_events") == 0)
                max_obj = value;
            else {
                PyErr_Format(PyExc_TypeError,
                             "run() got an unexpected keyword argument %R",
                             name);
                return NULL;
            }
        }
    }
    int has_until = until_obj && until_obj != Py_None;
    double until = 0.0;
    if (has_until) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
        if (until < self->now) {
            PyErr_Format(error_class(), "until=%R is in the past (now=%R)",
                         until_obj, PyFloat_FromDouble(self->now));
            return NULL;
        }
    }
    int has_max = max_obj && max_obj != Py_None;
    long long max_events = 0;
    if (has_max) {
        max_events = PyLong_AsLongLong(max_obj);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
    }
    if (self->running) {
        PyErr_SetString(error_class(),
                        "simulator is already running (re-entrant run())");
        return NULL;
    }
    self->running = 1;
    long long executed = 0;
    while (queue_total(self)) {
        Bucket *b = queue_min(self);
        if (!b)
            break;
        if (has_until && b->data[0].time > until)
            break;
        Entry e = queue_pop_from(self, b);
        EventObj *ev = e.ev;
        if (ev->cancelled || ev->fired) {
            Py_DECREF(ev);
            continue;
        }
        self->now = e.time;
        ev->fired = 1;
        PyObject *r = call_event(ev);
        Py_DECREF(ev);
        if (!r) {
            self->running = 0;
            return NULL;
        }
        Py_DECREF(r);
        self->processed++;
        executed++;
        if (has_max && executed >= max_events)
            break;
    }
    if (has_until && self->now < until)
        self->now = until;
    self->running = 0;
    Py_RETURN_NONE;
}

static PyObject *
Sim_step(SimObj *self, PyObject *Py_UNUSED(ignored))
{
    while (queue_total(self)) {
        Bucket *b = queue_min(self);
        if (!b)
            break;
        Entry e = queue_pop_from(self, b);
        EventObj *ev = e.ev;
        if (ev->cancelled || ev->fired) {
            Py_DECREF(ev);
            continue;
        }
        self->now = e.time;
        ev->fired = 1;
        PyObject *r = call_event(ev);
        Py_DECREF(ev);
        if (!r)
            return NULL;
        Py_DECREF(r);
        self->processed++;
        Py_RETURN_TRUE;
    }
    Py_RETURN_FALSE;
}

static PyObject *
Sim_peek_time(SimObj *self, PyObject *Py_UNUSED(ignored))
{
    while (queue_total(self)) {
        Bucket *b = queue_min(self);
        if (!b)
            break;
        EventObj *ev = b->data[0].ev;
        if (!(ev->cancelled || ev->fired))
            return PyFloat_FromDouble(b->data[0].time);
        Entry e = queue_pop_from(self, b);
        Py_DECREF(e.ev);
    }
    Py_RETURN_NONE;
}

static PyObject *
Sim_compact(SimObj *self, PyObject *Py_UNUSED(ignored))
{
    queue_compact(self);
    Py_RETURN_NONE;
}

static PyObject *
Sim_get_now(SimObj *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
Sim_get_processed(SimObj *self, void *closure)
{
    return PyLong_FromUnsignedLongLong(self->processed);
}

static PyObject *
Sim_get_pending_count(SimObj *self, void *closure)
{
    Py_ssize_t live = 0;
    for (unsigned i = 0; i < NSLOTS; i++) {
        Bucket *b = &self->slots[i];
        for (Py_ssize_t r = 0; r < b->size; r++) {
            EventObj *ev = b->data[r].ev;
            live += !(ev->cancelled || ev->fired);
        }
    }
    for (Py_ssize_t r = 0; r < self->far.size; r++) {
        EventObj *ev = self->far.data[r].ev;
        live += !(ev->cancelled || ev->fired);
    }
    return PyLong_FromSsize_t(live);
}

static PyObject *
Sim_get_queue_depth(SimObj *self, void *closure)
{
    return PyLong_FromSsize_t(queue_total(self));
}

static PyObject *
Sim_get_wheel_count(SimObj *self, void *closure)
{
    return PyLong_FromSsize_t(self->wheel_count);
}

static PyObject *
Sim_get_far_count(SimObj *self, void *closure)
{
    return PyLong_FromSsize_t(self->far.size);
}

static PyObject *
Sim_get_compactions(SimObj *self, void *closure)
{
    return PyLong_FromUnsignedLongLong(self->compactions);
}

static PyMethodDef Sim_methods[] = {
    {"schedule", (PyCFunction)Sim_schedule,
     METH_FASTCALL | METH_KEYWORDS,
     "schedule(delay, callback, *args, **kwargs) -> Event"},
    {"schedule_at", (PyCFunction)Sim_schedule_at,
     METH_FASTCALL | METH_KEYWORDS,
     "schedule_at(time, callback, *args, **kwargs) -> Event"},
    {"run", (PyCFunction)Sim_run, METH_FASTCALL | METH_KEYWORDS,
     "run(until=None, max_events=None)"},
    {"step", (PyCFunction)Sim_step, METH_NOARGS,
     "Run exactly one pending event.  Returns False if the queue is empty."},
    {"peek_time", (PyCFunction)Sim_peek_time, METH_NOARGS,
     "Time of the next pending event, or None if the queue is empty."},
    {"compact", (PyCFunction)Sim_compact, METH_NOARGS,
     "Drop cancelled entries from the queue now (normally automatic)."},
    {NULL}
};

static PyGetSetDef Sim_getset[] = {
    {"now", (getter)Sim_get_now, NULL, "Current virtual time in seconds.", NULL},
    {"events_processed", (getter)Sim_get_processed, NULL,
     "Total number of callbacks executed so far.", NULL},
    {"pending_count", (getter)Sim_get_pending_count, NULL,
     "Number of not-yet-fired, not-cancelled events in the queue.", NULL},
    {"queue_depth", (getter)Sim_get_queue_depth, NULL,
     "Raw queue entries including cancelled ones (introspection).", NULL},
    {"wheel_count", (getter)Sim_get_wheel_count, NULL,
     "Entries currently in the slot ring (introspection).", NULL},
    {"far_count", (getter)Sim_get_far_count, NULL,
     "Entries currently in the far heap (introspection).", NULL},
    {"compactions", (getter)Sim_get_compactions, NULL,
     "How many times the queue has been compacted.", NULL},
    {NULL}
};

static PyTypeObject SimType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.Simulator",
    .tp_basicsize = sizeof(SimObj),
    .tp_dealloc = (destructor)Sim_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)Sim_traverse,
    .tp_clear = (inquiry)Sim_clear_gc,
    .tp_methods = Sim_methods,
    .tp_getset = Sim_getset,
    .tp_new = Sim_new,
    .tp_doc = "Deterministic discrete-event scheduler (accelerated kernel).",
};

/* ------------------------------------------------------------------ */
/* Module                                                             */
/* ------------------------------------------------------------------ */
static PyObject *
set_error_class(PyObject *module, PyObject *cls)
{
    Py_XDECREF(sim_error);
    sim_error = Py_NewRef(cls);
    Py_RETURN_NONE;
}

static PyMethodDef module_methods[] = {
    {"_set_error_class", set_error_class, METH_O,
     "Install the SimulationError class raised for scheduler misuse."},
    {NULL}
};

static PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ckernel",
    .m_doc = "C-accelerated discrete-event kernel (see repro.sim.accel).",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    if (PyType_Ready(&EventType) < 0 || PyType_Ready(&SimType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&ckernel_module);
    if (!m)
        return NULL;
    if (PyModule_AddObjectRef(m, "Event", (PyObject *)&EventType) < 0 ||
        PyModule_AddObjectRef(m, "Simulator", (PyObject *)&SimType) < 0 ||
        PyModule_AddIntConstant(m, "NSLOTS", (long)NSLOTS) < 0 ||
        PyModule_AddObject(m, "DEFAULT_WIDTH",
                           PyFloat_FromDouble(DEFAULT_WIDTH)) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
