"""The discrete-event simulation kernel.

The kernel is a classic calendar-queue scheduler: a binary heap of
``(time, sequence, Event)`` triples and a virtual clock.  All protocol code
in this repository is written against :class:`Simulator` — there are no
threads, no wall-clock timing, and no global state, which makes every
experiment deterministic given a seed.

Design notes
------------
- Events fire in non-decreasing time order; ties are broken by scheduling
  order (FIFO), which keeps protocol traces reproducible.
- Cancellation is O(1): a cancelled event stays in the heap but is skipped
  when popped.
- ``Simulator.run`` takes an ``until`` horizon; events scheduled exactly at
  the horizon still fire (closed interval), matching ns-2 semantics.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (negative delays, running twice, ...)."""


# Shared immutable-by-convention empties: most events carry no kwargs (and
# many no args), so the per-event dict/tuple allocations are skipped.  The
# dispatch loop never mutates either.
_NO_ARGS: Tuple[Any, ...] = ()
_NO_KWARGS: dict = {}


class Event:
    """A scheduled callback.

    Instances are produced by :meth:`Simulator.schedule` / ``schedule_at``
    and should not be constructed directly.  An event can be cancelled at
    any point before it fires; cancelling a fired or already-cancelled
    event is a harmless no-op, which simplifies timer management in the
    protocol code.
    """

    __slots__ = ("time", "callback", "args", "kwargs", "_cancelled", "_fired")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: dict,
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the event's callback has run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if not self._fired:
            self._cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} [{state}]>"


class Simulator:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock (seconds).  Defaults to 0.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run(until=2.0)
    >>> fired
    ['b', 'a']
    >>> sim.now
    2.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far (monitoring hook)."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue."""
        return sum(1 for _, _, ev in self._heap if ev.pending)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now.

        Raises :class:`SimulationError` for negative or non-finite delays.
        """
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay!r}")
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: t={time!r} < now={self._now!r}"
            )
        event = Event(time, callback, args or _NO_ARGS, kwargs or _NO_KWARGS)
        heapq.heappush(self._heap, (time, next(self._sequence), event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in time order.

        Parameters
        ----------
        until:
            Horizon (inclusive).  When given, the clock is advanced to
            exactly ``until`` after the last event at or before it fires.
            When omitted, runs until the queue drains.
        max_events:
            Safety valve: stop after this many callbacks.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        if until is not None and until < self._now:
            raise SimulationError(f"until={until!r} is in the past (now={self._now!r})")
        self._running = True
        executed = 0
        # The dispatch loop below is the kernel's hot path: heap access and
        # the event's slot flags are touched directly (no properties, no
        # per-iteration attribute lookups on self or the heapq module).
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                time, _, event = heap[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                if event._cancelled or event._fired:
                    continue
                self._now = time
                event._fired = True
                kwargs = event.kwargs
                if kwargs:
                    event.callback(*event.args, **kwargs)
                else:
                    event.callback(*event.args)
                self._events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Run exactly one pending event.  Returns False if the queue is empty."""
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if not event.pending:
                continue
            self._now = time
            event._fired = True
            event.callback(*event.args, **event.kwargs)
            self._events_processed += 1
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and not self._heap[0][2].pending:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0][0]
        return None
