"""The discrete-event simulation kernel.

The kernel is a classic calendar-queue scheduler: a binary heap of
``(time, sequence, Event)`` triples and a virtual clock.  All protocol code
in this repository is written against :class:`Simulator` — there are no
threads, no wall-clock timing, and no global state, which makes every
experiment deterministic given a seed.

Design notes
------------
- Events fire in non-decreasing time order; ties are broken by scheduling
  order (FIFO), which keeps protocol traces reproducible.
- Cancellation is O(1): a cancelled event stays in the heap but is skipped
  when popped.
- ``Simulator.run`` takes an ``until`` horizon; events scheduled exactly at
  the horizon still fire (closed interval), matching ns-2 semantics.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (negative delays, running twice, ...)."""


# Shared immutable-by-convention empties: most events carry no kwargs (and
# many no args), so the per-event dict/tuple allocations are skipped.  The
# dispatch loop never mutates either.
_NO_ARGS: Tuple[Any, ...] = ()
_NO_KWARGS: dict = {}


class Event:
    """A scheduled callback.

    Instances are produced by :meth:`Simulator.schedule` / ``schedule_at``
    and should not be constructed directly.  An event can be cancelled at
    any point before it fires; cancelling a fired or already-cancelled
    event is a harmless no-op, which simplifies timer management in the
    protocol code.
    """

    __slots__ = ("time", "callback", "args", "kwargs", "_cancelled", "_fired")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: dict,
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the event's callback has run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if not self._fired:
            self._cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} [{state}]>"


class Simulator:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock (seconds).  Defaults to 0.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run(until=2.0)
    >>> fired
    ['b', 'a']
    >>> sim.now
    2.0
    """

    #: Queue size below which compaction is never attempted.
    COMPACT_MIN_SIZE = 8192
    #: Dead-entry fraction that triggers a rebuild once the size check fires.
    COMPACT_DEAD_FRACTION = 0.25

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._running = False
        self._events_processed = 0
        self._last_live = 0
        self._compactions = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far (monitoring hook)."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue."""
        return sum(1 for _, _, ev in self._heap if ev.pending)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now.

        Raises :class:`SimulationError` for negative or non-finite delays.
        """
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay!r}")
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: t={time!r} < now={self._now!r}"
            )
        event = Event(time, callback, args or _NO_ARGS, kwargs or _NO_KWARGS)
        heapq.heappush(self._heap, (time, next(self._sequence), event))
        if len(self._heap) >= self.COMPACT_MIN_SIZE and len(self._heap) > 2 * self._last_live:
            self._maybe_compact()
        return event

    def _maybe_compact(self) -> None:
        # Lazy-cancellation cleanup: cancelled events stay in the heap until
        # popped, so cancel-heavy campaigns (watch buffers, MAC backoff) can
        # carry a large dead tail.  When the heap has doubled since the last
        # check, count the dead fraction and rebuild without the corpses if
        # it exceeds the threshold.  Amortized O(1) per schedule; ordering is
        # untouched because live (time, seq, event) triples are preserved.
        live = sum(1 for _, _, ev in self._heap if ev.pending)
        dead = len(self._heap) - live
        if dead >= len(self._heap) * self.COMPACT_DEAD_FRACTION:
            self._heap = [entry for entry in self._heap if entry[2].pending]
            heapq.heapify(self._heap)
            self._compactions += 1
            live = len(self._heap)
        self._last_live = live

    @property
    def compactions(self) -> int:
        """How many times the queue has been compacted (introspection)."""
        return self._compactions

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in time order.

        Parameters
        ----------
        until:
            Horizon (inclusive).  When given, the clock is advanced to
            exactly ``until`` after the last event at or before it fires.
            When omitted, runs until the queue drains.
        max_events:
            Safety valve: stop after this many callbacks.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        if until is not None and until < self._now:
            raise SimulationError(f"until={until!r} is in the past (now={self._now!r})")
        self._running = True
        executed = 0
        # The dispatch loop below is the kernel's hot path: heap access and
        # the event's slot flags are touched directly (no properties, no
        # per-iteration attribute lookups on self or the heapq module).
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                time, _, event = heap[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                if event._cancelled or event._fired:
                    continue
                self._now = time
                event._fired = True
                kwargs = event.kwargs
                if kwargs:
                    event.callback(*event.args, **kwargs)
                else:
                    event.callback(*event.args)
                self._events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Run exactly one pending event.  Returns False if the queue is empty."""
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if not event.pending:
                continue
            self._now = time
            event._fired = True
            event.callback(*event.args, **event.kwargs)
            self._events_processed += 1
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and not self._heap[0][2].pending:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0][0]
        return None


def make_simulator(start_time: float = 0.0) -> "Simulator":
    """Build the fastest available kernel with :class:`Simulator` semantics.

    Returns an instance of the C-accelerated kernel when it can be built
    (see :mod:`repro.sim.accel`), otherwise this module's pure-Python
    :class:`Simulator`.  The two are interchangeable: same API, same event
    ordering, same ``SimulationError`` on misuse.  All production entry
    points (scenario runner, benchmarks) construct their simulator through
    this factory; tests that exercise kernel internals pin the class they
    need explicitly.
    """
    from repro.sim import accel

    return accel.make_simulator(start_time)
