"""Beacon-tree (TinyOS beaconing) routing.

The paper names "the sensor TinyOS beaconing routing protocol" as highly
vulnerable to the wormhole.  The protocol: the sink periodically floods a
*beacon*; every node adopts the transmitter of the first beacon copy it
hears (per epoch) as its parent and rebroadcasts the beacon; data travels
parent-by-parent up to the sink.

A wormhole tunnels the beacon so its far end rebroadcasts it early with a
low hop count, captures a whole subtree of children, and swallows their
upstream readings.  The same LITEWORP machinery applies: beacons are
monitored control packets, so the far end's forged previous-hop
announcement is a fabrication its guards catch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.net.node import Node
from repro.net.packet import DataPacket, Frame, NodeId, Packet
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class BeaconPacket(Packet):
    """A sink-originated tree-building beacon."""

    sink: NodeId = 0
    epoch: int = 0
    hop_count: int = 0

    def key(self) -> Tuple[Any, ...]:
        return ("BEACON", self.sink, self.epoch)

    @property
    def size_bytes(self) -> int:
        return 20

    @property
    def monitored(self) -> bool:
        return True

    def forwarded(self) -> "BeaconPacket":
        """The beacon as rebroadcast one hop further out."""
        return BeaconPacket(sink=self.sink, epoch=self.epoch, hop_count=self.hop_count + 1)


@dataclass(frozen=True)
class BeaconConfig:
    """Beacon-tree parameters."""

    beacon_interval: float = 10.0
    forward_jitter: float = 0.15

    def __post_init__(self) -> None:
        if self.beacon_interval <= 0:
            raise ValueError("beacon_interval must be positive")
        if self.forward_jitter < 0:
            raise ValueError("forward_jitter must be non-negative")


class BeaconTreeRouting:
    """Per-node beacon-tree agent.

    The sink instance (``is_sink=True``) emits beacons; everyone else
    selects a parent per epoch and forwards upstream data to it.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        config: BeaconConfig,
        trace: TraceLog,
        rng: random.Random,
        sink: NodeId,
    ) -> None:
        self.sim = sim
        self.node = node
        self.config = config
        self.trace = trace
        self.rng = rng
        self.sink = sink
        self.is_sink = node.node_id == sink
        self.usable: Callable[[NodeId], bool] = lambda _n: True
        self.parent: Optional[NodeId] = None
        self.depth: Optional[int] = None
        self._epoch_seen: Dict[int, bool] = {}
        self._epoch_counter = 0
        self._sequence = 0
        self._beacon_timer: Optional[PeriodicTimer] = None
        node.add_listener(self.on_frame)

    # ------------------------------------------------------------------
    # Sink side
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Sink: begin the beacon schedule (no-op on ordinary nodes)."""
        if not self.is_sink or self._beacon_timer is not None:
            return
        self._beacon_timer = PeriodicTimer(
            self.sim, self._emit_beacon, lambda: self.config.beacon_interval
        )
        self._beacon_timer.start(initial_delay=0.1)

    def stop(self) -> None:
        """Stop beaconing."""
        if self._beacon_timer is not None:
            self._beacon_timer.stop()

    def _emit_beacon(self) -> None:
        self._epoch_counter += 1
        beacon = BeaconPacket(sink=self.sink, epoch=self._epoch_counter, hop_count=0)
        self.trace.emit(self.sim.now, "beacon_emitted", sink=self.sink,
                        epoch=self._epoch_counter)
        self.node.broadcast(beacon, prev_hop=None, jitter=0.0)

    # ------------------------------------------------------------------
    # Tree building
    # ------------------------------------------------------------------
    def on_frame(self, frame: Frame) -> None:
        """Listener: beacons build the tree, data climbs it."""
        packet = frame.packet
        if isinstance(packet, BeaconPacket):
            self._on_beacon(frame, packet)
        elif isinstance(packet, DataPacket):
            if frame.link_dst == self.node.node_id:
                self._on_data(frame, packet)

    def _on_beacon(self, frame: Frame, beacon: BeaconPacket) -> None:
        if self.is_sink:
            return
        if self._epoch_seen.get(beacon.epoch):
            return
        self._epoch_seen[beacon.epoch] = True
        if len(self._epoch_seen) > 64:
            self._epoch_seen.pop(next(iter(self._epoch_seen)))
        if self.usable(frame.transmitter):
            self.parent = frame.transmitter
            self.depth = beacon.hop_count + 1
            self.trace.emit(
                self.sim.now, "beacon_parent",
                node=self.node.node_id, epoch=beacon.epoch,
                parent=self.parent, depth=self.depth,
            )
        self._forward_beacon(frame, beacon)

    def _forward_beacon(self, frame: Frame, beacon: BeaconPacket) -> None:
        """Rebroadcast hook (overridden by the wormhole agent)."""
        self.node.broadcast(
            beacon.forwarded(),
            prev_hop=frame.transmitter,
            jitter=self.config.forward_jitter,
        )

    # ------------------------------------------------------------------
    # Upstream data
    # ------------------------------------------------------------------
    def send_reading(self, payload_size: int = 64) -> Optional[DataPacket]:
        """Originate one reading toward the sink; None if no parent yet."""
        if self.is_sink:
            raise ValueError("the sink does not send readings to itself")
        self._sequence += 1
        packet = DataPacket(
            origin=self.node.node_id,
            destination=self.sink,
            flow_id=self.sink,
            sequence=self._sequence,
            payload_size=payload_size,
        )
        self.trace.emit(
            self.sim.now, "data_origin", packet=packet.key(),
            origin=packet.origin, destination=self.sink,
        )
        if self.parent is None or not self.usable(self.parent):
            self.trace.emit(
                self.sim.now, "data_no_route", packet=packet.key(),
                node=self.node.node_id,
            )
            return None
        self.node.unicast(packet, next_hop=self.parent, prev_hop=None)
        return packet

    def _on_data(self, frame: Frame, packet: DataPacket) -> None:
        if self.is_sink:
            self.trace.emit(
                self.sim.now, "data_delivered", packet=packet.key(),
                origin=packet.origin, destination=self.sink,
            )
            return
        if self.parent is None or not self.usable(self.parent):
            self.trace.emit(
                self.sim.now, "data_no_route", packet=packet.key(),
                node=self.node.node_id,
            )
            return
        self.node.unicast(packet, next_hop=self.parent, prev_hop=frame.transmitter)


class WormholeBeaconRouting(BeaconTreeRouting):
    """A colluding pair attacking the beacon tree.

    Before activation: an honest tree node.  After: the node nearest the
    sink tunnels each beacon epoch to its distant colluder, which replays
    it with the *original* hop count and a forged previous-hop
    announcement — so distant nodes adopt it as a parent believing it sits
    right next to the sink.  All captured upstream readings are swallowed.
    """

    def __init__(self, *args, network=None, fake_prev_strategy: str = "smart", **kwargs):
        super().__init__(*args, **kwargs)
        self.network = network
        self.fake_prev_strategy = fake_prev_strategy
        self.active = False
        self.peer: Optional["WormholeBeaconRouting"] = None
        self.tunnel_latency = 1e-4
        self.drops = 0

    def pair_with(self, peer: "WormholeBeaconRouting") -> None:
        """Join the two wormhole ends (symmetric)."""
        self.peer = peer
        peer.peer = self

    def activate(self) -> None:
        """Begin the attack."""
        self.active = True
        self.trace.emit(self.sim.now, "wormhole_activity", node=self.node.node_id)

    def _forward_beacon(self, frame: Frame, beacon: BeaconPacket) -> None:
        if not self.active or self.peer is None:
            super()._forward_beacon(frame, beacon)
            return
        self.sim.schedule(
            self.tunnel_latency, self.peer.receive_tunneled_beacon, beacon
        )

    def receive_tunneled_beacon(self, beacon: BeaconPacket) -> None:
        """Far end: replay the beacon as if adjacent to its last real hop."""
        if not self.active:
            return
        if self._epoch_seen.get(beacon.epoch) == "replayed":
            return
        self._epoch_seen[beacon.epoch] = "replayed"
        fake_prev = self._fake_prev()
        self.trace.emit(
            self.sim.now, "wormhole_activity", node=self.node.node_id
        )
        # Hop count NOT incremented across the tunnel: the replayed beacon
        # looks one hop from wherever the near end heard it.
        self.node.broadcast(beacon.forwarded(), prev_hop=fake_prev, jitter=0.002)

    def _fake_prev(self) -> NodeId:
        neighbors = list(self.network.neighbors(self.node.node_id)) if self.network else []
        peer_id = self.peer.node.node_id if self.peer else None
        candidates = [n for n in neighbors if n != peer_id]
        if self.fake_prev_strategy == "naive" or not candidates:
            return peer_id if peer_id is not None else self.node.node_id
        return self.rng.choice(candidates)

    def _on_data(self, frame: Frame, packet: DataPacket) -> None:
        if not self.active:
            super()._on_data(frame, packet)
            return
        self.drops += 1
        self.trace.emit(
            self.sim.now, "malicious_drop", node=self.node.node_id,
            packet=packet.key(),
        )
