"""The on-demand routing agent.

One :class:`OnDemandRouting` instance runs on every node.  It implements
the paper's "generic on-demand shortest path routing that floods route
requests and unicasts route replies in the reverse direction":

- **Discovery** — the origin floods a :class:`RouteRequest`; forwarders
  suppress duplicates, remember a *reverse pointer* (the neighbor they
  first heard the request from), announce the previous hop, and rebroadcast
  after a random jitter.
- **Reply** — the destination answers with a :class:`RouteReply` unicast
  along the reverse pointers.  Each node the reply passes installs a
  forward next-hop toward the destination in its route cache.
- **Data** — hop-by-hop forwarding over the cached next hops; caches expire
  after ``TOut_Route``.

Attack agents subclass this class and override the small protected hooks
(``_forward_request``, ``_forward_reply``, ``_forward_data``) rather than
reimplementing the protocol.

Trace kinds emitted: ``data_origin``, ``data_delivered``, ``data_no_route``,
``data_blocked``, ``data_discovery_failed``, ``route_established``,
``rep_stranded``, ``route_request_sent``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.node import Node
from repro.net.packet import (
    DataPacket,
    Frame,
    NodeId,
    RouteErrorPacket,
    RouteReply,
    RouteRequest,
)
from repro.routing.cache import RouteTable
from repro.routing.config import RoutingConfig
from repro.sim.engine import Event, Simulator
from repro.sim.trace import TraceLog

RequestKey = Tuple[NodeId, int]


@dataclass
class _PendingDiscovery:
    """Origin-side state for an in-progress route discovery."""

    destination: NodeId
    request_id: int
    retries: int = 0
    queue: List[DataPacket] = field(default_factory=list)
    timer: Optional[Event] = None


@dataclass
class _ReplyCandidates:
    """Destination-side collection of request copies for one discovery."""

    copies: List[Tuple[int, float, NodeId, Tuple[NodeId, ...]]] = field(default_factory=list)
    replied: bool = False


class OnDemandRouting:
    """Per-node routing agent (origin, forwarder, and destination roles)."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        config: RoutingConfig,
        trace: TraceLog,
        rng: random.Random,
    ) -> None:
        self.sim = sim
        self.node = node
        self.config = config
        self.trace = trace
        self.rng = rng
        self.routes = RouteTable(config.route_timeout)
        # Hook overridden by LITEWORP: "may this neighbor be used as a hop?"
        self.usable: Callable[[NodeId], bool] = lambda _n: True
        self._seen_requests: set = set()
        self._reverse: Dict[RequestKey, NodeId] = {}
        self._pending: Dict[NodeId, _PendingDiscovery] = {}
        self._candidates: Dict[RequestKey, _ReplyCandidates] = {}
        self._copy_counts: Dict[Tuple, int] = {}
        self._request_counter = 0
        self._sequence_counter = 0
        node.add_listener(self.on_frame)

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def send_data(self, destination: NodeId, payload_size: int = 64) -> DataPacket:
        """Originate one data packet toward ``destination``.

        The packet is forwarded immediately when a fresh route exists,
        otherwise queued behind a (possibly new) route discovery.
        """
        if destination == self.node.node_id:
            raise ValueError("cannot send data to self")
        self._sequence_counter += 1
        packet = DataPacket(
            origin=self.node.node_id,
            destination=destination,
            flow_id=destination,
            sequence=self._sequence_counter,
            payload_size=payload_size,
        )
        self.trace.emit(
            self.sim.now,
            "data_origin",
            packet=packet.key(),
            origin=packet.origin,
            destination=destination,
        )
        entry = self.routes.lookup(destination, self.sim.now)
        if entry is not None and self.usable(entry.next_hop):
            self._forward_data(packet, entry.next_hop, prev_hop=None)
            return packet
        self._enqueue_for_discovery(packet)
        return packet

    def has_route(self, destination: NodeId) -> bool:
        """Whether a fresh cached route toward ``destination`` exists."""
        return self.routes.lookup(destination, self.sim.now) is not None

    # ------------------------------------------------------------------
    # Discovery (origin side)
    # ------------------------------------------------------------------
    def _enqueue_for_discovery(self, packet: DataPacket) -> None:
        pending = self._pending.get(packet.destination)
        if pending is None:
            pending = _PendingDiscovery(destination=packet.destination, request_id=-1)
            self._pending[packet.destination] = pending
            self._start_discovery(pending)
        if len(pending.queue) >= self.config.queue_capacity:
            stale = pending.queue.pop(0)
            self.trace.emit(
                self.sim.now, "data_discovery_failed", packet=stale.key(), reason="queue_full"
            )
        pending.queue.append(packet)

    def _start_discovery(self, pending: _PendingDiscovery) -> None:
        self._request_counter += 1
        request_id = self._request_counter
        pending.request_id = request_id
        request = RouteRequest(
            origin=self.node.node_id,
            request_id=request_id,
            target=pending.destination,
            hop_count=0,
            path=(self.node.node_id,),
        )
        self._seen_requests.add(request.key())
        self.trace.emit(
            self.sim.now,
            "route_request_sent",
            origin=self.node.node_id,
            target=pending.destination,
            request_id=request_id,
            attempt=pending.retries + 1,
        )
        self.node.broadcast(request, prev_hop=None, jitter=0.0)
        if pending.timer is not None:
            pending.timer.cancel()
        pending.timer = self.sim.schedule(
            self.config.request_timeout, self._discovery_timeout, pending.destination
        )

    def _discovery_timeout(self, destination: NodeId) -> None:
        pending = self._pending.get(destination)
        if pending is None:
            return
        if self.routes.lookup(destination, self.sim.now) is not None:
            # A route arrived but flush raced the timer; flush again.
            self._flush_queue(destination)
            return
        pending.retries += 1
        if pending.retries >= self.config.max_retries:
            for packet in pending.queue:
                self.trace.emit(
                    self.sim.now,
                    "data_discovery_failed",
                    packet=packet.key(),
                    reason="no_route",
                )
            del self._pending[destination]
            return
        self._start_discovery(pending)

    def _flush_queue(self, destination: NodeId) -> None:
        pending = self._pending.pop(destination, None)
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.cancel()
        entry = self.routes.lookup(destination, self.sim.now)
        for packet in pending.queue:
            if entry is not None and self.usable(entry.next_hop):
                self._forward_data(packet, entry.next_hop, prev_hop=None)
            else:
                self.trace.emit(
                    self.sim.now, "data_no_route", packet=packet.key(), node=self.node.node_id
                )

    # ------------------------------------------------------------------
    # Frame dispatch
    # ------------------------------------------------------------------
    def on_frame(self, frame: Frame) -> None:
        """Listener entry point: accepted frames, addressed or overheard."""
        packet = frame.packet
        if isinstance(packet, RouteRequest):
            self._on_request(frame, packet)
        elif isinstance(packet, RouteReply):
            if frame.link_dst == self.node.node_id:
                self._on_reply(frame, packet)
        elif isinstance(packet, DataPacket):
            if frame.link_dst == self.node.node_id:
                self._on_data(frame, packet)

    # ------------------------------------------------------------------
    # Request handling (forwarder and destination)
    # ------------------------------------------------------------------
    def _on_request(self, frame: Frame, request: RouteRequest) -> None:
        if request.origin == self.node.node_id:
            return
        if request.target == self.node.node_id:
            self._on_request_at_target(frame, request)
            return
        key = request.key()
        if key in self._seen_requests:
            if key in self._copy_counts:
                self._copy_counts[key] += 1
            return
        self._seen_requests.add(key)
        self._reverse[(request.origin, request.request_id)] = frame.transmitter
        self._forward_request(frame, request)

    def _forward_request(self, frame: Frame, request: RouteRequest) -> None:
        """Rebroadcast hook; honest nodes forward truthfully with jitter.

        With counter-based suppression enabled, the jitter is applied here
        (not in the MAC) so that copies overheard during the wait can
        cancel a redundant rebroadcast.
        """
        if self.config.suppression_threshold == 0 or self.config.forward_jitter == 0:
            self.node.broadcast(
                request.forwarded_by(self.node.node_id),
                prev_hop=frame.transmitter,
                jitter=self.config.forward_jitter,
            )
            return
        key = request.key()
        self._copy_counts[key] = 0
        self.sim.schedule(
            self.rng.uniform(0.0, self.config.forward_jitter),
            self._forward_decision,
            frame.transmitter,
            request,
        )

    def _forward_decision(self, prev_hop: NodeId, request: RouteRequest) -> None:
        extra_copies = self._copy_counts.pop(request.key(), 0)
        if extra_copies >= self.config.suppression_threshold:
            return
        self.node.broadcast(
            request.forwarded_by(self.node.node_id), prev_hop=prev_hop, jitter=0.0
        )

    def _on_request_at_target(self, frame: Frame, request: RouteRequest) -> None:
        key = (request.origin, request.request_id)
        state = self._candidates.get(key)
        copy = (request.hop_count, self.sim.now, frame.transmitter, request.path)
        if state is None:
            state = _ReplyCandidates()
            self._candidates[key] = state
            state.copies.append(copy)
            if self.config.metric == "first" or self.config.reply_window == 0:
                self._send_reply(request.origin, request.request_id, request.target)
            else:
                self.sim.schedule(
                    self.config.reply_window,
                    self._send_reply,
                    request.origin,
                    request.request_id,
                    request.target,
                )
            return
        if not state.replied:
            state.copies.append(copy)

    def _send_reply(self, origin: NodeId, request_id: int, target: NodeId) -> None:
        state = self._candidates.get((origin, request_id))
        if state is None or state.replied or not state.copies:
            return
        state.replied = True
        hop_count, _stamp, transmitter, path = min(state.copies, key=lambda c: (c[0], c[1]))
        reply = RouteReply(
            origin=origin,
            request_id=request_id,
            target=self.node.node_id,
            hop_count=hop_count + 1,
            path=path + (self.node.node_id,),
        )
        self.node.unicast(reply, next_hop=transmitter, prev_hop=None)

    # ------------------------------------------------------------------
    # Reply handling (origin and reverse-path forwarders)
    # ------------------------------------------------------------------
    def _on_reply(self, frame: Frame, reply: RouteReply) -> None:
        if reply.origin == self.node.node_id:
            self.routes.install(
                destination=reply.target,
                next_hop=frame.transmitter,
                now=self.sim.now,
                hop_count=reply.hop_count,
                path=reply.path,
                request_id=reply.request_id,
            )
            self.trace.emit(
                self.sim.now,
                "route_established",
                origin=reply.origin,
                target=reply.target,
                request_id=reply.request_id,
                hop_count=reply.hop_count,
                path=reply.path,
                next_hop=frame.transmitter,
            )
            self._flush_queue(reply.target)
            return
        next_hop = self._reverse.get((reply.origin, reply.request_id))
        if next_hop is None:
            self._announce_cannot_forward(reply)
            return
        self.routes.install(
            destination=reply.target,
            next_hop=frame.transmitter,
            now=self.sim.now,
            hop_count=reply.hop_count,
            path=reply.path,
            request_id=reply.request_id,
        )
        self._forward_reply(frame, reply, next_hop)

    def _forward_reply(self, frame: Frame, reply: RouteReply, next_hop: NodeId) -> None:
        """Reverse-path forwarding hook; honest nodes announce truthfully."""
        if not self.usable(next_hop):
            self._announce_cannot_forward(reply)
            return
        self.node.unicast(reply, next_hop=next_hop, prev_hop=frame.transmitter)

    def _announce_cannot_forward(self, packet) -> None:
        """Tell the guards we legitimately cannot forward this packet, so
        the watch-buffer deadline does not read as a malicious drop."""
        self.trace.emit(
            self.sim.now,
            "rep_stranded",
            node=self.node.node_id,
            packet=packet.key(),
        )
        self.node.broadcast(
            RouteErrorPacket(reporter=self.node.node_id, inner_key=packet.key()),
            jitter=0.005,
        )

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _on_data(self, frame: Frame, packet: DataPacket) -> None:
        if packet.destination == self.node.node_id:
            self.trace.emit(
                self.sim.now,
                "data_delivered",
                packet=packet.key(),
                origin=packet.origin,
                destination=packet.destination,
            )
            return
        entry = self.routes.lookup(packet.destination, self.sim.now)
        if entry is None:
            self.trace.emit(
                self.sim.now, "data_no_route", packet=packet.key(), node=self.node.node_id
            )
            self._announce_cannot_forward(packet)
            return
        if not self.usable(entry.next_hop):
            self.trace.emit(
                self.sim.now,
                "data_blocked",
                packet=packet.key(),
                node=self.node.node_id,
                next_hop=entry.next_hop,
            )
            self._announce_cannot_forward(packet)
            return
        self._forward_data(packet, entry.next_hop, prev_hop=frame.transmitter)

    def _forward_data(
        self, packet: DataPacket, next_hop: NodeId, prev_hop: Optional[NodeId]
    ) -> None:
        """Data forwarding hook; honest nodes announce truthfully."""
        self.node.unicast(packet, next_hop=next_hop, prev_hop=prev_hop)
