"""On-demand routing.

The paper evaluates LITEWORP over "a generic on-demand shortest path
routing that floods route requests and unicasts route replies in the
reverse direction" with a cache timeout ``TOut_Route``.  That protocol is
implemented here:

- :class:`~repro.routing.ondemand.OnDemandRouting` — the per-node agent:
  route discovery (flooded REQ with duplicate suppression and random
  forwarding jitter), reverse-pointer route replies, hop-by-hop data
  forwarding, and route-cache eviction.
- :class:`~repro.routing.cache.RouteTable` — next-hop entries with expiry.
- Two destination-side reply metrics (:class:`~repro.routing.config.RoutingConfig`):
  ``"shortest"`` (collect request copies briefly, answer the fewest-hop one
  — the paper's default, vulnerable to hop-count-preserving wormholes) and
  ``"first"`` (answer the earliest copy — the ARAN-style variant the paper
  discusses as a by-product defence against the encapsulation mode).
"""

from repro.routing.beacon import (
    BeaconConfig,
    BeaconPacket,
    BeaconTreeRouting,
    WormholeBeaconRouting,
)
from repro.routing.cache import RouteEntry, RouteTable
from repro.routing.config import RoutingConfig
from repro.routing.ondemand import OnDemandRouting

__all__ = [
    "BeaconConfig",
    "BeaconPacket",
    "BeaconTreeRouting",
    "OnDemandRouting",
    "RouteEntry",
    "RouteTable",
    "RoutingConfig",
    "WormholeBeaconRouting",
]
