"""Routing parameters."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RoutingConfig:
    """Tunables of the on-demand routing protocol.

    Attributes
    ----------
    metric:
        ``"shortest"`` — the destination collects request copies for
        ``reply_window`` seconds after the first and answers the one with
        the fewest hops (ties to the earliest).  ``"first"`` — it answers
        the first copy immediately (ARAN-style fastest route).
    reply_window:
        Collection window at the destination for the ``"shortest"`` metric.
    route_timeout:
        ``TOut_Route`` from Table 2 — cached routes are evicted after this
        many seconds.
    request_timeout:
        How long the origin waits for a reply before retrying discovery.
    max_retries:
        Discovery attempts per destination before queued data is dropped.
    queue_capacity:
        Data packets buffered per destination while discovery runs.
    forward_jitter:
        Upper bound of the uniform delay applied before rebroadcasting a
        request (MAC-collision avoidance; the rushing attacker sets 0).
    suppression_threshold:
        Counter-based broadcast suppression: a node cancels its own
        rebroadcast when it has already overheard this many copies of the
        request during its jitter window (its copy would add no
        reachability).  ``0`` disables suppression.
    """

    metric: str = "shortest"
    reply_window: float = 0.6
    route_timeout: float = 50.0
    request_timeout: float = 5.0
    max_retries: int = 3
    queue_capacity: int = 20
    forward_jitter: float = 0.25
    suppression_threshold: int = 2

    def __post_init__(self) -> None:
        if self.metric not in ("shortest", "first"):
            raise ValueError(f"unknown metric {self.metric!r}")
        if self.reply_window < 0:
            raise ValueError("reply_window must be non-negative")
        if self.route_timeout <= 0:
            raise ValueError("route_timeout must be positive")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.max_retries < 1:
            raise ValueError("max_retries must be at least 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.forward_jitter < 0:
            raise ValueError("forward_jitter must be non-negative")
        if self.suppression_threshold < 0:
            raise ValueError("suppression_threshold must be non-negative")
