"""Route cache with timeout eviction.

Every node — origin and intermediate forwarders alike — keeps next-hop
entries installed by passing route replies.  Entries expire ``timeout``
seconds after installation (paper: "A route, once established, is not used
forever but is evicted from the cache after a timeout period expires").
The cache is passive: expiry is checked on access against the supplied
clock, so no timer events are needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

NodeId = int


@dataclass
class RouteEntry:
    """A next-hop pointer toward ``destination``."""

    destination: NodeId
    next_hop: NodeId
    installed_at: float
    expires_at: float
    hop_count: int = 0
    path: Tuple[NodeId, ...] = ()
    request_id: int = -1

    def fresh(self, now: float) -> bool:
        """Whether the entry is still usable at time ``now``."""
        return now < self.expires_at


class RouteTable:
    """Per-node collection of :class:`RouteEntry` with lazy expiry."""

    def __init__(self, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self._timeout = timeout
        self._entries: Dict[NodeId, RouteEntry] = {}

    @property
    def timeout(self) -> float:
        """The eviction timeout (``TOut_Route``)."""
        return self._timeout

    def install(
        self,
        destination: NodeId,
        next_hop: NodeId,
        now: float,
        hop_count: int = 0,
        path: Tuple[NodeId, ...] = (),
        request_id: int = -1,
    ) -> RouteEntry:
        """Install (or replace) the route toward ``destination``."""
        entry = RouteEntry(
            destination=destination,
            next_hop=next_hop,
            installed_at=now,
            expires_at=now + self._timeout,
            hop_count=hop_count,
            path=path,
            request_id=request_id,
        )
        self._entries[destination] = entry
        return entry

    def lookup(self, destination: NodeId, now: float) -> Optional[RouteEntry]:
        """Fresh entry toward ``destination``, or None (expired entries are
        removed as a side effect)."""
        entry = self._entries.get(destination)
        if entry is None:
            return None
        if not entry.fresh(now):
            del self._entries[destination]
            return None
        return entry

    def evict(self, destination: NodeId) -> None:
        """Drop the entry toward ``destination`` if present."""
        self._entries.pop(destination, None)

    def evict_via(self, next_hop: NodeId) -> int:
        """Drop every entry whose next hop is ``next_hop`` (used when a
        neighbor is revoked); returns the number evicted."""
        doomed = [dst for dst, e in self._entries.items() if e.next_hop == next_hop]
        for dst in doomed:
            del self._entries[dst]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._entries)

    def destinations(self) -> Tuple[NodeId, ...]:
        """Destinations with an entry (possibly stale until next lookup)."""
        return tuple(self._entries)
