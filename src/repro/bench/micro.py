"""Microbenchmarks over the simulator's hot paths.

Seven benchmarks, each a pure function returning a :class:`BenchResult`
that serialises to a ``BENCH_<name>.json`` trajectory file:

- ``engine`` — raw event dispatch throughput of the discrete-event
  kernel (a self-rescheduling callback chain).  One warmup round is
  discarded and the headline metric is the *median* of the timed
  rounds: scheduler jitter produced outliers when the best round was
  reported.
- ``channel`` — broadcast transmissions over a static 100-node field,
  exercising the memoized coverage/distance hot path end to end.
- ``identity`` — the byte-identity guarantee behind the engine
  rearchitecture: the figure-sweep scenario matrix (fig8/9/10 seeds)
  run on the accelerated stack and again under
  :func:`repro.sim.accel.reference_mode`, hard-failing unless every
  MetricsReport is byte-identical.
- ``scale`` — a 1000-node, multi-wormhole (4 colluders, fully
  connected tunnel mesh) scenario end to end, with a wall-clock
  budget.  Quick mode runs the reduced 300-node variant CI uses as a
  scale smoke test.
- ``sweep`` — the paper's replication structure: a density sweep at
  30 replications per point, run serial-cold, parallel-cold, and
  cache-warm.  Verifies the three produce byte-identical reports and
  records the wall-clock speedups (the acceptance trajectory for the
  parallel runner and the result cache).  Runs under a
  :class:`~repro.obs.spans.SpanProfiler`, so its JSON also carries the
  harness stage timings (build / run / collect / cache / fan-out).
- ``trace`` — per-record ``TraceLog.emit`` cost with no sink attached,
  a :class:`MemorySink`, a :class:`JsonlSink`, and in bounded ring
  mode — the observability tax on the simulator's hottest call.
- ``campaign`` — the campaign orchestrator's tax over a raw scenario
  loop (journal appends, aggregation, progress accounting), the replay
  speed of a journal-only resume, and the marginal cost of worker
  supervision plus durable (fsync) journal writes over an unsupervised
  no-fsync run.

Timing numbers are environment-dependent by nature; correctness flags
(``byte_identical``) are not.  CI runs the suite in quick mode and only
fails on crash or a determinism violation, never on timing.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.experiments.cache import ResultCache
from repro.experiments.runner import SweepRunner, replication_configs
from repro.experiments.scenario import ScenarioConfig
from repro.net.channel import Channel
from repro.net.packet import DataPacket, Frame
from repro.net.radio import UnitDiskRadio
from repro.sim import accel
from repro.sim.engine import make_simulator
from repro.sim.rng import RngRegistry


@dataclass
class BenchResult:
    """One benchmark's parameters, per-step trajectory, and summary."""

    name: str
    params: Dict[str, object]
    samples: List[Dict[str, object]] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)
    spans: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "params": self.params,
            "samples": self.samples,
            "metrics": self.metrics,
        }
        if self.spans:
            payload["spans"] = self.spans
        return payload

    def write(self, output_dir: Union[str, pathlib.Path]) -> pathlib.Path:
        """Persist as ``BENCH_<name>.json`` under ``output_dir``."""
        output_dir = pathlib.Path(output_dir)
        output_dir.mkdir(parents=True, exist_ok=True)
        path = output_dir / f"BENCH_{self.name}.json"
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    def summary(self) -> str:
        """One human line per headline metric."""
        parts = ", ".join(
            f"{key}={value:.3f}" if isinstance(value, float) else f"{key}={value}"
            for key, value in sorted(self.metrics.items())
        )
        return f"{self.name}: {parts}"


# ----------------------------------------------------------------------
# Kernel: event dispatch throughput
# ----------------------------------------------------------------------
def bench_engine(quick: bool = True) -> BenchResult:
    """Events/second through the kernel's dispatch loop.

    One untimed warmup round (allocator and code caches settle) followed
    by five timed rounds; the headline metric is the **median** rate, so
    a single scheduler hiccup cannot skew the committed number the way
    the old best-of-3 did (the seed file carried a 361k/s outlier round
    next to a 703k/s best).
    """
    total_events = 50_000 if quick else 500_000
    rounds = 5

    def one_round() -> float:
        sim = make_simulator()
        remaining = [total_events]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        started = time.perf_counter()
        sim.run()
        return time.perf_counter() - started

    one_round()  # warmup, discarded
    samples: List[Dict[str, object]] = []
    for round_index in range(rounds):
        elapsed = one_round()
        samples.append(
            {
                "round": round_index,
                "events": total_events,
                "seconds": elapsed,
                "events_per_second": total_events / elapsed,
            }
        )
    rates = [sample["events_per_second"] for sample in samples]
    return BenchResult(
        name="engine",
        params={
            "events": total_events,
            "rounds": rounds,
            "warmup_rounds": 1,
            "quick": quick,
            "kernel": type(make_simulator()).__module__,
        },
        samples=samples,
        metrics={
            "median_events_per_second": statistics.median(rates),
            "best_events_per_second": max(rates),
        },
    )


# ----------------------------------------------------------------------
# Channel: broadcast hot path
# ----------------------------------------------------------------------
def bench_channel(quick: bool = True) -> BenchResult:
    """Transmissions/second over a static field (reception fan-out included)."""
    n_nodes = 100
    transmissions = 2_000 if quick else 20_000
    side = 10  # 10x10 grid, 15 m pitch -> ~8 neighbors at r=30
    positions = {
        node: (15.0 * (node % side), 15.0 * (node // side)) for node in range(n_nodes)
    }
    rounds = 5

    def one_round(round_index: int) -> Dict[str, object]:
        sim = make_simulator()
        radio = UnitDiskRadio(positions, default_range=30.0)
        channel = Channel(sim, radio, RngRegistry(round_index))
        sink_counts = [0]

        def sink(_frame: Frame) -> None:
            sink_counts[0] += 1

        for node in positions:
            channel.attach(node, sink)
        frame_duration = channel.duration_of(
            Frame(packet=DataPacket(origin=0, destination=1, payload_size=64),
                  transmitter=0)
        )
        started = time.perf_counter()
        for index in range(transmissions):
            sender = index % n_nodes
            packet = DataPacket(origin=sender, destination=(sender + 1) % n_nodes,
                                payload_size=64)
            # Space transmissions out so they deliver rather than collide:
            # the delivery path (not the collision path) is the common case.
            channel.transmit(sender, Frame(packet=packet, transmitter=sender))
            sim.run(until=sim.now + 2 * frame_duration)
        elapsed = time.perf_counter() - started
        return {
            "round": round_index,
            "transmissions": transmissions,
            "receptions": sink_counts[0],
            "seconds": elapsed,
            "tx_per_second": transmissions / elapsed,
        }

    one_round(-1)  # warmup, discarded
    samples = [one_round(round_index) for round_index in range(rounds)]
    rates = [sample["tx_per_second"] for sample in samples]
    return BenchResult(
        name="channel",
        params={"n_nodes": n_nodes, "transmissions": transmissions,
                "rounds": rounds, "warmup_rounds": 1, "quick": quick},
        samples=samples,
        metrics={
            "median_tx_per_second": statistics.median(rates),
            "best_tx_per_second": max(rates),
        },
    )


# ----------------------------------------------------------------------
# Identity: accelerated stack == reference stack, byte for byte
# ----------------------------------------------------------------------
def _identity_configs(quick: bool) -> Dict[str, ScenarioConfig]:
    """The figure-sweep seeds the byte-identity guarantee is proven on."""
    from dataclasses import replace

    duration = 60.0 if quick else 120.0
    fig10_duration = 55.0 if quick else 110.0
    fig8 = ScenarioConfig(
        n_nodes=30, duration=duration, seed=4, attack_start=40.0, n_malicious=2
    )
    fig9 = ScenarioConfig(
        n_nodes=30, duration=duration, seed=7, attack_start=40.0, n_malicious=4
    )
    fig10 = ScenarioConfig(
        n_nodes=40,
        avg_neighbors=15.0,
        duration=fig10_duration,
        seed=11,
        attack_start=40.0,
        n_malicious=2,
    )
    return {
        "fig8": fig8,
        "fig9_m4": fig9,
        "fig10_theta3": replace(fig10, liteworp=replace(fig10.liteworp, theta=3)),
    }


def bench_identity(quick: bool = True) -> BenchResult:
    """Byte-identity of MetricsReports: accelerated vs reference stack.

    Every figure-sweep seed scenario runs twice in this process — once on
    the full accelerated stack (C kernel, grid index, batched delivery,
    pooling) and once under :func:`repro.sim.accel.reference_mode` (the
    seed engine's exact code paths).  The canonical JSON of the two
    reports must match byte for byte; ``run_benchmarks`` turns any
    mismatch into a hard failure.  The recorded per-scenario timings are
    the honest end-to-end speedup of the rearchitecture.
    """
    from repro.experiments.scenario import run_scenario

    samples: List[Dict[str, object]] = []
    identical = True
    for label, config in _identity_configs(quick).items():
        accel_started = time.perf_counter()
        accel_report = run_scenario(config)
        accel_seconds = time.perf_counter() - accel_started
        with accel.reference_mode():
            ref_started = time.perf_counter()
            ref_report = run_scenario(config)
            ref_seconds = time.perf_counter() - ref_started
        matches = json.dumps(accel_report.to_state(), sort_keys=True) == json.dumps(
            ref_report.to_state(), sort_keys=True
        )
        identical = identical and matches
        samples.append(
            {
                "scenario": label,
                "n_nodes": config.n_nodes,
                "seed": config.seed,
                "accel_seconds": accel_seconds,
                "reference_seconds": ref_seconds,
                "speedup": ref_seconds / accel_seconds if accel_seconds else 0.0,
                "byte_identical": matches,
            }
        )
    return BenchResult(
        name="identity",
        params={"quick": quick, "scenarios": len(samples),
                "kernel": type(make_simulator()).__module__},
        samples=samples,
        metrics={
            "byte_identical": identical,
            "median_speedup": statistics.median(
                sample["speedup"] for sample in samples
            ),
        },
    )


# ----------------------------------------------------------------------
# Scale: 1000-node multi-wormhole under a wall-clock budget
# ----------------------------------------------------------------------
def bench_scale(quick: bool = True) -> BenchResult:
    """A large multi-wormhole campaign scenario, end to end, on a budget.

    Full mode is the committed acceptance point: 1000 nodes, four
    colluders forming a fully connected out-of-band tunnel mesh (a
    multi-ended wormhole), 60 simulated seconds, budget 300 s of wall
    clock.  Quick mode is the reduced 300-node variant CI runs as a
    scale smoke test with a 240 s budget.  Density is N_B = 12 (the
    paper's N_B = 8 almost never yields a *connected* 1000-node uniform
    draw, and the defense analysis assumes a connected graph).
    """
    from repro.experiments.scenario import run_scenario

    n_nodes = 300 if quick else 1000
    budget_seconds = 240.0 if quick else 300.0
    config = ScenarioConfig(
        n_nodes=n_nodes,
        avg_neighbors=12.0,
        duration=60.0,
        seed=4,
        attack_start=20.0,
        n_malicious=4,
    )
    started = time.perf_counter()
    report = run_scenario(config)
    elapsed = time.perf_counter() - started
    state = report.to_state()
    return BenchResult(
        name="scale",
        params={
            "quick": quick,
            "n_nodes": n_nodes,
            "n_malicious": config.n_malicious,
            "avg_neighbors": config.avg_neighbors,
            "duration": config.duration,
            "seed": config.seed,
            "budget_seconds": budget_seconds,
            "kernel": type(make_simulator()).__module__,
        },
        samples=[
            {
                "n_nodes": n_nodes,
                "seconds": elapsed,
                "sim_seconds_per_wall_second": config.duration / elapsed,
            }
        ],
        metrics={
            "wall_seconds": elapsed,
            "within_budget": elapsed <= budget_seconds,
            "detections": state.get("detections", 0),
            "isolations": state.get("isolations", 0),
        },
    )


# ----------------------------------------------------------------------
# Sweep: replication parallelism + result cache
# ----------------------------------------------------------------------
def _sweep_configs(quick: bool, runs: int) -> List[ScenarioConfig]:
    """The density-sweep work list: ``runs`` replications per point."""
    if quick:
        settings = ((16, 8.0), (20, 8.0))
        duration = 40.0
    else:
        settings = ((20, 8.0), (30, 8.0), (40, 8.0))
        duration = 60.0
    configs: List[ScenarioConfig] = []
    for n_nodes, avg_neighbors in settings:
        point = ScenarioConfig(
            n_nodes=n_nodes,
            avg_neighbors=avg_neighbors,
            duration=duration,
            seed=4,
            attack_start=20.0,
        )
        configs.extend(replication_configs(point, runs))
    return configs


def bench_sweep(
    quick: bool = True,
    jobs: Optional[int] = None,
    runs: Optional[int] = None,
    cache_root: Optional[Union[str, pathlib.Path]] = None,
) -> BenchResult:
    """Serial vs parallel vs cache-warm wall clock on a density sweep.

    Three passes over the identical work list:

    1. **serial-cold** — one process, no cache, each replication timed
       individually (the trajectory samples);
    2. **parallel-cold** — ``jobs`` worker processes (default 2), no
       cache;
    3. **warm** — every point served from the result cache populated
       between passes.

    All three must produce byte-identical reports (``byte_identical``);
    the recorded speedups are relative to the serial-cold pass.
    """
    import tempfile

    from repro.obs.spans import SpanProfiler, activate

    runs = runs if runs is not None else (3 if quick else 30)
    jobs = jobs if jobs is not None else 2
    configs = _sweep_configs(quick, runs)
    profiler = SpanProfiler()

    samples: List[Dict[str, object]] = []
    with activate(profiler):
        serial_runner = SweepRunner()
        serial_reports = []
        serial_started = time.perf_counter()
        for index, config in enumerate(configs):
            run_started = time.perf_counter()
            serial_reports.append(serial_runner.run_one(config))
            samples.append(
                {
                    "phase": "serial",
                    "index": index,
                    "n_nodes": config.n_nodes,
                    "seed": config.seed,
                    "seconds": time.perf_counter() - run_started,
                }
            )
        serial_seconds = time.perf_counter() - serial_started

        parallel_started = time.perf_counter()
        parallel_reports = SweepRunner(jobs=jobs).run_many(configs)
        parallel_seconds = time.perf_counter() - parallel_started
        samples.append({"phase": "parallel", "jobs": jobs, "seconds": parallel_seconds})

        own_temp = None
        if cache_root is None:
            own_temp = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
            cache_root = own_temp.name
        try:
            populate = ResultCache(cache_root)
            for config, report in zip(configs, serial_reports):
                populate.put(config, report)
            warm_runner = SweepRunner(cache=ResultCache(cache_root))
            warm_started = time.perf_counter()
            warm_reports = warm_runner.run_many(configs)
            warm_seconds = time.perf_counter() - warm_started
            samples.append(
                {"phase": "warm", "cache_hits": warm_runner.cache_hits,
                 "seconds": warm_seconds}
            )
        finally:
            if own_temp is not None:
                own_temp.cleanup()

    canonical = [json.dumps(r.to_state(), sort_keys=True) for r in serial_reports]
    byte_identical = (
        canonical == [json.dumps(r.to_state(), sort_keys=True) for r in parallel_reports]
        and canonical == [json.dumps(r.to_state(), sort_keys=True) for r in warm_reports]
    )
    return BenchResult(
        name="sweep",
        params={
            "quick": quick,
            "runs_per_point": runs,
            "points": len(configs) // runs,
            "total_replications": len(configs),
            "jobs": jobs,
        },
        samples=samples,
        metrics={
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "warm_seconds": warm_seconds,
            "speedup_parallel": serial_seconds / parallel_seconds,
            "speedup_cached": serial_seconds / warm_seconds,
            "byte_identical": byte_identical,
        },
        spans=profiler.flat(),
    )


# ----------------------------------------------------------------------
# Trace: per-record emit overhead across sink configurations
# ----------------------------------------------------------------------
def bench_trace(quick: bool = True) -> BenchResult:
    """Nanoseconds per ``TraceLog.emit`` with each sink configuration.

    The emit call sits on the simulator's hottest paths (every frame,
    every monitor event), so the observability subsystem's whole cost
    story reduces to this number.  Four configurations:

    - ``no_sink`` — the baseline everyone pays: append to the resident
      list only;
    - ``memory_sink`` — plus one in-process subscriber-style sink;
    - ``jsonl_sink`` — plus JSON serialisation and a line-buffered file
      append (the export path);
    - ``ring`` — bounded residency (``capacity=512``), the long-run
      memory-safety mode.

    Overhead ratios are best-round times relative to ``no_sink``.
    """
    import tempfile

    from repro.obs.sinks import JsonlSink, MemorySink
    from repro.sim.trace import TraceLog

    emits = 20_000 if quick else 200_000
    rounds = 3

    def run_config(label: str, make: Callable[[pathlib.Path], TraceLog]) -> float:
        """Best-of-rounds seconds for one configuration; records samples."""
        best = None
        for round_index in range(rounds):
            with tempfile.TemporaryDirectory(prefix="repro-bench-trace-") as temp:
                trace = make(pathlib.Path(temp))
                started = time.perf_counter()
                for index in range(emits):
                    trace.emit(
                        float(index), "malicious_drop", node=7, packet=index
                    )
                elapsed = time.perf_counter() - started
                trace.close_sinks()
            samples.append(
                {
                    "config": label,
                    "round": round_index,
                    "emits": emits,
                    "seconds": elapsed,
                    "ns_per_emit": 1e9 * elapsed / emits,
                }
            )
            if best is None or elapsed < best:
                best = elapsed
        return best if best is not None else 0.0

    samples: List[Dict[str, object]] = []

    def plain(_temp: pathlib.Path) -> TraceLog:
        return TraceLog()

    def with_memory(_temp: pathlib.Path) -> TraceLog:
        trace = TraceLog()
        trace.attach_sink(MemorySink())
        return trace

    def with_jsonl(temp: pathlib.Path) -> TraceLog:
        trace = TraceLog()
        trace.attach_sink(JsonlSink(temp / "trace.jsonl"))
        return trace

    def with_ring(_temp: pathlib.Path) -> TraceLog:
        return TraceLog(capacity=512)

    timings = {
        "no_sink": run_config("no_sink", plain),
        "memory_sink": run_config("memory_sink", with_memory),
        "jsonl_sink": run_config("jsonl_sink", with_jsonl),
        "ring": run_config("ring", with_ring),
    }
    base = timings["no_sink"]
    metrics: Dict[str, object] = {
        f"{label}_ns_per_emit": 1e9 * seconds / emits
        for label, seconds in timings.items()
    }
    for label in ("memory_sink", "jsonl_sink", "ring"):
        metrics[f"{label}_overhead"] = timings[label] / base if base else 0.0
    return BenchResult(
        name="trace",
        params={"emits": emits, "rounds": rounds, "quick": quick},
        samples=samples,
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# Campaign: orchestration + journal overhead over a raw loop
# ----------------------------------------------------------------------
def bench_campaign(quick: bool = True) -> BenchResult:
    """Campaign harness tax: journaled campaign vs a raw scenario loop.

    Runs the same job grid five ways over identical configs:

    1. **raw** — a bare ``run_scenario`` loop, no journal, no aggregate
       (the floor every campaign feature is priced against);
    2. **campaign-cold** — the inline backend with a JSONL journal,
       progress accounting, and aggregation;
    3. **campaign-resume** — a second run over the finished journal:
       every job replayed from disk, zero simulations;
    4. **unsupervised** — journal without fsync, no per-job timeout,
       quarantine off (the pre-supervision execution profile);
    5. **supervised** — durable fsync journal, a generous per-job
       wall-clock timeout, and quarantine on (the default profile).

    The gap between 4 and 5, per job, is ``supervision_overhead_per_job_ms``
    — what crash consistency and worker supervision cost when nothing
    goes wrong.

    Correctness flag: the resumed, unsupervised, and supervised
    aggregates must all be byte-identical to the cold one, and the cold
    aggregate must equal the one recomputed from the raw loop's reports
    (``byte_identical``).
    """
    import tempfile

    from repro.experiments.campaign import (
        CampaignSpec,
        SupervisionPolicy,
        aggregate_campaign,
        compile_campaign,
        run_campaign,
    )
    from repro.experiments.scenario import run_scenario

    runs = 2 if quick else 5
    nodes = (16, 20) if quick else (16, 20, 24)
    spec = CampaignSpec(
        name="bench",
        base=ScenarioConfig(n_nodes=16, duration=30.0, seed=4, attack_start=10.0),
        axes=(("n_nodes", tuple(nodes)),),
        runs=runs,
    )
    jobs = compile_campaign(spec)

    samples: List[Dict[str, object]] = []
    raw_started = time.perf_counter()
    raw_reports: Dict[int, object] = {}
    for job in jobs:
        job_started = time.perf_counter()
        raw_reports[job.index] = run_scenario(job.config)
        samples.append(
            {
                "phase": "raw",
                "index": job.index,
                "n_nodes": job.config.n_nodes,
                "seed": job.config.seed,
                "seconds": time.perf_counter() - job_started,
            }
        )
    raw_seconds = time.perf_counter() - raw_started

    with tempfile.TemporaryDirectory(prefix="repro-bench-campaign-") as temp:
        journal = pathlib.Path(temp) / "bench.journal.jsonl"
        cold_started = time.perf_counter()
        cold = run_campaign(spec, journal=journal)
        cold_seconds = time.perf_counter() - cold_started
        samples.append(
            {"phase": "campaign_cold", "executed": cold.executed,
             "seconds": cold_seconds}
        )
        resume_started = time.perf_counter()
        resumed = run_campaign(spec, journal=journal, resume=True)
        resume_seconds = time.perf_counter() - resume_started
        samples.append(
            {"phase": "campaign_resume", "from_journal": resumed.from_journal,
             "seconds": resume_seconds}
        )

        bare_journal = pathlib.Path(temp) / "bench.bare.jsonl"
        bare_started = time.perf_counter()
        bare = run_campaign(
            spec,
            journal=bare_journal,
            fsync=False,
            supervision=SupervisionPolicy(timeout=None, quarantine=False),
        )
        bare_seconds = time.perf_counter() - bare_started
        samples.append(
            {"phase": "campaign_unsupervised", "executed": bare.executed,
             "seconds": bare_seconds}
        )

        guarded_journal = pathlib.Path(temp) / "bench.guarded.jsonl"
        guarded_started = time.perf_counter()
        guarded = run_campaign(
            spec,
            journal=guarded_journal,
            fsync=True,
            supervision=SupervisionPolicy(timeout=300.0, quarantine=True),
        )
        guarded_seconds = time.perf_counter() - guarded_started
        samples.append(
            {"phase": "campaign_supervised", "executed": guarded.executed,
             "seconds": guarded_seconds}
        )

    raw_aggregate = aggregate_campaign(spec, jobs, raw_reports)
    cold_canonical = json.dumps(cold.aggregate, sort_keys=True)
    byte_identical = (
        resumed.executed == 0
        and cold_canonical == json.dumps(resumed.aggregate, sort_keys=True)
        and cold_canonical == json.dumps(raw_aggregate, sort_keys=True)
        and cold_canonical == json.dumps(bare.aggregate, sort_keys=True)
        and cold_canonical == json.dumps(guarded.aggregate, sort_keys=True)
    )
    return BenchResult(
        name="campaign",
        params={"quick": quick, "jobs": len(jobs), "runs_per_point": runs,
                "points": len(nodes)},
        samples=samples,
        metrics={
            "raw_seconds": raw_seconds,
            "campaign_seconds": cold_seconds,
            "resume_seconds": resume_seconds,
            "unsupervised_seconds": bare_seconds,
            "supervised_seconds": guarded_seconds,
            "overhead_per_job_ms": 1e3 * (cold_seconds - raw_seconds) / len(jobs),
            "supervision_overhead_per_job_ms": (
                1e3 * (guarded_seconds - bare_seconds) / len(jobs)
            ),
            "byte_identical": byte_identical,
        },
    )


BENCHMARKS: Dict[str, Callable[..., BenchResult]] = {
    "engine": bench_engine,
    "channel": bench_channel,
    "identity": bench_identity,
    "scale": bench_scale,
    "sweep": bench_sweep,
    "trace": bench_trace,
    "campaign": bench_campaign,
}


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    quick: bool = True,
    jobs: Optional[int] = None,
    output_dir: Optional[Union[str, pathlib.Path]] = None,
) -> List[BenchResult]:
    """Run the selected benchmarks, write their JSON files, return results.

    Raises RuntimeError on correctness failures (as opposed to timing
    ones): a determinism violation in the sweep or campaign benchmark, a
    byte-identity mismatch between the accelerated and reference stacks,
    or a scale run blowing its wall-clock budget.
    """
    selected = list(names) if names else list(BENCHMARKS)
    unknown = [name for name in selected if name not in BENCHMARKS]
    if unknown:
        raise ValueError(f"unknown benchmarks: {unknown}; available: {list(BENCHMARKS)}")
    results: List[BenchResult] = []
    for name in selected:
        if name == "sweep":
            result = BENCHMARKS[name](quick=quick, jobs=jobs)
        else:
            result = BENCHMARKS[name](quick=quick)
        if output_dir is not None:
            result.write(output_dir)
        if result.metrics.get("byte_identical") is False:
            raise RuntimeError(
                f"{name} benchmark: reports diverged across execution modes"
            )
        if result.metrics.get("within_budget") is False:
            raise RuntimeError(
                f"{name} benchmark: exceeded its wall-clock budget "
                f"({result.metrics.get('wall_seconds'):.1f}s > "
                f"{result.params.get('budget_seconds')}s)"
            )
        results.append(result)
    return results
