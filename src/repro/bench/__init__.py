"""Microbenchmark suite for the simulation hot paths.

``python -m repro bench`` runs these and writes ``BENCH_*.json``
trajectory files; see :mod:`repro.bench.micro`.
"""

from repro.bench.micro import (  # noqa: F401
    BENCHMARKS,
    BenchResult,
    bench_campaign,
    bench_channel,
    bench_engine,
    bench_sweep,
    bench_trace,
    run_benchmarks,
)
