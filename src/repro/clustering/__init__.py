"""Cluster formation under wormhole attack.

The paper's introduction lists "data aggregation and clustering
protocols" among the systems a wormhole subverts.  This package provides
a classic lowest-ID cluster-head election
(:class:`~repro.clustering.lowest_id.LowestIdClustering`) and the
wormhole that corrupts it (:class:`~repro.clustering.lowest_id.ClusterWormhole`):
tunnelling a head announcement into a distant region makes far-away nodes
join a cluster head they cannot actually reach, silently partitioning the
cluster structure.  LITEWORP's non-neighbor legitimacy check stops the
replayed announcements at every receiver.
"""

from repro.clustering.lowest_id import (
    ClusterAnnounce,
    ClusteringConfig,
    ClusterWormhole,
    LowestIdClustering,
    cluster_integrity,
)

__all__ = [
    "ClusterAnnounce",
    "ClusterWormhole",
    "ClusteringConfig",
    "LowestIdClustering",
    "cluster_integrity",
]
