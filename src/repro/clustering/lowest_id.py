"""Lowest-ID cluster-head election and its wormhole.

The protocol (Lin/Gerla style, simplified to one round):

1. every node waits a delay proportional to its id (lower id = earlier
   turn — the distributed equivalent of iterating in id order);
2. when its turn comes, a node that has not yet heard a head announcement
   from any neighbor declares *itself* a cluster head and broadcasts an
   authenticated :class:`ClusterAnnounce`;
3. a node that hears an announcement before its turn joins that head (the
   lowest-id one it heard) and stays silent.

The wormhole tunnels announcement frames verbatim into a distant region:
victims there hear "head H announces" from a node that is *not* their
neighbor, join H, and end up in a cluster whose head they cannot reach —
every message to their head will die silently.  LITEWORP's non-neighbor
check rejects the replayed frame, so protected nodes only ever join
genuine neighbors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.net.node import Node
from repro.net.packet import Frame, NodeId, Packet
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class ClusterAnnounce(Packet):
    """A node declaring itself cluster head."""

    head: NodeId = 0

    def key(self) -> Tuple[Any, ...]:
        return ("CH", self.head)

    @property
    def size_bytes(self) -> int:
        return 16


@dataclass(frozen=True)
class ClusteringConfig:
    """Election timing."""

    start_time: float = 1.0
    slot: float = 0.2  # id-proportional turn spacing

    def __post_init__(self) -> None:
        if self.start_time < 0:
            raise ValueError("start_time must be non-negative")
        if self.slot <= 0:
            raise ValueError("slot must be positive")


class LowestIdClustering:
    """Per-node lowest-ID election agent."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        config: ClusteringConfig,
        trace: TraceLog,
    ) -> None:
        self.sim = sim
        self.node = node
        self.config = config
        self.trace = trace
        self.head: Optional[NodeId] = None  # my head (self if I lead)
        self.is_head = False
        node.add_listener(self.on_frame)

    def start(self) -> None:
        """Arm this node's election turn."""
        delay = self.config.start_time + self.config.slot * self.node.node_id
        self.sim.schedule(delay, self._take_turn)

    def _take_turn(self) -> None:
        if self.head is not None:
            return  # already joined a neighbor's cluster
        self.is_head = True
        self.head = self.node.node_id
        self.trace.emit(self.sim.now, "cluster_head", head=self.node.node_id)
        self.node.broadcast(ClusterAnnounce(head=self.node.node_id), jitter=0.01)

    def on_frame(self, frame: Frame) -> None:
        """Join the first (lowest-id, by turn order) head heard."""
        packet = frame.packet
        if not isinstance(packet, ClusterAnnounce):
            return
        if self.is_head or self.head is not None:
            return
        self.head = packet.head
        self.trace.emit(
            self.sim.now, "cluster_join",
            node=self.node.node_id, head=packet.head,
            heard_from=frame.transmitter,
        )


class ClusterWormhole:
    """Two colluders replaying head announcements across the field.

    The near end overhears announcements; the far end re-transmits them
    verbatim (original transmitter preserved — a replay, exactly like the
    packet-relay mode) after the tunnel latency.
    """

    def __init__(
        self,
        sim: Simulator,
        near: Node,
        far: Node,
        trace: TraceLog,
        tunnel_latency: float = 1e-4,
    ) -> None:
        self.sim = sim
        self.near = near
        self.far = far
        self.trace = trace
        self.tunnel_latency = tunnel_latency
        self.active = False
        self.replayed = 0
        near.add_observer(self._on_frame)

    def activate(self) -> None:
        """Begin replaying announcements."""
        self.active = True

    def _on_frame(self, frame: Frame) -> None:
        if not self.active:
            return
        if not isinstance(frame.packet, ClusterAnnounce):
            return
        if frame.transmitter in (self.near.node_id, self.far.node_id):
            return
        self.replayed += 1
        self.trace.emit(
            self.sim.now, "wormhole_activity", node=self.near.node_id
        )
        self.sim.schedule(self.tunnel_latency, self.far.raw_send, frame, 0.001)


def cluster_integrity(
    agents: Dict[NodeId, LowestIdClustering], topology: Topology
) -> Dict[str, Any]:
    """Audit the formed clusters.

    A membership is *broken* when a node's head is not actually a radio
    neighbor (nor itself): its intra-cluster traffic can never arrive.
    """
    heads = {n for n, a in agents.items() if a.is_head}
    broken = []
    unassigned = []
    for node_id, agent in agents.items():
        if agent.head is None:
            unassigned.append(node_id)
            continue
        if agent.head == node_id:
            continue
        if agent.head not in topology.neighbors(node_id):
            broken.append(node_id)
    return {
        "heads": sorted(heads),
        "broken_memberships": sorted(broken),
        "unassigned": sorted(unassigned),
        "ok": not broken and not unassigned,
    }
