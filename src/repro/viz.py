"""ASCII field rendering.

Terminal-friendly pictures of a deployment: node positions on a character
grid, malicious nodes highlighted, revocation status, and wormhole links.
Used by examples and handy in a REPL; kept dependency-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from repro.net.packet import NodeId

Position = Tuple[float, float]


def render_field(
    positions: Dict[NodeId, Position],
    width: int = 60,
    height: int = 24,
    malicious: Iterable[NodeId] = (),
    isolated: Iterable[NodeId] = (),
    highlight: Iterable[NodeId] = (),
) -> str:
    """Render node positions on a ``width`` x ``height`` character canvas.

    Symbols: ``.`` honest node, ``W`` malicious (wormhole) node, ``X``
    malicious and fully isolated, ``*`` highlighted (e.g. the sink).
    Collisions on a cell keep the most severe symbol.
    """
    if not positions:
        return "(empty field)"
    if width < 2 or height < 2:
        raise ValueError("canvas must be at least 2x2")
    xs = [p[0] for p in positions.values()]
    ys = [p[1] for p in positions.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)

    severity = {".": 0, "*": 1, "W": 2, "X": 3}
    canvas = [[" " for _ in range(width)] for _ in range(height)]
    malicious = set(malicious)
    isolated = set(isolated)
    highlight = set(highlight)

    for node, (x, y) in positions.items():
        col = int((x - min_x) / span_x * (width - 1))
        row = int((y - min_y) / span_y * (height - 1))
        if node in malicious:
            symbol = "X" if node in isolated else "W"
        elif node in highlight:
            symbol = "*"
        else:
            symbol = "."
        current = canvas[row][col]
        if current == " " or severity[symbol] > severity.get(current, -1):
            canvas[row][col] = symbol

    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in canvas)
    return f"{border}\n{body}\n{border}"


def render_scenario(scenario, show_isolation: bool = True) -> str:
    """Render a built scenario: malicious nodes, isolation state, legend."""
    isolated = []
    if show_isolation:
        for malicious in scenario.malicious_ids:
            agents = scenario.agents.values()
            revokers = sum(1 for agent in agents if agent.has_isolated(malicious))
            honest_neighbors = [
                n for n in scenario.network.neighbors(malicious)
                if n not in set(scenario.malicious_ids)
            ]
            if honest_neighbors and revokers >= len(
                [n for n in honest_neighbors if n in scenario.agents]
            ):
                isolated.append(malicious)
    field = render_field(
        scenario.topology.positions,
        malicious=scenario.malicious_ids,
        isolated=isolated,
    )
    legend = ". honest   W wormhole node   X wormhole node (fully isolated)"
    return f"{field}\n{legend}"


def render_timeseries(
    values: Sequence[float],
    width: int = 50,
    label: str = "",
) -> str:
    """A one-line-per-sample horizontal bar chart."""
    if not values:
        return "(no data)"
    peak = max(values) or 1.0
    lines = []
    for index, value in enumerate(values):
        bar = "#" * int(round(value / peak * width))
        lines.append(f"{label}{index:4d} {value:10.2f} {bar}")
    return "\n".join(lines)
