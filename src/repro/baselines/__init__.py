"""Comparison baselines from the paper's related work (section 2).

The paper positions LITEWORP against *packet leashes* (Hu, Perrig,
Johnson — INFOCOM 2003), the best-known wormhole defense at the time:

- **Geographical leashes** — every transmission carries the sender's
  authenticated location and send time; the receiver bounds the distance
  the packet can have travelled and discards violators.  Needs location
  knowledge and loosely synchronised clocks.
- **Temporal leashes** — every transmission carries an authenticated send
  time; the receiver bounds the packet's lifetime.  Needs tightly
  synchronised clocks and negligible processing delays.

This package implements both (:mod:`repro.baselines.leashes`) on the same
substrate LITEWORP runs on, so the paper's comparison claims can be
measured rather than argued:

1. leashes add per-packet overhead on *every* packet, LITEWORP adds none;
2. leashes stop replay-style wormholes (outsider relay, high-power) but
   cannot stop a wormhole between two *compromised insiders* that re-leash
   the tunnelled traffic as their own;
3. leashes "do not nullify the capacity of the compromised nodes from
   launching attacks in the future" — there is no isolation, the attacker
   keeps trying forever.
"""

from repro.baselines.leashes import GEO_LEASH_BYTES, Leash, LeashAgent, LeashConfig
from repro.baselines.sector import DistanceBounding, SectorConfig

__all__ = [
    "DistanceBounding",
    "GEO_LEASH_BYTES",
    "Leash",
    "LeashAgent",
    "LeashConfig",
    "SectorConfig",
]
