"""SECTOR-style distance bounding (Capkun, Buttyan, Hubaux) baseline.

The paper's related work describes SECTOR's MAD protocol: node u sends a
one-bit challenge that v must answer *instantly*; the round-trip time
bounds the distance (time of flight at light speed), so v cannot claim to
be closer than it is.  The catch the paper emphasises: "the approach uses
special hardware for the challenge request-response and accurate time
measurements".

This module makes that requirement quantitative.  The measured distance is
the true distance plus timing noise of ±(clock_resolution · c / 2): with a
nanosecond clock the bound is sharp to ±15 cm; with a microsecond clock it
is ±150 m — useless at a 30 m radio range.  Used as a neighbor-verification
step it defeats the fake-link wormholes (relay, high-power) but, like
packet leashes, says nothing about colluding insiders who really are where
they claim to be.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.net.packet import NodeId
from repro.net.radio import UnitDiskRadio, distance

LIGHT_SPEED = 299_792_458.0


@dataclass(frozen=True)
class SectorConfig:
    """Distance-bounding parameters.

    Attributes
    ----------
    comm_range:
        Claimed-neighbor acceptance bound (the radio range r).
    clock_resolution:
        Timer granularity of the challenge-response hardware, in seconds.
        The distance error is ± clock_resolution * c / 2.
    responder_delay:
        Fixed turnaround of the responder hardware (0 for the dedicated
        MAD hardware; software stacks add micro- to milliseconds, which
        the measurement cannot distinguish from distance).
    """

    comm_range: float = 30.0
    clock_resolution: float = 1e-9
    responder_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.comm_range <= 0:
            raise ValueError("comm_range must be positive")
        if self.clock_resolution < 0 or self.responder_delay < 0:
            raise ValueError("timing parameters must be non-negative")

    @property
    def distance_error(self) -> float:
        """Half-width of the measurement error band, in metres."""
        return self.clock_resolution * LIGHT_SPEED / 2.0


class DistanceBounding:
    """Challenge-response distance measurement over the simulated field."""

    def __init__(
        self,
        radio: UnitDiskRadio,
        config: SectorConfig,
        rng: random.Random,
    ) -> None:
        self.radio = radio
        self.config = config
        self.rng = rng
        self.verifications = 0
        self.rejections = 0

    def measure(self, verifier: NodeId, prover: NodeId) -> float:
        """Measured distance: truth + turnaround + timing noise.

        A responder turnaround reads as extra distance (the verifier
        cannot tell waiting from travelling), exactly why MAD needs
        dedicated hardware.
        """
        true_distance = distance(
            self.radio.position(verifier), self.radio.position(prover)
        )
        turnaround = self.config.responder_delay * LIGHT_SPEED / 2.0
        noise = self.rng.uniform(-1.0, 1.0) * self.config.distance_error
        return max(0.0, true_distance + turnaround + noise)

    def verify_neighbor(self, verifier: NodeId, prover: NodeId) -> Tuple[bool, float]:
        """Accept the prover as a neighbor iff its measured distance fits
        inside the communication range."""
        self.verifications += 1
        measured = self.measure(verifier, prover)
        accepted = measured <= self.config.comm_range
        if not accepted:
            self.rejections += 1
        return accepted, measured

    def false_reject_rate(
        self, verifier: NodeId, prover: NodeId, trials: int = 200
    ) -> float:
        """Fraction of measurements that reject a genuine neighbor —
        the usability cost of coarse clocks."""
        if trials < 1:
            raise ValueError("trials must be at least 1")
        rejects = 0
        for _ in range(trials):
            accepted, _ = self.verify_neighbor(verifier, prover)
            if not accepted:
                rejects += 1
        return rejects / trials
