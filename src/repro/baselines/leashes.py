"""Packet leashes (Hu, Perrig, Johnson) as a comparison baseline.

A *leash* is "any added information to the packet for the purpose of
defending against the wormhole" (paper section 2).  Per hop, the sender
attaches an authenticated (position, send-time) stamp at the radio; the
receiver bounds how far the packet can have travelled:

- **geographic**:  ``dist(p_s, p_r) <= range + v * (t_r - t_s + 2*delta)``
  where v bounds node speed and delta the (loose) clock error;
- **temporal**:  the packet's age must not exceed the air time plus a
  small processing budget:  ``t_r - t_s - duration <= budget + 2*delta``
  (with a 40 kbps radio the air time dominates light-travel time, so the
  bound is effectively an age check — the paper's observation that
  temporal leashes assume "packet processing, sending, and receiving
  delays are negligible" shows up here as the budget term).

The authentication tag stands in for the TIK / hash-tree broadcast
authentication of the original scheme: outsiders cannot forge it, every
insider can produce it *for its own transmissions*.  That is exactly the
scheme's limit: two colluding **insiders** re-leash tunnelled traffic as
their own and pass every check, while replay-style wormholes (the
outsider relay, high-power shouting) are caught.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.crypto.auth import Authenticator
from repro.net.node import Node
from repro.net.packet import Frame, NodeId
from repro.net.radio import UnitDiskRadio, distance
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog

GEO_LEASH_BYTES = 28  # 2 x 8-byte coordinates + 4-byte timestamp + 8-byte tag
TEMPORAL_LEASH_BYTES = 16  # 4-byte timestamp + 4-byte expiry + 8-byte tag

KINDS = ("geographic", "temporal")


@dataclass(frozen=True)
class Leash:
    """The per-transmission stamp."""

    sender: NodeId
    position: Tuple[float, float]
    sent_at: float
    auth: bytes
    size_bytes: int = GEO_LEASH_BYTES


@dataclass(frozen=True)
class LeashConfig:
    """Leash-verification parameters.

    Attributes
    ----------
    kind:
        ``"geographic"`` or ``"temporal"``.
    comm_range:
        The nominal radio range r used as the distance bound.
    clock_error:
        One-sided clock synchronisation error delta (loose for the
        geographic leash, tight for the temporal one).
    speed_bound:
        v — maximum node speed, slackening the geographic bound.
    processing_budget:
        Allowed non-propagation latency per hop for the temporal leash
        (MAC turnaround; light travel time is negligible at r = 30 m).
    bandwidth_bps:
        The channel bit rate, used by the temporal check to discount the
        frame's own air time from its age.
    require_leash:
        Reject frames carrying no leash at all (on by default — a
        leash-protected network treats bare frames as suspect).
    """

    kind: str = "geographic"
    comm_range: float = 30.0
    clock_error: float = 0.001
    speed_bound: float = 0.0
    processing_budget: float = 0.002
    bandwidth_bps: float = 40_000.0
    require_leash: bool = True

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}")
        if self.comm_range <= 0:
            raise ValueError("comm_range must be positive")
        if self.clock_error < 0 or self.speed_bound < 0 or self.processing_budget < 0:
            raise ValueError("error/speed/budget must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")

    @property
    def leash_bytes(self) -> int:
        """Per-packet overhead in bytes."""
        return GEO_LEASH_BYTES if self.kind == "geographic" else TEMPORAL_LEASH_BYTES


class LeashAgent:
    """Per-node leash stamping and verification.

    Stamping happens at the channel (PHY) so the send time is the actual
    transmission time even after MAC queueing; verification is a receive
    filter installed on the node.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        radio: UnitDiskRadio,
        config: LeashConfig,
        trace: TraceLog,
        leash_key: bytes = b"network-wide-leash-key",
        verify_incoming: bool = True,
    ) -> None:
        self.sim = sim
        self.node = node
        self.radio = radio
        self.config = config
        self.trace = trace
        self.leash_key = leash_key
        self.accepted = 0
        self.rejected_missing = 0
        self.rejected_auth = 0
        self.rejected_distance = 0
        self.rejected_age = 0
        self.bytes_overhead = 0
        if verify_incoming:
            node.add_filter(self._verify)

    # ------------------------------------------------------------------
    # Stamping (wire to channel.set_frame_stamper)
    # ------------------------------------------------------------------
    def stamp(self, frame: Frame) -> Frame:
        """Attach this node's leash at the moment of transmission."""
        position = self.radio.position(self.node.node_id)
        now = self.sim.now
        leash = Leash(
            sender=self.node.node_id,
            position=position,
            sent_at=now,
            auth=Authenticator.tag(
                self.leash_key, "leash", self.node.node_id,
                position[0], position[1], now,
            ),
            size_bytes=self.config.leash_bytes,
        )
        self.bytes_overhead += leash.size_bytes
        return Frame(
            packet=frame.packet,
            transmitter=frame.transmitter,
            link_dst=frame.link_dst,
            prev_hop=frame.prev_hop,
            leash=leash,
        )

    # ------------------------------------------------------------------
    # Verification (receive filter)
    # ------------------------------------------------------------------
    def _verify(self, frame: Frame) -> bool:
        leash = frame.leash
        if leash is None:
            if self.config.require_leash:
                self.rejected_missing += 1
                self.trace.emit(
                    self.sim.now, "leash_rejected", node=self.node.node_id,
                    reason="missing", **frame.describe(),
                )
                return False
            return True
        if not Authenticator.verify(
            self.leash_key, leash.auth, "leash", leash.sender,
            leash.position[0], leash.position[1], leash.sent_at,
        ):
            self.rejected_auth += 1
            self.trace.emit(
                self.sim.now, "leash_rejected", node=self.node.node_id,
                reason="auth", **frame.describe(),
            )
            return False
        if leash.sender != frame.transmitter:
            # The leash must authenticate the claimed link-layer sender —
            # otherwise a relay could re-leash someone else's frame.
            self.rejected_auth += 1
            self.trace.emit(
                self.sim.now, "leash_rejected", node=self.node.node_id,
                reason="spoof", **frame.describe(),
            )
            return False
        if self.config.kind == "geographic":
            return self._verify_geographic(frame, leash)
        return self._verify_temporal(frame, leash)

    def _verify_geographic(self, frame: Frame, leash: Leash) -> bool:
        my_position = self.radio.position(self.node.node_id)
        elapsed = max(0.0, self.sim.now - leash.sent_at)
        slack = self.config.speed_bound * (elapsed + 2 * self.config.clock_error)
        bound = self.config.comm_range + slack
        if distance(leash.position, my_position) > bound:
            self.rejected_distance += 1
            self.trace.emit(
                self.sim.now, "leash_rejected", node=self.node.node_id,
                reason="distance", **frame.describe(),
            )
            return False
        self.accepted += 1
        return True

    def _verify_temporal(self, frame: Frame, leash: Leash) -> bool:
        # The frame was on the air for its duration; any age beyond that
        # plus the processing budget means it was stored and replayed.
        duration = frame.size_bytes * 8.0 / self.config.bandwidth_bps
        age = self.sim.now - leash.sent_at - duration
        if age > self.config.processing_budget + 2 * self.config.clock_error:
            self.rejected_age += 1
            self.trace.emit(
                self.sim.now, "leash_rejected", node=self.node.node_id,
                reason="age", **frame.describe(),
            )
            return False
        self.accepted += 1
        return True
