"""Live progress counters for long-running campaign batches.

A :class:`CampaignProgress` is a tiny mutable counter block the
:class:`~repro.experiments.campaign.CampaignRunner` updates as jobs
finish — split by *source* (freshly executed, served from the result
cache, or skipped via the resume journal) plus retry/failure tallies.
Attach a ``printer`` callable (the CLI passes a stderr writer) to get one
rendered line per event; leave it ``None`` for silent counting (tests,
library use).

The counters deliberately live in :mod:`repro.obs` next to the span
profiler and per-node counter snapshots: they are observability state,
not campaign logic, and report tooling can consume them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

#: Where a finished job's report came from.
JOB_SOURCES = ("run", "cache", "journal")


@dataclass
class CampaignProgress:
    """Counters (and optional line printer) for one campaign run."""

    printer: Optional[Callable[[str], None]] = None
    name: str = ""
    total: int = 0
    executed: int = 0
    from_cache: int = 0
    from_journal: int = 0
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    dead_lettered: int = 0
    interrupted: str = ""
    _by_source: Dict[str, int] = field(default_factory=dict, repr=False)

    def start(self, total: int, name: str = "") -> None:
        """Reset for a campaign of ``total`` jobs."""
        self.total = total
        if name:
            self.name = name
        self.executed = self.from_cache = self.from_journal = 0
        self.retries = self.failures = 0
        self.timeouts = self.dead_lettered = 0
        self.interrupted = ""
        self._by_source = {source: 0 for source in JOB_SOURCES}
        self._emit(f"{self.done}/{self.total} jobs")

    @property
    def done(self) -> int:
        """Jobs with a report, regardless of source."""
        return self.executed + self.from_cache + self.from_journal

    def job_done(self, source: str) -> None:
        """Record one finished job from ``source`` (run/cache/journal)."""
        if source == "run":
            self.executed += 1
        elif source == "cache":
            self.from_cache += 1
        elif source == "journal":
            self.from_journal += 1
        else:
            raise ValueError(f"unknown job source {source!r}")
        self._by_source[source] = self._by_source.get(source, 0) + 1
        self._emit(f"{self.done}/{self.total} jobs ({source})")

    def retry(self, count: int) -> None:
        """Record ``count`` jobs being re-dispatched after failure."""
        self.retries += count
        self._emit(f"retrying {count} failed job(s)")

    def failure(self, count: int) -> None:
        """Record ``count`` jobs exhausting their retry budget."""
        self.failures += count
        self._emit(f"{count} job(s) failed permanently")

    def timeout(self, count: int) -> None:
        """Record ``count`` jobs preempted past the wall-clock timeout."""
        self.timeouts += count
        self._emit(f"{count} job(s) timed out; worker(s) preempted")

    def dead_letter(self, count: int) -> None:
        """Record ``count`` poison jobs quarantined to the journal."""
        self.dead_lettered += count
        self.failures += count
        self._emit(f"{count} poison job(s) dead-lettered to the journal")

    def interrupt(self, reason: str) -> None:
        """Record a graceful stop (``signal``/``max_jobs``/``torn_write``)."""
        self.interrupted = reason
        self._emit(f"interrupted ({reason}) after {self.done}/{self.total} jobs")

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict counter state (JSON-ready)."""
        return {
            "total": self.total,
            "done": self.done,
            "executed": self.executed,
            "from_cache": self.from_cache,
            "from_journal": self.from_journal,
            "retries": self.retries,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "dead_lettered": self.dead_lettered,
        }

    def render(self) -> str:
        """One-line human summary of the counters."""
        label = self.name or "campaign"
        line = (
            f"[{label}] {self.done}/{self.total} done "
            f"(run {self.executed}, cache {self.from_cache}, "
            f"journal {self.from_journal}); "
            f"{self.retries} retried, {self.failures} failed"
        )
        if self.timeouts:
            line += f", {self.timeouts} timed out"
        if self.dead_lettered:
            line += f", {self.dead_lettered} dead-lettered"
        if self.interrupted:
            line += f" [interrupted: {self.interrupted}]"
        return line

    def _emit(self, event: str) -> None:
        if self.printer is not None:
            label = self.name or "campaign"
            self.printer(f"[{label}] {event}")


__all__ = ["JOB_SOURCES", "CampaignProgress"]
