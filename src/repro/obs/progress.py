"""Live progress counters for long-running campaign batches.

A :class:`CampaignProgress` is a tiny mutable counter block the
:class:`~repro.experiments.campaign.CampaignRunner` updates as jobs
finish — split by *source* (freshly executed, served from the result
cache, or skipped via the resume journal) plus retry/failure tallies.
Attach a ``printer`` callable (the CLI passes a stderr writer) to get one
rendered line per event; leave it ``None`` for silent counting (tests,
library use).

The counters deliberately live in :mod:`repro.obs` next to the span
profiler and per-node counter snapshots: they are observability state,
not campaign logic, and report tooling can consume them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

#: Where a finished job's report came from.
JOB_SOURCES = ("run", "cache", "journal")


@dataclass
class CampaignProgress:
    """Counters (and optional line printer) for one campaign run."""

    printer: Optional[Callable[[str], None]] = None
    name: str = ""
    total: int = 0
    executed: int = 0
    from_cache: int = 0
    from_journal: int = 0
    retries: int = 0
    failures: int = 0
    _by_source: Dict[str, int] = field(default_factory=dict, repr=False)

    def start(self, total: int, name: str = "") -> None:
        """Reset for a campaign of ``total`` jobs."""
        self.total = total
        if name:
            self.name = name
        self.executed = self.from_cache = self.from_journal = 0
        self.retries = self.failures = 0
        self._by_source = {source: 0 for source in JOB_SOURCES}
        self._emit(f"{self.done}/{self.total} jobs")

    @property
    def done(self) -> int:
        """Jobs with a report, regardless of source."""
        return self.executed + self.from_cache + self.from_journal

    def job_done(self, source: str) -> None:
        """Record one finished job from ``source`` (run/cache/journal)."""
        if source == "run":
            self.executed += 1
        elif source == "cache":
            self.from_cache += 1
        elif source == "journal":
            self.from_journal += 1
        else:
            raise ValueError(f"unknown job source {source!r}")
        self._by_source[source] = self._by_source.get(source, 0) + 1
        self._emit(f"{self.done}/{self.total} jobs ({source})")

    def retry(self, count: int) -> None:
        """Record ``count`` jobs being re-dispatched after failure."""
        self.retries += count
        self._emit(f"retrying {count} failed job(s)")

    def failure(self, count: int) -> None:
        """Record ``count`` jobs exhausting their retry budget."""
        self.failures += count
        self._emit(f"{count} job(s) failed permanently")

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict counter state (JSON-ready)."""
        return {
            "total": self.total,
            "done": self.done,
            "executed": self.executed,
            "from_cache": self.from_cache,
            "from_journal": self.from_journal,
            "retries": self.retries,
            "failures": self.failures,
        }

    def render(self) -> str:
        """One-line human summary of the counters."""
        label = self.name or "campaign"
        return (
            f"[{label}] {self.done}/{self.total} done "
            f"(run {self.executed}, cache {self.from_cache}, "
            f"journal {self.from_journal}); "
            f"{self.retries} retried, {self.failures} failed"
        )

    def _emit(self, event: str) -> None:
        if self.printer is not None:
            label = self.name or "campaign"
            self.printer(f"[{label}] {event}")


__all__ = ["JOB_SOURCES", "CampaignProgress"]
