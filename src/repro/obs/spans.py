"""Nested wall-clock span profiling for the experiment harness.

The trace log records *simulated* time; this module records where the
harness spends *wall-clock* time — scenario assembly, the event loop,
metrics collection, cache lookups and stores, sweep fan-out.  A
:class:`SpanProfiler` is a tree of named spans: entering a span under an
already-open span nests it, and re-entering the same name accumulates
into one node (count + total seconds), so a 90-replication sweep produces
a handful of aggregate rows rather than 90 samples.

Instrumentation sites call the module-level :func:`span` helper, which is
a zero-cost no-op unless a profiler has been installed with
:func:`activate`::

    profiler = SpanProfiler()
    with activate(profiler):
        run_fig8(...)
    print(profiler.format())

``repro bench`` activates a profiler around the sweep benchmark and
merges ``profiler.flat()`` into ``BENCH_sweep.json``, so the perf
trajectory records how harness overhead (cache, fan-out, metrics)
evolves alongside the simulator itself.

The profiler is deliberately not thread-safe: the harness is
single-threaded per process, and worker processes in a sweep simply see
no active profiler (their spans are absorbed into the parent's
``sweep.fanout`` wall clock).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple


@dataclass
class SpanNode:
    """One named span: accumulated wall clock, entry count, children."""

    name: str
    count: int = 0
    seconds: float = 0.0
    children: Dict[str, "SpanNode"] = field(default_factory=dict)

    def child(self, name: str) -> "SpanNode":
        """The child span named ``name``, created on first use."""
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready nested rendering (children keyed by name)."""
        payload: Dict[str, object] = {"count": self.count, "seconds": self.seconds}
        if self.children:
            payload["children"] = {
                name: child.to_dict() for name, child in sorted(self.children.items())
            }
        return payload


class SpanProfiler:
    """Collects a tree of nested wall-clock spans.

    Parameters
    ----------
    clock:
        Monotonic time source (seconds); tests inject a fake clock to get
        deterministic durations.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.root = SpanNode("")
        self._stack: List[SpanNode] = [self.root]

    @contextmanager
    def span(self, name: str) -> Iterator[SpanNode]:
        """Open a span named ``name`` nested under the innermost open span."""
        node = self._stack[-1].child(name)
        self._stack.append(node)
        started = self._clock()
        try:
            yield node
        finally:
            node.seconds += self._clock() - started
            node.count += 1
            self._stack.pop()

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack) - 1

    def to_dict(self) -> Dict[str, object]:
        """The whole tree as nested JSON-ready dicts, keyed by span name."""
        return {
            name: child.to_dict() for name, child in sorted(self.root.children.items())
        }

    def flat(self) -> Dict[str, Dict[str, object]]:
        """``"a/b/c" -> {count, seconds}`` rows for every span path."""
        rows: Dict[str, Dict[str, object]] = {}

        def walk(node: SpanNode, prefix: str) -> None:
            for name, child in sorted(node.children.items()):
                path = f"{prefix}/{name}" if prefix else name
                rows[path] = {"count": child.count, "seconds": child.seconds}
                walk(child, path)

        walk(self.root, "")
        return rows

    def format(self) -> str:
        """Human-readable indented table, one line per span path."""
        lines = []
        for path, row in self.flat().items():
            depth = path.count("/")
            name = path.rsplit("/", 1)[-1]
            lines.append(
                f"{'  ' * depth}{name:<{30 - 2 * depth}s} "
                f"{row['seconds']:9.4f} s  x{row['count']}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Module-level activation (the zero-cost default)
# ----------------------------------------------------------------------
_ACTIVE: Optional[SpanProfiler] = None


def active_profiler() -> Optional[SpanProfiler]:
    """The currently installed profiler, or None."""
    return _ACTIVE


@contextmanager
def activate(profiler: SpanProfiler) -> Iterator[SpanProfiler]:
    """Install ``profiler`` as the target of :func:`span` for the block.

    Nesting restores the previously active profiler on exit, so test
    suites can activate without trampling each other.
    """
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, profiler
    try:
        yield profiler
    finally:
        _ACTIVE = previous


@contextmanager
def span(name: str) -> Iterator[Optional[SpanNode]]:
    """Record a span on the active profiler; a no-op when none is active.

    This is what harness code calls — instrumentation stays in place
    permanently and costs one global read when profiling is off.
    """
    profiler = _ACTIVE
    if profiler is None:
        yield None
        return
    with profiler.span(name) as node:
        yield node


def merge_flat(
    target: Dict[str, Dict[str, object]], extra: Dict[str, Dict[str, object]]
) -> Dict[str, Dict[str, object]]:
    """Accumulate one ``flat()`` mapping into another (count/seconds sum)."""
    for path, row in extra.items():
        existing = target.get(path)
        if existing is None:
            target[path] = {"count": row["count"], "seconds": row["seconds"]}
        else:
            existing["count"] = int(existing["count"]) + int(row["count"])  # type: ignore[arg-type]
            existing["seconds"] = float(existing["seconds"]) + float(row["seconds"])  # type: ignore[arg-type]
    return target


__all__: Tuple[str, ...] = (
    "SpanNode",
    "SpanProfiler",
    "activate",
    "active_profiler",
    "merge_flat",
    "span",
)
