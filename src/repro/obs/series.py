"""Event-driven time-series over the trace pipeline.

Figures and dashboards want *how protocol state evolved over simulated
time*, not just end-of-run totals.  :class:`SeriesRecorder` subscribes to
the relevant trace kinds (live, or replayed from a JSONL export — both
paths produce identical series) and maintains step-function series:

- ``watch_buffer`` — total watch-buffer occupancy across all guards
  (from the monitor's sampled ``watch_buffer`` gauge records);
- ``malc_total`` — cumulative MalC raised across all accused nodes, plus
  a per-node breakdown ``malc[<node>]`` for every accused node;
- ``alerts_in_flight`` — alerts sent but not yet acked or abandoned;
- ``revoked_neighbors`` — total distinct (revoker, accused) pairs, plus
  per-accused ``revoked[<node>]`` — with an optional neighborhood-size
  map this becomes the fraction of the attacker's neighborhood revoked;
- ``wormhole_drops`` — cumulative data packets swallowed by attackers.

Series are event-timed; :meth:`Series.resample` projects one onto a
fixed-step grid (sample-and-hold) and :func:`aggregate_bands` collapses
the same series across replications into mean/min/max bands.  Export via
:func:`series_to_csv` / :func:`series_to_json`.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.sim.trace import TraceLog, TraceRecord


@dataclass
class Series:
    """A named step function: (time, value) points in emission order.

    Between points the series holds its last value (sample-and-hold);
    before the first point it is ``initial`` (0 for every recorder
    series).
    """

    name: str
    initial: float = 0.0
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        """Append one point; same-time updates overwrite (last write wins)."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"series {self.name!r}: non-monotonic time {time} after {self.times[-1]}"
            )
        if self.times and self.times[-1] == time:
            self.values[-1] = value
        else:
            self.times.append(time)
            self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def final(self) -> float:
        """The last recorded value (``initial`` when empty)."""
        return self.values[-1] if self.values else self.initial

    def value_at(self, time: float) -> float:
        """The step-function value at ``time`` (last point at or before)."""
        index = bisect.bisect_right(self.times, time)
        if index == 0:
            return self.initial
        return self.values[index - 1]

    def resample(self, times: Sequence[float]) -> List[float]:
        """Sample-and-hold projection onto an arbitrary time grid."""
        return [self.value_at(t) for t in times]

    def points(self) -> List[Tuple[float, float]]:
        """The raw event-timed points as (time, value) tuples."""
        return list(zip(self.times, self.values))


def regular_times(t_max: float, step: float) -> List[float]:
    """The fixed-step grid ``step, 2*step, … ≥ t_max`` (last point covers
    the horizon).  Deterministic for identical inputs."""
    if step <= 0:
        raise ValueError(f"step must be positive, got {step!r}")
    if t_max <= 0:
        return [step]
    count = int(t_max / step)
    times = [step * (i + 1) for i in range(count)]
    if not times or times[-1] < t_max:
        times.append(step * (count + 1))
    return times


class SeriesRecorder:
    """Builds the standard protocol series from a record stream.

    Parameters
    ----------
    neighborhoods:
        Optional ground truth ``{node: honest-neighborhood size}``.  When
        a size is known for an accused node, its ``revoked[<node>]``
        series records the *fraction* of that neighborhood revoked
        instead of the raw distinct-revoker count.  (The report pipeline
        omits this so live and replayed reports stay byte-identical.)
    """

    KINDS: Tuple[str, ...] = (
        "watch_buffer",
        "malc_increment",
        "alert_sent",
        "alert_ack_verified",
        "alert_abandoned",
        "guard_detection",
        "isolation",
        "malicious_drop",
    )

    #: Series every run produces (per-node breakdowns appear lazily).
    GLOBAL_SERIES: Tuple[str, ...] = (
        "watch_buffer",
        "malc_total",
        "alerts_in_flight",
        "revoked_neighbors",
        "wormhole_drops",
    )

    def __init__(self, neighborhoods: Optional[Mapping[Any, int]] = None) -> None:
        self.neighborhoods = dict(neighborhoods) if neighborhoods else {}
        self._series: Dict[str, Series] = {
            name: Series(name) for name in self.GLOBAL_SERIES
        }
        self._watch_sizes: Dict[Any, int] = {}  # guard -> last sampled size
        self._malc_cum: Dict[Any, int] = {}  # accused -> cumulative value
        self._malc_sum = 0
        self._alerts_open: Set[Tuple[Any, Any, Any]] = set()
        self._revoked_pairs: Dict[Any, Set[Any]] = {}  # accused -> revokers
        self._drops = 0

    def attach(self, trace: TraceLog) -> None:
        """Subscribe to every relevant kind on a live trace log."""
        for kind in self.KINDS:
            trace.subscribe(kind, self.process)

    def _get(self, name: str) -> Series:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = Series(name)
        return series

    # ------------------------------------------------------------------
    # Record dispatch
    # ------------------------------------------------------------------
    def process(self, record: TraceRecord) -> None:
        """Feed one record (in emission order)."""
        kind = record.kind
        time = record.time
        if kind == "watch_buffer":
            guard = record["guard"]
            size = record["size"]
            self._watch_sizes[guard] = size
            self._get("watch_buffer").add(time, sum(self._watch_sizes.values()))
        elif kind == "malc_increment":
            accused = record["accused"]
            value = record["value"]
            total = self._malc_cum.get(accused, 0) + value
            self._malc_cum[accused] = total
            self._malc_sum += value
            self._get(f"malc[{accused}]").add(time, total)
            self._get("malc_total").add(time, self._malc_sum)
        elif kind == "alert_sent":
            self._alerts_open.add(
                (record["guard"], record["accused"], record["recipient"])
            )
            self._get("alerts_in_flight").add(time, len(self._alerts_open))
        elif kind in ("alert_ack_verified", "alert_abandoned"):
            self._alerts_open.discard(
                (record["guard"], record["accused"], record["recipient"])
            )
            self._get("alerts_in_flight").add(time, len(self._alerts_open))
        elif kind in ("guard_detection", "isolation"):
            accused = record["accused"]
            revoker = record["guard"] if kind == "guard_detection" else record["node"]
            revokers = self._revoked_pairs.setdefault(accused, set())
            if revoker in revokers:
                return
            revokers.add(revoker)
            count = len(revokers)
            size = self.neighborhoods.get(accused)
            self._get(f"revoked[{accused}]").add(
                time, count / size if size else count
            )
            self._get("revoked_neighbors").add(
                time, sum(len(s) for s in self._revoked_pairs.values())
            )
        elif kind == "malicious_drop":
            self._drops += 1
            self._get("wormhole_drops").add(time, self._drops)

    # ------------------------------------------------------------------
    # Retrieval / export
    # ------------------------------------------------------------------
    def series(self) -> Dict[str, Series]:
        """All recorded series, keyed by name (sorted for determinism)."""
        return {name: self._series[name] for name in sorted(self._series)}

    def get(self, name: str) -> Optional[Series]:
        """One series by name, or None if never touched."""
        return self._series.get(name)


def aggregate_bands(
    series_list: Sequence[Series], times: Sequence[float]
) -> Dict[str, List[float]]:
    """Resample each replication's series onto ``times`` and collapse to
    mean/min/max bands — the cross-replication envelope a figure plots."""
    if not series_list:
        raise ValueError("aggregate_bands needs at least one series")
    stacked = [series.resample(times) for series in series_list]
    count = len(stacked)
    mean: List[float] = []
    low: List[float] = []
    high: List[float] = []
    for column in zip(*stacked):
        mean.append(sum(column) / count)
        low.append(min(column))
        high.append(max(column))
    return {"mean": mean, "min": low, "max": high}


def series_to_csv(
    series_map: Mapping[str, Series], times: Sequence[float]
) -> str:
    """All series resampled onto one grid, as a CSV string (header row
    ``time,<name>,…`` in sorted-name order)."""
    names = sorted(series_map)
    columns = [series_map[name].resample(times) for name in names]
    lines = [",".join(["time", *names])]
    for index, time in enumerate(times):
        row = [repr(float(time))] + [repr(float(columns[i][index])) for i in range(len(names))]
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def series_to_json(
    series_map: Mapping[str, Series], times: Sequence[float]
) -> str:
    """All series resampled onto one grid, as deterministic JSON."""
    payload = {
        "times": [float(t) for t in times],
        "series": {
            name: [float(v) for v in series.resample(times)]
            for name, series in sorted(series_map.items())
        },
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
