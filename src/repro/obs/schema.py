"""Trace-schema registry: the declared field set of every emitted kind.

``TraceLog.emit(time, kind, **fields)`` is stringly-typed by design — it
keeps protocol code free of ceremony — but the flip side is that a typo'd
kind or field name produces silently-empty queries instead of an error.
The registry closes that hole: every kind the simulator emits is declared
here with its required and optional fields, and :func:`install_strict`
turns the declaration into a per-emit check that raises
:class:`TraceSchemaError` on any unknown kind, missing required field, or
undeclared field.

The registry is also the documentation of record for the trace format
(docs/PROTOCOL.md renders it as a table) and what ``repro trace check``
validates exported JSONL files against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.sim.trace import TraceLog, TraceRecord


class TraceSchemaError(ValueError):
    """An emitted record does not match its declared schema."""


#: Fields contributed by ``Frame.describe()`` — several kinds splat it.
FRAME_FIELDS: Tuple[str, ...] = ("packet", "tx", "dst", "prev")


@dataclass(frozen=True)
class TraceSchema:
    """Declared shape of one trace kind."""

    kind: str
    required: FrozenSet[str]
    optional: FrozenSet[str] = field(default_factory=frozenset)
    description: str = ""

    def errors(self, record: TraceRecord) -> List[str]:
        """Human-readable mismatches between ``record`` and this schema."""
        problems = []
        present = set(record.fields)
        missing = self.required - present
        if missing:
            problems.append(
                f"{self.kind}: missing required field(s) {sorted(missing)}"
            )
        unknown = present - self.required - self.optional
        if unknown:
            problems.append(
                f"{self.kind}: undeclared field(s) {sorted(unknown)} "
                f"(declared: {sorted(self.required | self.optional)})"
            )
        return problems


class SchemaRegistry:
    """Mapping of trace kind -> :class:`TraceSchema` with validation."""

    def __init__(self, schemas: Iterable[TraceSchema] = ()) -> None:
        self._schemas: Dict[str, TraceSchema] = {}
        for schema in schemas:
            self.register(schema)

    def register(self, schema: TraceSchema) -> TraceSchema:
        """Add (or replace) the schema for one kind."""
        self._schemas[schema.kind] = schema
        return schema

    def declare(
        self,
        kind: str,
        required: Iterable[str] = (),
        optional: Iterable[str] = (),
        description: str = "",
    ) -> TraceSchema:
        """Convenience: build and register a schema in one call."""
        return self.register(
            TraceSchema(
                kind=kind,
                required=frozenset(required),
                optional=frozenset(optional),
                description=description,
            )
        )

    def get(self, kind: str) -> Optional[TraceSchema]:
        """The schema for ``kind``, or None if undeclared."""
        return self._schemas.get(kind)

    def kinds(self) -> List[str]:
        """All declared kinds, sorted."""
        return sorted(self._schemas)

    def __len__(self) -> int:
        return len(self._schemas)

    def __iter__(self) -> Iterator[TraceSchema]:
        return iter(self._schemas.values())

    def __contains__(self, kind: str) -> bool:
        return kind in self._schemas

    def errors(self, record: TraceRecord) -> List[str]:
        """Schema mismatches for ``record`` (empty when valid)."""
        schema = self._schemas.get(record.kind)
        if schema is None:
            return [f"unknown trace kind {record.kind!r}"]
        return schema.errors(record)

    def validate(self, record: TraceRecord) -> None:
        """Raise :class:`TraceSchemaError` if ``record`` is malformed."""
        problems = self.errors(record)
        if problems:
            raise TraceSchemaError("; ".join(problems))

    def markdown_table(self) -> str:
        """The registry rendered as a GitHub-flavored markdown table
        (docs/PROTOCOL.md embeds this)."""
        lines = [
            "| kind | required fields | optional fields | meaning |",
            "|---|---|---|---|",
        ]
        for kind in self.kinds():
            schema = self._schemas[kind]
            req = ", ".join(sorted(schema.required)) or "—"
            opt = ", ".join(sorted(schema.optional)) or "—"
            lines.append(f"| `{kind}` | {req} | {opt} | {schema.description} |")
        return "\n".join(lines)


def install_strict(trace: TraceLog, registry: Optional[SchemaRegistry] = None) -> None:
    """Turn on strict emission for ``trace``: every ``emit`` is validated
    against ``registry`` (default: :data:`DEFAULT_REGISTRY`) and raises
    :class:`TraceSchemaError` on mismatch."""
    target = registry if registry is not None else DEFAULT_REGISTRY
    trace.set_validator(target.validate)


def _build_default_registry() -> SchemaRegistry:
    r = SchemaRegistry()
    frame = FRAME_FIELDS
    # -- link layer ----------------------------------------------------
    r.declare("mac_drop", ["node", *frame],
              description="CSMA gave up after the backoff budget")
    r.declare("arq_failure", ["node", *frame],
              description="link-layer ARQ exhausted its retries")
    r.declare("rx_lost", ["receiver", "collided", *frame],
              description="a reception was garbled (collision or loss)")
    # -- routing -------------------------------------------------------
    r.declare("route_request_sent", ["origin", "target", "request_id", "attempt"],
              description="origin flooded a route request")
    r.declare("route_established",
              ["origin", "target", "request_id", "hop_count", "path", "next_hop"],
              description="origin installed a route from a reply")
    r.declare("data_origin", ["packet", "origin", "destination"],
              description="a data packet entered the network")
    r.declare("data_delivered", ["packet", "origin", "destination"],
              description="a data packet reached its destination")
    r.declare("data_no_route", ["packet", "node"],
              description="no (usable) route at a hop; packet stalled")
    r.declare("data_blocked", ["packet", "node", "next_hop"],
              description="next hop unusable (revoked/dead); not forwarded")
    r.declare("data_discovery_failed", ["packet", "reason"],
              description="route discovery abandoned for a queued packet")
    r.declare("rep_stranded", ["node", "packet"],
              description="a route reply had no reverse-path entry")
    r.declare("beacon_emitted", ["sink", "epoch"],
              description="the sink started a beacon-tree epoch")
    r.declare("beacon_parent", ["node", "epoch", "parent", "depth"],
              description="a node (re)selected its tree parent")
    # -- clustering / aggregation --------------------------------------
    r.declare("cluster_head", ["head"],
              description="a node elected itself cluster head")
    r.declare("cluster_join", ["node", "head", "heard_from"],
              description="a node joined a cluster head")
    r.declare("aggregate_stranded", ["node", "epoch"],
              description="an aggregator had no parent to climb")
    r.declare("aggregate_result", ["sink", "epoch", "value", "count", "aggregate"],
              description="the sink produced an epoch aggregate")
    # -- attack ground truth -------------------------------------------
    r.declare("attack_activated", ["colluders"],
              description="the wormhole coordinator switched on")
    r.declare("wormhole_activity", ["node"],
              description="a colluder touched traffic (ground truth)")
    r.declare("malicious_drop", ["node", "packet"],
              description="a malicious node swallowed a data packet")
    r.declare("wormhole_rep_stranded", ["node", "origin", "request_id"],
              description="a tunneled reply could not be planted")
    # -- LITEWORP: discovery, monitoring, isolation --------------------
    r.declare("nd_complete", ["node", "neighbors", "second_hop_lists"],
              description="secure neighbor discovery finished")
    r.declare("nd_reply_rejected", ["node", "responder"],
              description="HELLO reply failed authentication")
    r.declare("nd_list_rejected", ["node", "sender"],
              description="neighbor-list broadcast failed authentication")
    r.declare("watch_buffer", ["guard", "size", "peak"],
              description="sampled watch-buffer occupancy gauge (1 Hz/guard)")
    r.declare("malc_increment", ["guard", "accused", "value", "reason", "packet", "total"],
              description="a guard raised MalC for fabrication/drop")
    r.declare("malc_suspended", ["guard", "accused", "reason"],
              description="accusation withheld: accused believed dead")
    r.declare("guard_detection", ["guard", "accused"],
              description="a guard's MalC crossed C_t; local revocation")
    r.declare("alert_sent", ["guard", "accused", "recipient"],
              description="guard dispatched an authenticated alert")
    r.declare("alert_undeliverable", ["guard", "accused", "recipient"],
              description="alert transmission could not be attempted")
    r.declare("alert_retransmit", ["guard", "accused", "recipient", "attempt"],
              description="unacked alert re-sent (bounded backoff)")
    r.declare("alert_abandoned", ["guard", "accused", "recipient", "attempts"],
              description="alert retry budget exhausted without ack")
    r.declare("alert_ack_verified", ["guard", "accused", "recipient"],
              description="guard verified a recipient's alert ack")
    r.declare("alert_accepted", ["node", "guard", "accused", "count"],
              description="recipient verified and counted an alert")
    r.declare("alert_rejected", ["node", "guard", "accused", "reason"],
              description="alert failed auth / neighbor / guard checks")
    r.declare("isolation", ["node", "accused", "alerts"],
              description="θ distinct guards reached: neighbor revoked")
    r.declare("frame_rejected", ["node", "reason", *frame],
              description="legitimacy filter discarded a frame")
    r.declare("send_blocked", ["node", "next_hop", *frame],
              description="refused to transmit to a revoked neighbor")
    # -- liveness ------------------------------------------------------
    r.declare("neighbor_suspect", ["node", "neighbor"],
              description="silence past the heartbeat timeout; probing")
    r.declare("neighbor_dead", ["node", "neighbor"],
              description="probe retries exhausted; declared DEAD")
    r.declare("neighbor_recovered", ["node", "neighbor"],
              description="a DEAD neighbor spoke again")
    # -- faults --------------------------------------------------------
    fault_fields = ["at", "node", "downtime", "a", "b", "probability",
                    "duration", "rate", "payload_size", "skew"]
    r.declare("fault_plan_armed", ["plan", "faults"],
              description="a fault plan was scheduled onto the run")
    r.declare("fault_injected", ["fault"], fault_fields,
              description="a planned fault fired")
    r.declare("fault_cleared", ["fault"], fault_fields,
              description="a fault's effect ended (recovery)")
    # -- harness / campaign --------------------------------------------
    r.declare("campaign_job", ["job", "digest", "source"],
              ["replication", "point"],
              description="campaign job completed (source: run/cache/journal); "
                          "time is wall-clock seconds since campaign start")
    r.declare("worker_timeout", ["job", "digest", "seconds"],
              description="a job ran past the supervision wall-clock "
                          "timeout; its worker was preempted")
    r.declare("campaign_retry", ["count", "wave"],
              description="failed jobs re-dispatched for another wave")
    r.declare("campaign_dead_letter", ["job", "digest", "error"],
              ["attempts"],
              description="a poison job exhausted its retry budget and "
                          "was quarantined to the journal")
    r.declare("campaign_interrupted", ["reason"], ["completed"],
              description="campaign stopped gracefully "
                          "(signal/max_jobs/torn_write)")
    r.declare("sink_degraded", ["sink", "error"],
              description="a trace sink hit an IO error and was detached; "
                          "records fall back to the in-memory ring buffer")
    # -- baselines / mobility ------------------------------------------
    r.declare("leash_rejected", ["node", "reason", *frame],
              description="packet-leash baseline discarded a frame")
    r.declare("rtt_link_flagged", ["node", "peer", "reason"],
              ["rtt", "baseline", "misses"],
              description="RTT detector flagged a link as wormhole-like")
    r.declare("snd_link_verified", ["node", "peer", "elapsed"],
              description="time-of-flight handshake verified a neighbor")
    r.declare("snd_link_rejected", ["node", "peer", "reason"], ["elapsed"],
              description="SND challenge late/unanswered/unverified link")
    r.declare("mobile_link_formed", ["a", "b"],
              description="mobility: authenticated link established")
    r.declare("mobile_link_broken", ["a", "b"],
              description="mobility: nodes moved out of range")
    r.declare("mobile_handshake_rejected", ["a", "b"],
              description="mobility: link handshake failed")
    r.declare("mobile_admission_refused", ["node", "revoked"],
              description="mobility: revoked node denied re-entry")
    return r


#: The registry covering every kind the simulator emits today.
DEFAULT_REGISTRY: SchemaRegistry = _build_default_registry()
