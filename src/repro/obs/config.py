"""Observability configuration carried by a scenario.

:class:`ObsConfig` is a frozen, picklable knob bundle that rides on
``ScenarioConfig.obs`` (and ``ChaosConfig.obs``) through ``replace()``
into every replication of a sweep, so one flag at the CLI turns on
streaming export / strict validation / bounded residency for an entire
figure run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ObsConfig:
    """Per-run observability switches.

    Attributes
    ----------
    trace_path:
        When set, every emitted record is streamed to this JSONL file
        (appended, tagged with the run's seed).  Runs with a trace path
        bypass result-cache *reads* so the export is always complete.
    strict:
        Validate every emit against the default schema registry and
        raise :class:`~repro.obs.schema.TraceSchemaError` on mismatch.
    ring_capacity:
        Bound the in-memory trace to this many resident records
        (ring-buffer mode).  ``None`` keeps the unbounded historical
        behaviour.
    """

    trace_path: Optional[str] = None
    strict: bool = False
    ring_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ring_capacity is not None and self.ring_capacity < 1:
            raise ValueError(
                f"ring_capacity must be positive or None, got {self.ring_capacity!r}"
            )
