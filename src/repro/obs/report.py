"""One-shot run reports over the trace pipeline.

``repro report`` renders a single markdown + JSON report — summary
metrics, per-node counter table, the causal detection-latency
decomposition, protocol time series, and the invariant-check verdict —
from either of the two trace transports:

- **live** — a :class:`ReportBuilder` attached as a sink to the run's
  :class:`~repro.sim.trace.TraceLog` while it executes;
- **offline** — the same builder fed a JSONL export through
  :func:`repro.obs.sinks.read_jsonl`.

Both paths MUST produce byte-identical JSON payloads for the same run
(the CLI test asserts this), which constrains the implementation in two
ways worth knowing about:

1. Replayed records carry a ``__run__`` tag that live records lack, so
   the builder strips it everywhere and labels runs by *first-seen
   order* (``run 0``, ``run 1``, …), never by tag value.
2. Only field values that survive JSON serialisation unchanged (node
   ids, counts, times) feed any computation — tuple-valued fields like
   packet keys come back as lists from a replay and are never touched.

Multi-run exports (a whole figure sweep streamed into one file) are
grouped per run: the latency decomposition and series are computed per
run and aggregated across runs, exactly like
:func:`repro.obs.invariants.check_export` does for violations.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Iterable, List, Optional, Tuple

from repro.obs.invariants import ATTACK, PROTOCOL, InvariantChecker
from repro.obs.latency import LatencyDecomposer, summarize_decompositions
from repro.obs.schema import DEFAULT_REGISTRY, SchemaRegistry
from repro.obs.series import SeriesRecorder, aggregate_bands, regular_times
from repro.sim.trace import TraceLog, TraceRecord

#: Trace kinds whose total counts form the report's summary block.
SUMMARY_KINDS: Tuple[Tuple[str, str], ...] = (
    ("originated", "data_origin"),
    ("delivered", "data_delivered"),
    ("wormhole_drops", "malicious_drop"),
    ("routes_established", "route_established"),
    ("detections", "guard_detection"),
    ("isolations", "isolation"),
    ("alerts_sent", "alert_sent"),
    ("alerts_accepted", "alert_accepted"),
)

#: (counter name, trace kind, field naming the node) for the node table.
NODE_COUNTER_SOURCES: Tuple[Tuple[str, str, str], ...] = (
    ("data_originated", "data_origin", "origin"),
    ("data_delivered", "data_delivered", "destination"),
    ("malicious_drops", "malicious_drop", "node"),
    ("malc_raised", "malc_increment", "guard"),
    ("malc_accrued", "malc_increment", "accused"),
    ("detections", "guard_detection", "guard"),
    ("alerts_sent", "alert_sent", "guard"),
    ("alerts_accepted", "alert_accepted", "node"),
    ("alerts_rejected", "alert_rejected", "node"),
    ("alert_retransmits", "alert_retransmit", "guard"),
    ("isolations", "isolation", "node"),
    ("frames_rejected", "frame_rejected", "node"),
)

#: How many grid points the report's series are resampled onto when no
#: explicit step is given.
DEFAULT_SERIES_POINTS = 50


class _RunState:
    """Per-run analysis pipelines (one trace run = one causal timeline)."""

    def __init__(self, theta: int) -> None:
        self.latency = LatencyDecomposer()
        self.series = SeriesRecorder()
        self.invariants = InvariantChecker(theta=theta)
        self.records = 0


class ReportBuilder:
    """Single-pass trace consumer that accumulates everything a run
    report needs.  Implements the sink protocol (``write``), so it can be
    attached to a live :class:`~repro.sim.trace.TraceLog` directly, and
    doubles as the replay consumer for JSONL exports."""

    def __init__(
        self,
        theta: int = 3,
        step: Optional[float] = None,
        registry: Optional[SchemaRegistry] = None,
    ) -> None:
        if theta < 1:
            raise ValueError(f"theta must be positive, got {theta!r}")
        if step is not None and step <= 0:
            raise ValueError(f"step must be positive, got {step!r}")
        self.theta = theta
        self.step = step
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.kinds: "Counter[str]" = Counter()
        self.records = 0
        self.time_min: Optional[float] = None
        self.time_max: Optional[float] = None
        self.schema_errors = 0
        self._runs: Dict[Any, _RunState] = {}
        self._run_order: List[Any] = []
        self._node_counters: Dict[Any, "Counter[str]"] = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def attach(self, trace: TraceLog) -> None:
        """Consume a live trace: every future emit flows through
        :meth:`process` (before ring-buffer eviction)."""
        trace.attach_sink(self)

    def write(self, record: TraceRecord) -> None:
        """Sink protocol entry point."""
        self.process(record)

    def process(self, record: TraceRecord) -> None:
        """Feed one record (in emission order)."""
        # Replayed records carry the export's run tag as a __run__ field;
        # live records don't.  Strip it so both paths see identical
        # records, and use it only for grouping (by first-seen order).
        run_tag = record.fields.get("__run__")
        if run_tag is not None:
            fields = {k: v for k, v in record.fields.items() if k != "__run__"}
            record = TraceRecord(time=record.time, kind=record.kind, fields=fields)
        state = self._runs.get(run_tag)
        if state is None:
            state = self._runs[run_tag] = _RunState(self.theta)
            self._run_order.append(run_tag)

        self.records += 1
        self.kinds[record.kind] += 1
        if self.time_min is None or record.time < self.time_min:
            self.time_min = record.time
        if self.time_max is None or record.time > self.time_max:
            self.time_max = record.time
        self.schema_errors += len(self.registry.errors(record))

        state.records += 1
        state.latency.process(record)
        state.series.process(record)
        state.invariants.process(record)
        self._count_node(record)

    def _count_node(self, record: TraceRecord) -> None:
        for counter, kind, field_name in NODE_COUNTER_SOURCES:
            if record.kind != kind:
                continue
            node = record.get(field_name)
            if node is None:
                continue
            bucket = self._node_counters.get(node)
            if bucket is None:
                bucket = self._node_counters[node] = Counter()
            bucket[counter] += 1

    # ------------------------------------------------------------------
    # Payload assembly
    # ------------------------------------------------------------------
    def _ordered_states(self) -> List[_RunState]:
        return [self._runs[tag] for tag in self._run_order]

    def _series_step(self) -> float:
        if self.step is not None:
            return self.step
        horizon = self.time_max if self.time_max else 0.0
        if horizon <= 0.0:
            return 1.0
        return horizon / DEFAULT_SERIES_POINTS

    def payload(self) -> Dict[str, Any]:
        """The complete JSON-ready report payload (deterministic)."""
        states = self._ordered_states()
        step = self._series_step()
        times = regular_times(self.time_max or 0.0, step)

        per_run_latency: List[Dict[str, Any]] = []
        for state in states:
            decomposition = state.latency.decomposition()
            per_run_latency.append(
                {str(node): decomposition[node].to_dict()
                 for node in sorted(decomposition, key=str)}
            )
        latency_summary = summarize_decompositions(
            state.latency.decomposition() for state in states
        )

        series_runs: List[Dict[str, List[float]]] = []
        for state in states:
            recorded = state.series.series()
            series_runs.append(
                {
                    name: [float(v) for v in recorded[name].resample(times)]
                    for name in SeriesRecorder.GLOBAL_SERIES
                    if name in recorded
                }
            )
        bands: Dict[str, Dict[str, List[float]]] = {}
        for name in SeriesRecorder.GLOBAL_SERIES:
            stack = [
                state.series.get(name)
                for state in states
                if state.series.get(name) is not None
            ]
            if stack:
                bands[name] = aggregate_bands(stack, times)  # type: ignore[arg-type]

        protocol_rules: "Counter[str]" = Counter()
        attack_rules: "Counter[str]" = Counter()
        for state in states:
            for violation in state.invariants.violations:
                if violation.category == PROTOCOL:
                    protocol_rules[violation.rule] += 1
                elif violation.category == ATTACK:
                    attack_rules[violation.rule] += 1
        protocol_total = sum(protocol_rules.values())
        attack_total = sum(attack_rules.values())

        return {
            "meta": {
                "records": self.records,
                "runs": len(states),
                "time_min": self.time_min,
                "time_max": self.time_max,
                "theta": self.theta,
                "kinds": dict(self.kinds),
            },
            "summary": {
                name: self.kinds.get(kind, 0) for name, kind in SUMMARY_KINDS
            },
            "latency": {
                "per_run": per_run_latency,
                "summary": latency_summary,
            },
            "series": {
                "step": step,
                "times": [float(t) for t in times],
                "runs": series_runs,
                "bands": bands,
            },
            "node_counters": {
                str(node): dict(sorted(self._node_counters[node].items()))
                for node in sorted(self._node_counters, key=str)
            },
            "invariants": {
                "schema_errors": self.schema_errors,
                "protocol_violations": protocol_total,
                "protocol_rules": dict(protocol_rules),
                "attack_observations": attack_total,
                "attack_rules": dict(attack_rules),
                "verdict": "fail" if (self.schema_errors or protocol_total) else "pass",
            },
        }

    def report(self) -> "RunReport":
        """Freeze the accumulated state into a :class:`RunReport`."""
        return RunReport(payload=self.payload())


@dataclass
class RunReport:
    """A finished report: one JSON payload plus renderers."""

    payload: Dict[str, Any]

    def to_json(self) -> str:
        """Deterministic JSON rendering (byte-identical for identical
        record streams, live or replayed)."""
        return json.dumps(self.payload, sort_keys=True, indent=2) + "\n"

    @property
    def complete_decompositions(self) -> int:
        """How many (run, node) decompositions reached every stage."""
        total = 0
        for run in self.payload["latency"]["per_run"]:
            for entry in run.values():
                if all(v is not None for v in entry["stages"].values()):
                    total += 1
        return total

    def to_markdown(self) -> str:
        """Human-oriented markdown rendering of the same payload."""
        p = self.payload
        meta, summary = p["meta"], p["summary"]
        lines = [
            "# Run report",
            "",
            f"{meta['records']} trace records across {meta['runs']} run(s), "
            f"simulated time {_fmt(meta['time_min'])} – {_fmt(meta['time_max'])} s "
            f"(θ={meta['theta']}).",
            "",
            "## Summary",
            "",
            "| metric | value |",
            "|---|---|",
        ]
        for name, _ in SUMMARY_KINDS:
            lines.append(f"| {name} | {summary[name]} |")
        lines += ["", "## Detection-latency decomposition", ""]
        if any(p["latency"]["per_run"]):
            lines += [
                "| run | node | attack start | first MalC | local revocation "
                "| quorum | full isolation | total (s) |",
                "|---|---|---|---|---|---|---|---|",
            ]
            for run_index, run in enumerate(p["latency"]["per_run"]):
                for node, entry in run.items():
                    stages = entry["stages"]
                    lines.append(
                        f"| {run_index} | {node} "
                        f"| {_fmt(stages['attack_start'])} "
                        f"| {_fmt(stages['first_malc'])} "
                        f"| {_fmt(stages['local_revocation'])} "
                        f"| {_fmt(stages['quorum'])} "
                        f"| {_fmt(stages['full_isolation'])} "
                        f"| {_fmt(entry['total'])} |"
                    )
            lines += ["", "Stage durations across runs (seconds):", "",
                      "| stage | count | mean | p50 | p90 | p99 |",
                      "|---|---|---|---|---|---|"]
            for stage, stats in p["latency"]["summary"].items():
                s = stats["summary"]
                lines.append(
                    f"| {stage} | {s['count']} | {_fmt(s['mean'])} "
                    f"| {_fmt(s['p50'])} | {_fmt(s['p90'])} | {_fmt(s['p99'])} |"
                )
        else:
            lines.append("No attack activity observed — nothing to decompose.")
        lines += ["", "## Time series (mean across runs)", ""]
        bands = p["series"]["bands"]
        times = p["series"]["times"]
        if bands and times:
            picks = _spread_indices(len(times), 6)
            header = "| series | " + " | ".join(
                f"t={_fmt(times[i])}" for i in picks
            ) + " | final |"
            lines += [header, "|---|" + "---|" * (len(picks) + 1)]
            for name in sorted(bands):
                mean = bands[name]["mean"]
                cells = " | ".join(_fmt(mean[i]) for i in picks)
                lines.append(f"| {name} | {cells} | {_fmt(mean[-1])} |")
        else:
            lines.append("No series data recorded.")
        lines += ["", "## Node counters", ""]
        counters = p["node_counters"]
        if counters:
            names = sorted({c for bucket in counters.values() for c in bucket})
            lines += [
                "| node | " + " | ".join(names) + " |",
                "|---|" + "---|" * len(names),
            ]
            for node, bucket in counters.items():
                cells = " | ".join(str(bucket.get(name, 0)) for name in names)
                lines.append(f"| {node} | {cells} |")
        else:
            lines.append("No per-node activity recorded.")
        inv = p["invariants"]
        lines += [
            "",
            "## Invariants",
            "",
            f"Verdict: **{inv['verdict']}** — {inv['schema_errors']} schema "
            f"error(s), {inv['protocol_violations']} protocol violation(s), "
            f"{inv['attack_observations']} attack observation(s).",
        ]
        for rule, count in sorted(inv["protocol_rules"].items()):
            lines.append(f"- protocol `{rule}`: {count}")
        for rule, count in sorted(inv["attack_rules"].items()):
            lines.append(f"- attack `{rule}`: {count}")
        return "\n".join(lines) + "\n"


@dataclass
class MatrixReport:
    """A finished defense × attack matrix: one JSON payload plus renderers.

    Produced by :func:`repro.experiments.matrix.aggregate_matrix` from the
    per-attack campaign journals; the payload is a pure function of the
    journaled reports, so an interrupted-and-resumed matrix renders
    byte-identical JSON to an uninterrupted one (the CI smoke job asserts
    this).
    """

    payload: Dict[str, Any]

    #: (section title, cell-metric key) pairs rendered as grids.
    GRID_METRICS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("Detection rate", "detection_rate"),
        ("Mean isolation latency (s)", "mean_isolation_latency"),
        ("Delivery fraction", "delivery_fraction"),
        ("Wormhole drop fraction", "wormhole_drop_fraction"),
    )

    def to_json(self) -> str:
        """Deterministic JSON rendering."""
        return json.dumps(self.payload, sort_keys=True, indent=2) + "\n"

    def cell(self, attack: str, defense: str) -> Optional[Dict[str, Any]]:
        """The metrics block for one (attack, defense) cell, or None."""
        for entry in self.payload["cells"]:
            if entry["attack"] == attack and entry["defense"] == defense:
                return entry["metrics"]
        return None

    def to_markdown(self) -> str:
        """Human-oriented markdown rendering: one grid per headline
        metric (defenses down, attacks across), then per-cell detail."""
        p = self.payload
        attacks: List[str] = list(p["attacks"])
        defenses: List[str] = list(p["defenses"])
        index = {
            (entry["attack"], entry["defense"]): entry["metrics"]
            for entry in p["cells"]
        }
        lines = [
            f"# Defense × attack matrix: {p['matrix']}",
            "",
            f"{p['runs']} replication(s) per cell over {len(defenses)} "
            f"defense(s) × {len(attacks)} attack mode(s).",
        ]
        for title, key in self.GRID_METRICS:
            lines += [
                "",
                f"## {title}",
                "",
                "| defense | " + " | ".join(attacks) + " |",
                "|---|" + "---|" * len(attacks),
            ]
            for defense in defenses:
                cells = " | ".join(
                    _fmt(index.get((attack, defense), {}).get(key))
                    for attack in attacks
                )
                lines.append(f"| {defense} | {cells} |")
        lines += [
            "",
            "## Per-cell detail",
            "",
            "| attack | defense | detections | isolations | false isolations "
            "| plugin metrics |",
            "|---|---|---|---|---|---|",
        ]
        for entry in p["cells"]:
            metrics = entry["metrics"]
            extras = ", ".join(
                f"{name}={_fmt(value)}"
                for name, value in sorted(metrics.get("contribution", {}).items())
            ) or "—"
            lines.append(
                f"| {entry['attack']} | {entry['defense']} "
                f"| {_fmt(metrics.get('detections'))} "
                f"| {_fmt(metrics.get('isolations'))} "
                f"| {_fmt(metrics.get('false_isolations'))} "
                f"| {extras} |"
            )
        return "\n".join(lines) + "\n"


def _fmt(value: Optional[float]) -> str:
    """Compact numeric cell (``—`` for absent values)."""
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _spread_indices(length: int, count: int) -> List[int]:
    """Up to ``count`` roughly evenly spaced indices into a sequence."""
    if length <= count:
        return list(range(length))
    return [round(i * (length - 1) / (count - 1)) for i in range(count)]


def build_report(
    records: Iterable[TraceRecord],
    theta: int = 3,
    step: Optional[float] = None,
) -> RunReport:
    """Replay ``records`` (e.g. from :func:`repro.obs.sinks.read_jsonl`)
    into a finished :class:`RunReport`."""
    builder = ReportBuilder(theta=theta, step=step)
    for record in records:
        builder.process(record)
    return builder.report()
