"""Observability subsystem: trace schemas, streaming sinks, invariant
checking, and per-node counter snapshots.

The trace log (:mod:`repro.sim.trace`) is the protocol's flight recorder;
this package is everything needed to make that trace *operable* at
production scale:

- :mod:`repro.obs.schema` — the registry declaring the field set of every
  emitted trace kind, with a strict mode that turns typos into errors.
- :mod:`repro.obs.sinks` — the streaming sink protocol (JSONL file sink,
  in-memory sink) that lets multi-minute runs export their full trace
  while the in-memory log stays bounded (ring mode).
- :mod:`repro.obs.invariants` — an online checker that subscribes to
  trace kinds and flags protocol violations as they happen.
- :mod:`repro.obs.counters` — per-node counter snapshots (MalC totals,
  watch-buffer peaks, alert send/accept/reject/retransmit counts)
  exported into :class:`~repro.metrics.collector.MetricsReport`.
- :mod:`repro.obs.config` — :class:`ObsConfig`, the frozen knob bundle a
  :class:`~repro.experiments.scenario.ScenarioConfig` carries to switch
  all of the above on for a run or a whole sweep.
- :mod:`repro.obs.latency` — the causal detection-latency decomposition
  (attack start → first MalC → local revocation → quorum → full
  isolation) with cross-replication p50/p90/p99 summaries.
- :mod:`repro.obs.series` — event-driven time series (watch-buffer
  occupancy, cumulative MalC, alerts in flight, revoked neighbors,
  wormhole drops) with fixed-step resampling and aggregation bands.
- :mod:`repro.obs.spans` — nested wall-clock span profiling of the
  experiment harness (build / run / collect / cache / fan-out).
- :mod:`repro.obs.report` — one markdown + JSON run report combining all
  of the above, identical from a live trace and a JSONL replay.

See docs/OBSERVABILITY.md for the walkthrough and CLI examples.
"""

from repro.obs.config import ObsConfig
from repro.obs.counters import snapshot_counters
from repro.obs.invariants import InvariantChecker, Violation
from repro.obs.latency import (
    LatencyDecomposer,
    StageLatency,
    summarize_decompositions,
)
from repro.obs.report import ReportBuilder, RunReport, build_report
from repro.obs.schema import (
    DEFAULT_REGISTRY,
    SchemaRegistry,
    TraceSchema,
    TraceSchemaError,
    install_strict,
)
from repro.obs.series import Series, SeriesRecorder, aggregate_bands
from repro.obs.sinks import JsonlSink, MemorySink, ReadStats, read_jsonl
from repro.obs.spans import SpanProfiler, activate, span

__all__ = [
    "DEFAULT_REGISTRY",
    "InvariantChecker",
    "JsonlSink",
    "LatencyDecomposer",
    "MemorySink",
    "ObsConfig",
    "ReadStats",
    "ReportBuilder",
    "RunReport",
    "SchemaRegistry",
    "Series",
    "SeriesRecorder",
    "SpanProfiler",
    "StageLatency",
    "TraceSchema",
    "TraceSchemaError",
    "Violation",
    "activate",
    "aggregate_bands",
    "build_report",
    "install_strict",
    "read_jsonl",
    "snapshot_counters",
    "span",
    "summarize_decompositions",
]
