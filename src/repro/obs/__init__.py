"""Observability subsystem: trace schemas, streaming sinks, invariant
checking, and per-node counter snapshots.

The trace log (:mod:`repro.sim.trace`) is the protocol's flight recorder;
this package is everything needed to make that trace *operable* at
production scale:

- :mod:`repro.obs.schema` — the registry declaring the field set of every
  emitted trace kind, with a strict mode that turns typos into errors.
- :mod:`repro.obs.sinks` — the streaming sink protocol (JSONL file sink,
  in-memory sink) that lets multi-minute runs export their full trace
  while the in-memory log stays bounded (ring mode).
- :mod:`repro.obs.invariants` — an online checker that subscribes to
  trace kinds and flags protocol violations as they happen.
- :mod:`repro.obs.counters` — per-node counter snapshots (MalC totals,
  watch-buffer peaks, alert send/accept/reject/retransmit counts)
  exported into :class:`~repro.metrics.collector.MetricsReport`.
- :mod:`repro.obs.config` — :class:`ObsConfig`, the frozen knob bundle a
  :class:`~repro.experiments.scenario.ScenarioConfig` carries to switch
  all of the above on for a run or a whole sweep.

See docs/OBSERVABILITY.md for the walkthrough and CLI examples.
"""

from repro.obs.config import ObsConfig
from repro.obs.counters import snapshot_counters
from repro.obs.invariants import InvariantChecker, Violation
from repro.obs.schema import (
    DEFAULT_REGISTRY,
    SchemaRegistry,
    TraceSchema,
    TraceSchemaError,
    install_strict,
)
from repro.obs.sinks import JsonlSink, MemorySink, read_jsonl

__all__ = [
    "DEFAULT_REGISTRY",
    "InvariantChecker",
    "JsonlSink",
    "MemorySink",
    "ObsConfig",
    "SchemaRegistry",
    "TraceSchema",
    "TraceSchemaError",
    "Violation",
    "install_strict",
    "read_jsonl",
    "snapshot_counters",
]
