"""Online protocol invariant checking.

The trace is not just a debugging aid — it encodes the protocol's causal
contract.  An ``isolation`` can only follow θ distinct ``alert_accepted``
events; a guard never raises MalC against a node it already revoked; an
``alert_ack_verified`` implies a matching ``alert_sent``.  The checker
subscribes to the relevant kinds (or replays an exported trace) and turns
each broken contract into a :class:`Violation`.

Violations come in two categories:

- ``protocol`` — the implementation broke its own rules.  These should
  never occur; CI fails on any.
- ``attack`` — ground-truth adversarial activity was observed
  (``malicious_drop``, ``wormhole_activity``).  Expected on wormhole
  scenarios, absent on attack-free runs — which is itself an invariant
  the acceptance tests lean on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Set, Tuple

from repro.sim.trace import TraceLog, TraceRecord

PROTOCOL = "protocol"
ATTACK = "attack"


@dataclass(frozen=True)
class Violation:
    """One broken invariant (or one piece of observed attack activity)."""

    rule: str
    category: str  # PROTOCOL or ATTACK
    time: float
    message: str
    details: Dict[str, Any] = field(default_factory=dict)


class InvariantChecker:
    """Stateful checker over a stream of trace records.

    Attach to a live :class:`~repro.sim.trace.TraceLog` with
    :meth:`attach` (violations accumulate as the simulation runs), or
    replay an export record-by-record through :meth:`process`.  One
    checker instance covers one run — state is causal, so records from
    different runs must not be interleaved (see :func:`check_export`).
    """

    #: Kinds the checker consumes; everything else is ignored.
    KINDS: Tuple[str, ...] = (
        "alert_sent",
        "alert_accepted",
        "alert_ack_verified",
        "alert_retransmit",
        "guard_detection",
        "isolation",
        "malc_increment",
        "malicious_drop",
        "wormhole_activity",
    )

    def __init__(self, theta: int = 3) -> None:
        if theta < 1:
            raise ValueError(f"theta must be positive, got {theta!r}")
        self.theta = theta
        self.violations: List[Violation] = []
        self.records_checked = 0
        # (node, accused) -> guards whose alerts the node accepted.
        self._accepted_guards: Dict[Tuple[Any, Any], Set[Any]] = {}
        # (guard, accused, recipient) triples with an alert_sent on record.
        self._alerts_sent: Set[Tuple[Any, Any, Any]] = set()
        # (observer, accused) pairs where the observer revoked the accused
        # (own guard_detection, or isolation via the alert quorum).
        self._revoked_views: Set[Tuple[Any, Any]] = set()
        # Attack evidence is deduplicated per (rule, node): one colluder
        # touches thousands of frames, one violation per colluder suffices.
        self._attack_seen: Set[Tuple[str, Any]] = set()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, trace: TraceLog) -> None:
        """Subscribe to every relevant kind on a live trace log."""
        for kind in self.KINDS:
            trace.subscribe(kind, self.process)

    @property
    def protocol_violations(self) -> List[Violation]:
        return [v for v in self.violations if v.category == PROTOCOL]

    @property
    def attack_violations(self) -> List[Violation]:
        return [v for v in self.violations if v.category == ATTACK]

    # ------------------------------------------------------------------
    # Record dispatch
    # ------------------------------------------------------------------
    def process(self, record: TraceRecord) -> None:
        """Feed one record through the checker (in emission order)."""
        handler = getattr(self, f"_on_{record.kind}", None)
        if handler is None:
            return
        self.records_checked += 1
        handler(record)

    def check_all(self, records: Iterable[TraceRecord]) -> List[Violation]:
        """Replay ``records`` (one run's worth) and return the violations."""
        for record in records:
            self.process(record)
        return self.violations

    def _flag(self, rule: str, category: str, record: TraceRecord, message: str) -> None:
        self.violations.append(
            Violation(
                rule=rule,
                category=category,
                time=record.time,
                message=message,
                details=dict(record.fields),
            )
        )

    # ------------------------------------------------------------------
    # Protocol rules
    # ------------------------------------------------------------------
    def _on_alert_sent(self, record: TraceRecord) -> None:
        self._alerts_sent.add(
            (record["guard"], record["accused"], record["recipient"])
        )

    def _on_alert_accepted(self, record: TraceRecord) -> None:
        pair = (record["node"], record["accused"])
        self._accepted_guards.setdefault(pair, set()).add(record["guard"])

    def _on_alert_ack_verified(self, record: TraceRecord) -> None:
        triple = (record["guard"], record["accused"], record["recipient"])
        if triple not in self._alerts_sent:
            self._flag(
                "ack_without_send", PROTOCOL, record,
                f"guard {record['guard']} verified an ack from "
                f"{record['recipient']} for accused {record['accused']} "
                "but never sent that alert",
            )

    def _on_alert_retransmit(self, record: TraceRecord) -> None:
        triple = (record["guard"], record["accused"], record["recipient"])
        if triple not in self._alerts_sent:
            self._flag(
                "retransmit_without_send", PROTOCOL, record,
                f"guard {record['guard']} retransmitted to "
                f"{record['recipient']} for accused {record['accused']} "
                "without an original alert_sent",
            )

    def _on_guard_detection(self, record: TraceRecord) -> None:
        self._revoked_views.add((record["guard"], record["accused"]))

    def _on_isolation(self, record: TraceRecord) -> None:
        node, accused = record["node"], record["accused"]
        guards = self._accepted_guards.get((node, accused), set())
        if len(guards) < self.theta:
            self._flag(
                "isolation_without_quorum", PROTOCOL, record,
                f"node {node} isolated {accused} after accepting alerts "
                f"from only {len(guards)} distinct guard(s); θ={self.theta}",
            )
        self._revoked_views.add((node, accused))

    def _on_malc_increment(self, record: TraceRecord) -> None:
        view = (record["guard"], record["accused"])
        if view in self._revoked_views:
            self._flag(
                "malc_after_revocation", PROTOCOL, record,
                f"guard {record['guard']} raised MalC against "
                f"{record['accused']} after already revoking it",
            )

    # ------------------------------------------------------------------
    # Attack evidence
    # ------------------------------------------------------------------
    def _attack(self, rule: str, record: TraceRecord, node: Any, message: str) -> None:
        dedup = (rule, node)
        if dedup in self._attack_seen:
            return
        self._attack_seen.add(dedup)
        self._flag(rule, ATTACK, record, message)

    def _on_malicious_drop(self, record: TraceRecord) -> None:
        node = record["node"]
        self._attack(
            "malicious_drop", record, node,
            f"node {node} maliciously dropped traffic",
        )

    def _on_wormhole_activity(self, record: TraceRecord) -> None:
        node = record["node"]
        self._attack(
            "wormhole_activity", record, node,
            f"wormhole colluder {node} relayed traffic",
        )


def check_export(
    records: Iterable[TraceRecord], theta: int = 3
) -> Tuple[List[Violation], int]:
    """Check an exported (possibly multi-run) trace.

    Records carry a ``__run__`` field when the export was written by a
    run-tagged :class:`~repro.obs.sinks.JsonlSink`; each distinct run gets
    its own checker so causal state never crosses runs.  Untagged records
    all land in one implicit run.  Returns ``(violations, runs_checked)``
    with each violation's ``details`` annotated with its run tag.
    """
    checkers: Dict[Any, InvariantChecker] = {}
    for record in records:
        run = record.fields.get("__run__")
        checker = checkers.get(run)
        if checker is None:
            checker = checkers[run] = InvariantChecker(theta=theta)
        checker.process(record)
    violations: List[Violation] = []
    for run, checker in checkers.items():
        for violation in checker.violations:
            if run is not None:
                violation = Violation(
                    rule=violation.rule,
                    category=violation.category,
                    time=violation.time,
                    message=violation.message,
                    details={**violation.details, "__run__": run},
                )
            violations.append(violation)
    violations.sort(key=lambda v: v.time)
    return violations, len(checkers)
