"""Causal detection-latency decomposition.

The paper's headline output is a single number — isolation latency, how
long an attacker survives between first misbehavior and network-wide
isolation.  This module splits that number into its causal stages, each
anchored to a trace kind the simulator already emits:

======================  ==========================================
stage timestamp         anchored to
======================  ==========================================
``attack_start``        first ``wormhole_activity`` / ``malicious_drop``
``first_malc``          first ``malc_increment`` against the node
``local_revocation``    first ``guard_detection`` (a guard's MalC ≥ C_t)
``quorum``              first ``isolation`` (θ distinct guards at a neighbor)
``full_isolation``      the last *new* revoker observed for the node
======================  ==========================================

and the durations between consecutive stages:

- ``observe`` — attack start → first MalC (how long misbehavior went
  unnoticed by every guard);
- ``accumulate`` — first MalC → local revocation (MalC climbing to C_t);
- ``disseminate`` — local revocation → first quorum (alert propagation
  until some neighbor collected θ distinct guards);
- ``spread`` — first quorum → full isolation (revocation news reaching
  the rest of the neighborhood).

``full_isolation`` here is the trace-level proxy — the moment the set of
distinct revokers stopped growing — which is computable identically from
a live subscription and from a JSONL replay.  The ground-truth variant
(every honest neighbor revoked, which needs the topology) lives on
:class:`~repro.metrics.collector.MetricsReport` as ``latency_stages``.

:class:`LatencyDecomposer` consumes records either live (``attach`` to a
:class:`~repro.sim.trace.TraceLog`) or offline (``process`` each record
from :func:`repro.obs.sinks.read_jsonl`); both paths produce identical
decompositions.  :func:`summarize` / :func:`histogram` aggregate stage
durations across replications into p50/p90/p99 summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.sim.trace import TraceLog, TraceRecord

#: Stage timestamps in causal order.
STAGES: Tuple[str, ...] = (
    "attack_start",
    "first_malc",
    "local_revocation",
    "quorum",
    "full_isolation",
)

#: (duration name, start stage, end stage) in causal order.
DURATIONS: Tuple[Tuple[str, str, str], ...] = (
    ("observe", "attack_start", "first_malc"),
    ("accumulate", "first_malc", "local_revocation"),
    ("disseminate", "local_revocation", "quorum"),
    ("spread", "quorum", "full_isolation"),
)


@dataclass
class StageLatency:
    """One malicious node's stage timestamps (simulated seconds).

    Any stage the run never reached stays ``None`` — e.g. a node whose
    MalC never crossed C_t has ``local_revocation`` and everything after
    it unset.
    """

    node: Any
    attack_start: Optional[float] = None
    first_malc: Optional[float] = None
    local_revocation: Optional[float] = None
    quorum: Optional[float] = None
    full_isolation: Optional[float] = None
    revokers: Set[Any] = field(default_factory=set)

    def stage(self, name: str) -> Optional[float]:
        """Timestamp of one named stage (None if never reached)."""
        if name not in STAGES:
            raise KeyError(f"unknown stage {name!r}; stages: {STAGES}")
        return getattr(self, name)

    def durations(self) -> Dict[str, Optional[float]]:
        """Seconds spent in each causal stage (None where unreached)."""
        out: Dict[str, Optional[float]] = {}
        for name, start, end in DURATIONS:
            t0, t1 = getattr(self, start), getattr(self, end)
            out[name] = max(0.0, t1 - t0) if t0 is not None and t1 is not None else None
        return out

    @property
    def detection_latency(self) -> Optional[float]:
        """Attack start → first local revocation (a guard crossing C_t)."""
        if self.attack_start is None or self.local_revocation is None:
            return None
        return max(0.0, self.local_revocation - self.attack_start)

    @property
    def total(self) -> Optional[float]:
        """Attack start → full isolation (the paper's isolation latency)."""
        if self.attack_start is None or self.full_isolation is None:
            return None
        return max(0.0, self.full_isolation - self.attack_start)

    @property
    def complete(self) -> bool:
        """Whether every stage was reached."""
        return all(getattr(self, name) is not None for name in STAGES)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering: stages, durations, headline latencies."""
        return {
            "stages": {name: getattr(self, name) for name in STAGES},
            "durations": self.durations(),
            "detection_latency": self.detection_latency,
            "total": self.total,
            "revokers": len(self.revokers),
        }


class LatencyDecomposer:
    """Builds per-node :class:`StageLatency` from a stream of records.

    Works identically attached to a live trace (:meth:`attach`) or fed an
    exported record stream (:meth:`process` / :meth:`check_all` style
    replay) — the decomposition depends only on record order and fields.
    """

    KINDS: Tuple[str, ...] = (
        "wormhole_activity",
        "malicious_drop",
        "malc_increment",
        "guard_detection",
        "isolation",
    )

    def __init__(self) -> None:
        self._stages: Dict[Any, StageLatency] = {}
        #: Nodes with ground-truth attack evidence in the trace.
        self.attacked: Set[Any] = set()

    def attach(self, trace: TraceLog) -> None:
        """Subscribe to every relevant kind on a live trace log."""
        for kind in self.KINDS:
            trace.subscribe(kind, self.process)

    def _entry(self, node: Any) -> StageLatency:
        entry = self._stages.get(node)
        if entry is None:
            entry = self._stages[node] = StageLatency(node=node)
        return entry

    def process(self, record: TraceRecord) -> None:
        """Feed one record (in emission order)."""
        kind = record.kind
        if kind in ("wormhole_activity", "malicious_drop"):
            node = record["node"]
            self.attacked.add(node)
            entry = self._entry(node)
            if entry.attack_start is None:
                entry.attack_start = record.time
        elif kind == "malc_increment":
            entry = self._entry(record["accused"])
            if entry.first_malc is None:
                entry.first_malc = record.time
        elif kind == "guard_detection":
            entry = self._entry(record["accused"])
            if entry.local_revocation is None:
                entry.local_revocation = record.time
            self._note_revoker(entry, record["guard"], record.time)
        elif kind == "isolation":
            entry = self._entry(record["accused"])
            if entry.quorum is None:
                entry.quorum = record.time
            self._note_revoker(entry, record["node"], record.time)

    @staticmethod
    def _note_revoker(entry: StageLatency, revoker: Any, time: float) -> None:
        # full_isolation advances only when a *new* distinct revoker
        # appears: the moment the revoker set stops growing is the
        # trace-level proxy for network-wide isolation.
        if revoker not in entry.revokers:
            entry.revokers.add(revoker)
            entry.full_isolation = time

    def decomposition(self, attacked_only: bool = True) -> Dict[Any, StageLatency]:
        """Per-node stage latencies, keyed by node id.

        With ``attacked_only`` (the default) only nodes with ground-truth
        attack evidence are returned — accusations against honest nodes
        (false positives) are a different metric and stay out.
        """
        if not attacked_only:
            return dict(self._stages)
        return {
            node: entry
            for node, entry in self._stages.items()
            if node in self.attacked
        }


# ----------------------------------------------------------------------
# Cross-replication aggregation
# ----------------------------------------------------------------------
def quantile(values: Sequence[float], q: float) -> Optional[float]:
    """Linear-interpolation quantile of ``values`` (deterministic).

    ``q`` in [0, 1]; returns None on an empty input.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q!r}")
    ordered = sorted(values)
    if not ordered:
        return None
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def summarize(values: Iterable[float]) -> Dict[str, Optional[float]]:
    """count / mean / min / max / p50 / p90 / p99 of a duration sample."""
    sample = [float(v) for v in values]
    if not sample:
        return {
            "count": 0, "mean": None, "min": None, "max": None,
            "p50": None, "p90": None, "p99": None,
        }
    return {
        "count": len(sample),
        "mean": sum(sample) / len(sample),
        "min": min(sample),
        "max": max(sample),
        "p50": quantile(sample, 0.50),
        "p90": quantile(sample, 0.90),
        "p99": quantile(sample, 0.99),
    }


def histogram(values: Iterable[float], bins: int = 10) -> Dict[str, List[float]]:
    """Equal-width histogram: ``{"edges": [b+1 floats], "counts": [b ints]}``.

    Degenerate inputs (empty, or all values equal) collapse to a single
    bin so the output shape stays predictable.
    """
    if bins < 1:
        raise ValueError(f"bins must be positive, got {bins!r}")
    sample = sorted(float(v) for v in values)
    if not sample:
        return {"edges": [], "counts": []}
    low, high = sample[0], sample[-1]
    if high == low:
        return {"edges": [low, high], "counts": [len(sample)]}
    width = (high - low) / bins
    edges = [low + i * width for i in range(bins)] + [high]
    counts = [0] * bins
    for value in sample:
        index = min(int((value - low) / width), bins - 1)
        counts[index] += 1
    return {"edges": edges, "counts": counts}


def summarize_decompositions(
    decompositions: Iterable[Mapping[Any, StageLatency]],
    bins: int = 10,
) -> Dict[str, Dict[str, Any]]:
    """Aggregate stage durations across replications.

    Input: one ``decomposition()`` mapping per replication.  Output: for
    each duration name (plus the headline ``detection_latency`` and
    ``total``), the :func:`summarize` statistics and a :func:`histogram`
    over every node of every replication that reached the stage.
    """
    samples: Dict[str, List[float]] = {name: [] for name, _, _ in DURATIONS}
    samples["detection_latency"] = []
    samples["total"] = []
    for decomposition in decompositions:
        for entry in decomposition.values():
            for name, value in entry.durations().items():
                if value is not None:
                    samples[name].append(value)
            if entry.detection_latency is not None:
                samples["detection_latency"].append(entry.detection_latency)
            if entry.total is not None:
                samples["total"].append(entry.total)
    return {
        name: {"summary": summarize(values), "histogram": histogram(values, bins=bins)}
        for name, values in samples.items()
    }
