"""Streaming trace sinks.

A sink is any object with a ``write(record)`` method (and optionally
``close()``); :meth:`repro.sim.trace.TraceLog.attach_sink` forwards every
emitted record to each attached sink *before* ring-buffer eviction, so a
sink always observes the complete trace even when the in-memory log is
bounded.

:class:`JsonlSink` is the workhorse: one JSON object per line, opened in
append mode with line buffering so each record is a single atomic
``O_APPEND`` write — parallel sweep workers can safely share one file.
Every line carries a ``run`` tag so multi-replication exports can be
regrouped per run downstream (``repro trace check`` does exactly that).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.sim.trace import TraceRecord


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of trace field values to JSON-encodable
    forms (tuples/sets become lists, unknown objects become repr)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        try:
            return [_jsonable(v) for v in items]
        except TypeError:  # unsortable set
            return [_jsonable(v) for v in value]
    return repr(value)


def record_to_json(record: TraceRecord, run: Optional[Any] = None) -> str:
    """Serialize one record to a single JSON line (no trailing newline)."""
    payload: Dict[str, Any] = {
        "time": record.time,
        "kind": record.kind,
        "fields": {k: _jsonable(v) for k, v in record.fields.items()},
    }
    if run is not None:
        payload["run"] = _jsonable(run)
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def record_from_json(line: str) -> TraceRecord:
    """Parse one JSONL line back into a :class:`TraceRecord`.

    The ``run`` tag, if present, is preserved as a ``__run__`` field so
    downstream tooling can group records per run.
    """
    payload = json.loads(line)
    fields = dict(payload.get("fields", {}))
    if "run" in payload:
        fields["__run__"] = payload["run"]
    return TraceRecord(time=payload["time"], kind=payload["kind"], fields=fields)


class JsonlSink:
    """Append-only JSONL file sink, safe for concurrent writers.

    The file is opened lazily on the first write with ``buffering=1``
    (line buffered) in append mode, so every record is flushed as one
    atomic append — multiple sweep workers may stream into the same path
    without interleaving partial lines.
    """

    def __init__(
        self,
        path: Union[str, Path],
        append: bool = True,
        run: Optional[Any] = None,
    ) -> None:
        self.path = Path(path)
        self.run = run
        self._mode = "a" if append else "w"
        self._handle = None
        self.records_written = 0

    def write(self, record: TraceRecord) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, self._mode, buffering=1, encoding="utf-8")
            self._mode = "a"  # reopen after close never truncates
        self._handle.write(record_to_json(record, run=self.run) + "\n")
        self.records_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class MemorySink:
    """Sink that keeps every record in a list — the test double, and the
    way to observe evicted records when the log runs in ring mode."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self.closed = False

    def write(self, record: TraceRecord) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True

    def __len__(self) -> int:
        return len(self.records)


class ReadStats:
    """Mutable side-channel for :func:`read_jsonl` bookkeeping."""

    def __init__(self) -> None:
        self.records = 0
        self.partial_lines = 0


def read_jsonl(
    path: Union[str, Path],
    tolerate_partial: bool = False,
    stats: Optional[ReadStats] = None,
) -> Iterator[TraceRecord]:
    """Stream records back from a JSONL trace export, skipping blank
    lines.  Raises ``ValueError`` naming the offending line number on
    malformed JSON.

    A sweep worker killed mid-write (crash, SIGKILL, out-of-disk) can
    legitimately leave a truncated *final* line behind.  With
    ``tolerate_partial`` such a trailing fragment is skipped — and
    counted in ``stats.partial_lines`` — instead of raising; malformed
    JSON followed by further records is still corruption and raises
    either way.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = record_from_json(stripped)
            except (json.JSONDecodeError, KeyError) as exc:
                if tolerate_partial and isinstance(exc, json.JSONDecodeError):
                    remainder = handle.read()
                    if not remainder.strip():
                        # Truncated trailing line: a killed writer's last
                        # O_APPEND never completed.  Skip and count it.
                        if stats is not None:
                            stats.partial_lines += 1
                        return
                raise ValueError(
                    f"{path}:{lineno}: malformed trace line: {exc}"
                ) from exc
            if stats is not None:
                stats.records += 1
            yield record
