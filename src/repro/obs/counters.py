"""Per-node counter snapshots.

Every protocol component keeps cheap integer counters as it runs (the
monitor's accusation tallies, the isolation manager's alert bookkeeping,
the liveness manager's probe counts, the agent's filter rejects).  This
module flattens them into one ``{node_id: {counter: value}}`` mapping that
:meth:`~repro.experiments.scenario.Scenario.run` stores on the
:class:`~repro.metrics.collector.MetricsReport` — so the numbers survive
the result cache round-trip and land in figure payloads without anyone
re-scanning the trace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping

from repro.net.packet import NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.agent import LiteworpAgent


def snapshot_node(agent: "LiteworpAgent") -> Dict[str, int]:
    """Flatten one agent's component counters into a plain dict."""
    monitor = agent.monitor
    isolation = agent.isolation
    counters: Dict[str, int] = {
        # Guard / monitor activity.
        "fabrications_seen": monitor.fabrications_seen,
        "drops_seen": monitor.drops_seen,
        "suppressed_accusations": monitor.suppressed_accusations,
        "suspended_accusations": monitor.suspended_accusations,
        "watch_buffer_peak": monitor.watch_buffer_peak,
        "malc_total": monitor.malc_total,
        # Alert dissemination.
        "alerts_sent": isolation.alerts_sent,
        "alerts_accepted": isolation.alerts_accepted,
        "alerts_rejected": isolation.alerts_rejected,
        "alert_retransmits": isolation.alert_retransmits,
        "acks_verified": isolation.acks_verified,
        # Legitimacy-filter rejects.
        "reject_nonneighbor": agent.rejects["nonneighbor"],
        "reject_revoked": agent.rejects["revoked"],
        "reject_secondhop": agent.rejects["secondhop"],
    }
    if agent.liveness is not None:
        counters.update(
            heartbeats_sent=agent.liveness.heartbeats_sent,
            probes_sent=agent.liveness.probes_sent,
            deaths_declared=agent.liveness.deaths_declared,
            recoveries_seen=agent.liveness.recoveries_seen,
        )
    return counters


def snapshot_counters(
    agents: Mapping[NodeId, "LiteworpAgent"],
) -> Dict[NodeId, Dict[str, int]]:
    """Snapshot every agent's counters, keyed by node id."""
    return {node_id: snapshot_node(agent) for node_id, agent in sorted(agents.items())}
