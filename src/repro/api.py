"""Stable public API facade.

Everything a downstream caller needs lives here under names that will not
move when the internals are refactored: deep imports of
``repro.experiments.*`` / ``repro.obs.*`` are an implementation detail,
``repro.api`` is the contract.

    from repro import api

    report = api.run(api.ScenarioConfig(n_nodes=30, duration=120.0, seed=7))
    replications = api.sweep(api.ScenarioConfig(n_nodes=30), runs=10, jobs=-1)
    result = api.campaign("study.toml", backend="process", jobs=-1,
                          journal="study.journal.jsonl", resume=True)
    grid = api.matrix(api.MatrixSpec(runs=3), journal_dir="matrix-journals")
    run_report = api.report("trace.jsonl")

Five verbs, one noun family:

- :func:`run` — one scenario, one :class:`MetricsReport`.
- :func:`sweep` — N replications of one config (parallel + cached).
- :func:`campaign` — a declarative grid of configs with journaled resume
  (see :mod:`repro.experiments.campaign`).
- :func:`matrix` — every registered defense × every requested attack
  mode, one journaled campaign per attack, folded into a single
  :class:`MatrixReport` (see :mod:`repro.experiments.matrix`).
- :func:`report` — a markdown/JSON run report from a trace export.

plus the config/result types those verbs exchange, re-exported under
their canonical names — including the defense-plugin surface
(:class:`Defense`, :class:`DefenseSpec`, :func:`available_defenses`,
:func:`register_defense`) so third-party schemes never need deep
imports.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, List, Mapping, Optional, Sequence, Union

from repro.defenses import (
    Defense,
    DefenseContext,
    DefenseSpec,
    available_defenses,
    get_defense,
    register_defense,
)
from repro.experiments.cache import ResultCache
from repro.experiments.campaign import (
    CampaignResult,
    CampaignSpec,
    ExecutionBackend,
    RetryPolicy,
    SupervisionPolicy,
    load_spec,
    run_campaign,
)
from repro.experiments.matrix import (
    MatrixResult,
    MatrixSpec,
    run_matrix,
)
from repro.experiments.runner import SweepRunner, replication_configs
from repro.experiments.scenario import (
    ATTACK_MODES,
    DEFENSES,
    Scenario,
    ScenarioConfig,
    build_scenario,
    run_scenario,
)
from repro.metrics.collector import MetricsReport
from repro.obs.config import ObsConfig
from repro.obs.report import MatrixReport, RunReport, build_report
from repro.sim.trace import TraceRecord


def run(
    config: Optional[ScenarioConfig] = None, **overrides: Any
) -> MetricsReport:
    """Execute one scenario and return its metrics report.

    Call with a ready :class:`ScenarioConfig`, with keyword overrides on
    top of one, or with keyword arguments alone (they construct the
    config)::

        api.run(n_nodes=30, duration=120.0, seed=7)
        api.run(base_config, seed=11)
    """
    if config is None:
        config = ScenarioConfig(**overrides)
    elif overrides:
        config = dataclasses.replace(config, **overrides)
    return run_scenario(config)


def sweep(
    config: ScenarioConfig,
    runs: int,
    *,
    jobs: Optional[int] = None,
    cache: Optional[Union[ResultCache, str, Path]] = None,
) -> List[MetricsReport]:
    """Run ``runs`` independent replications of ``config``.

    Replication seeds are hash-derived (index 0 is the base seed), so a
    parallel sweep (``jobs`` workers, ``-1`` = one per CPU) returns
    byte-identical reports to a serial one.  ``cache`` may be a
    :class:`~repro.experiments.cache.ResultCache` or a directory path.
    """
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)
    return SweepRunner(jobs=jobs, cache=cache).run_many(
        replication_configs(config, runs)
    )


def campaign(
    spec: Union[CampaignSpec, Mapping[str, Any], str, Path],
    *,
    backend: Union[str, ExecutionBackend] = "inline",
    jobs: Optional[int] = None,
    cache: Optional[Union[ResultCache, str, Path]] = None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    retry: RetryPolicy = RetryPolicy(),
    supervision: SupervisionPolicy = SupervisionPolicy(),
    max_jobs: Optional[int] = None,
    stop: Optional[Any] = None,
    fsync: bool = True,
) -> CampaignResult:
    """Execute (or resume) a campaign spec; see
    :mod:`repro.experiments.campaign` for the full semantics.

    ``spec`` may be a :class:`CampaignSpec`, a spec-shaped mapping, or a
    path to a TOML/JSON file.  ``supervision`` configures per-job
    timeouts and poison-job quarantine; ``stop`` is a zero-argument
    callable polled for graceful interruption.
    """
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)
    return run_campaign(
        spec,
        backend=backend,
        jobs=jobs,
        cache=cache,
        journal=journal,
        resume=resume,
        retry=retry,
        supervision=supervision,
        max_jobs=max_jobs,
        stop=stop,
        fsync=fsync,
    )


def matrix(
    spec: Optional[MatrixSpec] = None,
    *,
    journal_dir: Union[str, Path] = "matrix-journals",
    backend: Union[str, ExecutionBackend] = "inline",
    jobs: Optional[int] = None,
    cache: Optional[Union[ResultCache, str, Path]] = None,
    resume: bool = False,
    retry: RetryPolicy = RetryPolicy(),
    supervision: SupervisionPolicy = SupervisionPolicy(),
    max_jobs: Optional[int] = None,
    stop: Optional[Any] = None,
    fsync: bool = True,
    **overrides: Any,
) -> MatrixResult:
    """Run (or resume) a defense × attack matrix; see
    :mod:`repro.experiments.matrix` for the full semantics.

    ``spec`` defaults to every registered defense over the default attack
    columns; keyword overrides construct or adjust it::

        api.matrix(runs=3, attacks=("outofband", "relay"))
        api.matrix(spec, journal_dir="out", resume=True)

    When the result is complete, ``result.report`` is the rendered
    :class:`MatrixReport` (markdown + JSON).
    """
    if spec is None:
        spec = MatrixSpec(**overrides)
    elif overrides:
        spec = dataclasses.replace(spec, **overrides)
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)
    return run_matrix(
        spec,
        journal_dir=journal_dir,
        backend=backend,
        jobs=jobs,
        cache=cache,
        resume=resume,
        retry=retry,
        supervision=supervision,
        max_jobs=max_jobs,
        stop=stop,
        fsync=fsync,
    )


def report(
    source: Union[str, Path, Sequence[TraceRecord]],
    *,
    theta: int = 3,
    step: Optional[float] = None,
) -> RunReport:
    """Build a run report from a JSONL trace export path or an in-memory
    record sequence (``repro report`` renders the same object)."""
    if isinstance(source, (str, Path)):
        from repro.obs.sinks import read_jsonl

        records: Sequence[TraceRecord] = list(
            read_jsonl(source, tolerate_partial=True)
        )
    else:
        records = list(source)
    return build_report(records, theta=theta, step=step)


__all__ = [
    # Verbs.
    "run",
    "sweep",
    "campaign",
    "matrix",
    "report",
    # Scenario construction.
    "ATTACK_MODES",
    "DEFENSES",
    "Scenario",
    "ScenarioConfig",
    "ObsConfig",
    "build_scenario",
    # Defense plugin surface.
    "Defense",
    "DefenseContext",
    "DefenseSpec",
    "available_defenses",
    "get_defense",
    "register_defense",
    # Campaign types.
    "CampaignResult",
    "CampaignSpec",
    "RetryPolicy",
    "SupervisionPolicy",
    "load_spec",
    # Matrix types.
    "MatrixResult",
    "MatrixSpec",
    # Results.
    "MetricsReport",
    "ResultCache",
    "RunReport",
    "MatrixReport",
]
