"""Mobility extension (paper section 7, future work).

The paper's LITEWORP targets static networks and names the extension to
mobility as future work: "the fundamental requirement is the ability of a
node to securely determine its first hop and second hop neighbors in the
face of mobility", to be met by augmenting LITEWORP with a dynamic secure
neighbor-discovery protocol.

This package implements that augmentation:

- :class:`~repro.mobility.waypoint.RandomWaypointModel` — random-waypoint
  movement for a configurable subset of nodes, stepping positions on the
  simulation clock and invalidating the radio's coverage cache.
- :class:`~repro.mobility.dynamic.DynamicNeighborhood` — the dynamic
  secure neighbor-discovery manager: on every movement step it detects
  link formation and link breakage, runs an authenticated two-way
  handshake for new links (the mobile-HELLO exchange of [15][16] in the
  paper's citations), updates both ends' first-hop tables, refreshes the
  stored neighbor lists of everyone in radio range, and retires stale
  links so the legitimacy checks stay sound.

Revocations survive movement: a node isolated in one neighborhood remains
revoked in every table that learned of it, so a wormhole cannot outrun
its reputation by relocating.
"""

from repro.mobility.dynamic import DynamicNeighborhood
from repro.mobility.waypoint import RandomWaypointModel, WaypointConfig

__all__ = ["DynamicNeighborhood", "RandomWaypointModel", "WaypointConfig"]
