"""Random-waypoint mobility.

Each mobile node picks a uniform random waypoint in the field, moves
toward it at a speed drawn from [min_speed, max_speed], pauses, and
repeats.  Positions advance in discrete steps of ``step_interval``
seconds; each step updates the radio (invalidating its coverage cache)
and notifies subscribers so the dynamic neighbor-discovery layer can
react to link changes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.net.packet import NodeId
from repro.net.radio import UnitDiskRadio
from repro.sim.engine import Simulator

Position = Tuple[float, float]


@dataclass(frozen=True)
class WaypointConfig:
    """Random-waypoint parameters."""

    field_side: float
    min_speed: float = 1.0
    max_speed: float = 5.0
    pause_time: float = 2.0
    step_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.field_side <= 0:
            raise ValueError("field_side must be positive")
        if not 0 < self.min_speed <= self.max_speed:
            raise ValueError("need 0 < min_speed <= max_speed")
        if self.pause_time < 0:
            raise ValueError("pause_time must be non-negative")
        if self.step_interval <= 0:
            raise ValueError("step_interval must be positive")


@dataclass
class _NodeMotion:
    position: Position
    target: Position
    speed: float
    pause_until: float = 0.0


class RandomWaypointModel:
    """Drives the positions of a set of mobile nodes."""

    def __init__(
        self,
        sim: Simulator,
        radio: UnitDiskRadio,
        mobile_nodes: Sequence[NodeId],
        config: WaypointConfig,
        rng: random.Random,
    ) -> None:
        self.sim = sim
        self.radio = radio
        self.config = config
        self.rng = rng
        self._motions: Dict[NodeId, _NodeMotion] = {}
        self._subscribers: List[Callable[[NodeId, Position], None]] = []
        self._running = False
        for node in mobile_nodes:
            position = radio.position(node)
            self._motions[node] = _NodeMotion(
                position=position,
                target=self._draw_waypoint(),
                speed=self._draw_speed(),
            )

    @property
    def mobile_nodes(self) -> Tuple[NodeId, ...]:
        """The nodes this model moves."""
        return tuple(self._motions)

    def subscribe(self, callback: Callable[[NodeId, Position], None]) -> None:
        """Called after every position update with (node, new_position)."""
        self._subscribers.append(callback)

    def start(self) -> None:
        """Begin stepping positions each ``step_interval`` seconds."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(self.config.step_interval, self._step)

    def stop(self) -> None:
        """Freeze all nodes in place."""
        self._running = False

    def position(self, node: NodeId) -> Position:
        """Current position of a mobile node."""
        return self._motions[node].position

    # ------------------------------------------------------------------
    # Movement mechanics
    # ------------------------------------------------------------------
    def _step(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        interval = self.config.step_interval
        for node, motion in self._motions.items():
            if now < motion.pause_until:
                continue
            x, y = motion.position
            tx, ty = motion.target
            dx, dy = tx - x, ty - y
            remaining = math.hypot(dx, dy)
            travel = motion.speed * interval
            if travel >= remaining:
                motion.position = motion.target
                motion.target = self._draw_waypoint()
                motion.speed = self._draw_speed()
                motion.pause_until = now + self.config.pause_time
            else:
                motion.position = (x + dx / remaining * travel, y + dy / remaining * travel)
            self.radio.set_position(node, motion.position)
            for callback in self._subscribers:
                callback(node, motion.position)
        self.sim.schedule(interval, self._step)

    def _draw_waypoint(self) -> Position:
        side = self.config.field_side
        return (self.rng.uniform(0.0, side), self.rng.uniform(0.0, side))

    def _draw_speed(self) -> float:
        return self.rng.uniform(self.config.min_speed, self.config.max_speed)
