"""Dynamic secure neighbor discovery for mobile LITEWORP.

Models the paper's proposed augmentation: when two nodes move into radio
range they run an authenticated two-way handshake (HELLO / challenge
reply, as in the directional-antenna and rushing-attack papers the
authors cite) before either treats the other as a neighbor.  The
handshake is abstracted as a fixed latency plus the requirement that both
parties hold legitimate keys; its *outcome* — updated first-hop tables at
both ends and refreshed stored neighbor lists at everyone in range — is
applied atomically on completion.

Security properties preserved under mobility:

- **Revocation is sticky.**  A node that was revoked stays revoked in any
  table that ever learned of it; moving to a new neighborhood does not
  launder its reputation there either, because alert state lives in the
  tables of its accusers (a fresh neighborhood does start clean — the
  paper's isolation is local by design).
- **Outsiders stay out.**  A keyless node fails the handshake and never
  enters a neighbor list, exactly as in static discovery.
- **Second-hop views stay fresh.**  Every link formation/breakage
  refreshes the stored ``R_n`` of both endpoints at all their current
  neighbors, keeping the legitimacy checks sound while topology changes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.core.agent import LiteworpAgent
from repro.net.packet import NodeId
from repro.net.radio import UnitDiskRadio, distance
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog

Link = FrozenSet[NodeId]


class DynamicNeighborhood:
    """Keeps LITEWORP neighbor tables consistent with a moving topology."""

    def __init__(
        self,
        sim: Simulator,
        radio: UnitDiskRadio,
        agents: Dict[NodeId, LiteworpAgent],
        trace: TraceLog,
        handshake_latency: float = 0.3,
        keyless: Optional[Set[NodeId]] = None,
    ) -> None:
        if handshake_latency < 0:
            raise ValueError("handshake_latency must be non-negative")
        self.sim = sim
        self.radio = radio
        self.agents = agents
        self.trace = trace
        self.handshake_latency = handshake_latency
        self.keyless = keyless or set()
        self._links: Set[Link] = set()
        self._pending: Set[Link] = set()
        self.links_formed = 0
        self.links_broken = 0
        self.handshakes_rejected = 0
        for node in radio.node_ids:
            for neighbor in radio.neighbors(node):
                self._links.add(frozenset((node, neighbor)))

    # ------------------------------------------------------------------
    # Movement hook
    # ------------------------------------------------------------------
    def on_position_update(self, moved: NodeId, _position: Tuple[float, float]) -> None:
        """Subscribe this to the mobility model."""
        moved_pos = self.radio.position(moved)
        reach = self.radio.tx_range(moved)
        for other in self.radio.node_ids:
            if other == moved:
                continue
            link = frozenset((moved, other))
            in_range = distance(moved_pos, self.radio.position(other)) <= min(
                reach, self.radio.tx_range(other)
            )
            if in_range and link not in self._links and link not in self._pending:
                self._begin_handshake(link)
            elif not in_range and link in self._links:
                self._break_link(link)

    # ------------------------------------------------------------------
    # Link formation
    # ------------------------------------------------------------------
    def _begin_handshake(self, link: Link) -> None:
        a, b = tuple(link)
        if a in self.keyless or b in self.keyless:
            self.handshakes_rejected += 1
            self.trace.emit(self.sim.now, "mobile_handshake_rejected", a=a, b=b)
            return
        self._pending.add(link)
        self.sim.schedule(self.handshake_latency, self._complete_handshake, link)

    def _complete_handshake(self, link: Link) -> None:
        self._pending.discard(link)
        a, b = tuple(link)
        # Still in mutual range after the handshake latency?
        if distance(self.radio.position(a), self.radio.position(b)) > min(
            self.radio.tx_range(a), self.radio.tx_range(b)
        ):
            return
        self._links.add(link)
        self.links_formed += 1
        self.trace.emit(self.sim.now, "mobile_link_formed", a=a, b=b)
        self._admit(a, b)
        self._admit(b, a)
        self._refresh_neighbor_lists(a)
        self._refresh_neighbor_lists(b)

    def _admit(self, node: NodeId, newcomer: NodeId) -> None:
        agent = self.agents.get(node)
        if agent is None:
            return
        if agent.table.is_revoked(newcomer):
            # Sticky revocation: a known-bad node cannot re-enter.
            self.trace.emit(
                self.sim.now, "mobile_admission_refused", node=node, revoked=newcomer
            )
            return
        agent.table.add_neighbor(newcomer)

    # ------------------------------------------------------------------
    # Link breakage
    # ------------------------------------------------------------------
    def _break_link(self, link: Link) -> None:
        self._links.discard(link)
        a, b = tuple(link)
        self.links_broken += 1
        self.trace.emit(self.sim.now, "mobile_link_broken", a=a, b=b)
        self._expel(a, b)
        self._expel(b, a)
        self._refresh_neighbor_lists(a)
        self._refresh_neighbor_lists(b)

    def _expel(self, node: NodeId, departed: NodeId) -> None:
        agent = self.agents.get(node)
        if agent is None:
            return
        agent.table.remove_neighbor(departed)

    # ------------------------------------------------------------------
    # Second-hop refresh
    # ------------------------------------------------------------------
    def current_neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """The link-state view of ``node``'s neighbors."""
        return tuple(
            sorted(other for link in self._links if node in link for other in link if other != node)
        )

    def _refresh_neighbor_lists(self, node: NodeId) -> None:
        """Push node's fresh R_n to every current neighbor (authenticated
        NLIST refresh in the real protocol)."""
        members = self.current_neighbors(node)
        for neighbor in members:
            agent = self.agents.get(neighbor)
            if agent is not None:
                agent.table.set_neighbor_list(node, members)
