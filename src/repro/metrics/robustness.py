"""Robustness metrics for chaos experiments.

:class:`RobustnessCollector` rides alongside the paper-facing
:class:`~repro.metrics.collector.MetricsCollector` and accumulates the
quantities that matter under fault injection:

- **false-isolation rate** — the fraction of crashed *honest* nodes that
  some peer nonetheless revoked (the failure the liveness layer exists to
  prevent: a crashed node drops everything, exactly like a wormhole);
- **detection latency under churn** — time from attack start to the first
  guard detection of a genuinely malicious node, with faults active;
- **alert delivery ratio** — distinct (guard, accused, recipient) alert
  triples accepted over triples sent, measuring dissemination robustness
  when alerts race crashes and loss bursts;
- liveness bookkeeping: suspicions, death declarations, recoveries,
  suspended accusations, alert retransmissions, faults injected/cleared.

Everything is derived from trace records, so the collector works with any
scenario that emits the standard kinds — no protocol object references
needed.  All report fields and :meth:`RobustnessReport.format` output are
deterministic functions of the trace: identical seed + identical fault
plan reproduce them byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from repro.net.packet import NodeId
from repro.sim.trace import TraceLog, TraceRecord

AlertTriple = Tuple[NodeId, NodeId, NodeId]  # (guard, accused, recipient)


@dataclass
class RobustnessReport:
    """Immutable summary produced by :meth:`RobustnessCollector.report`."""

    duration: float
    crashed_honest: Tuple[NodeId, ...]
    falsely_isolated: Tuple[NodeId, ...]
    first_detection: Optional[float]
    attack_start: float
    faults_injected: int
    faults_cleared: int
    suspicions: int
    deaths_declared: int
    recoveries_observed: int
    suspended_accusations: int
    alerts_sent_unique: int
    alerts_delivered_unique: int
    alert_retransmits: int
    false_isolation_events: Dict[NodeId, int] = field(default_factory=dict)

    @property
    def false_isolation_rate(self) -> float:
        """Crashed honest nodes revoked by at least one peer, as a
        fraction of all crashed honest nodes (0.0 when none crashed)."""
        if not self.crashed_honest:
            return 0.0
        return len(self.falsely_isolated) / len(self.crashed_honest)

    @property
    def alert_delivery_ratio(self) -> float:
        """Distinct alert triples accepted over distinct triples sent
        (1.0 when no alerts were needed)."""
        if self.alerts_sent_unique == 0:
            return 1.0
        return self.alerts_delivered_unique / self.alerts_sent_unique

    @property
    def detection_latency(self) -> Optional[float]:
        """Seconds from attack start to the first guard detection of a
        malicious node, or None if never detected."""
        if self.first_detection is None:
            return None
        return max(0.0, self.first_detection - self.attack_start)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary."""
        return {
            "duration": self.duration,
            "crashed_honest": list(self.crashed_honest),
            "falsely_isolated": list(self.falsely_isolated),
            "false_isolation_rate": self.false_isolation_rate,
            "detection_latency": self.detection_latency,
            "faults_injected": self.faults_injected,
            "faults_cleared": self.faults_cleared,
            "suspicions": self.suspicions,
            "deaths_declared": self.deaths_declared,
            "recoveries_observed": self.recoveries_observed,
            "suspended_accusations": self.suspended_accusations,
            "alerts_sent_unique": self.alerts_sent_unique,
            "alerts_delivered_unique": self.alerts_delivered_unique,
            "alert_delivery_ratio": self.alert_delivery_ratio,
            "alert_retransmits": self.alert_retransmits,
        }

    def format(self) -> str:
        """Stable plain-text rendering (used for byte-identical
        determinism checks and the CLI)."""
        latency = self.detection_latency
        lines = [
            "robustness report",
            f"  duration              {self.duration:.1f} s",
            f"  faults injected       {self.faults_injected} (cleared {self.faults_cleared})",
            f"  crashed honest nodes  {len(self.crashed_honest)}"
            f" {list(self.crashed_honest)}",
            f"  falsely isolated      {len(self.falsely_isolated)}"
            f" {list(self.falsely_isolated)}",
            f"  false-isolation rate  {self.false_isolation_rate:.3f}",
            "  detection latency     "
            + (f"{latency:.3f} s" if latency is not None else "n/a"),
            f"  suspicions            {self.suspicions}",
            f"  deaths declared       {self.deaths_declared}",
            f"  recoveries observed   {self.recoveries_observed}",
            f"  suspended accusations {self.suspended_accusations}",
            f"  alerts sent (unique)  {self.alerts_sent_unique}",
            f"  alerts delivered      {self.alerts_delivered_unique}"
            f" (ratio {self.alert_delivery_ratio:.3f})",
            f"  alert retransmits     {self.alert_retransmits}",
        ]
        return "\n".join(lines)


class RobustnessCollector:
    """Live accumulator for robustness quantities.

    Parameters
    ----------
    trace:
        The experiment's trace log; subscriptions are installed here.
    malicious_ids:
        Ground-truth malicious node set (detection-latency attribution).
    crashed_honest:
        Ground-truth honest nodes subject to crash-class faults — the
        population at risk of false isolation.
    attack_start:
        When the wormhole activates (detection latency reference point).
    """

    def __init__(
        self,
        trace: TraceLog,
        malicious_ids: Sequence[NodeId] = (),
        crashed_honest: Sequence[NodeId] = (),
        attack_start: float = 0.0,
    ) -> None:
        self.malicious: FrozenSet[NodeId] = frozenset(malicious_ids)
        self.crashed_honest: Tuple[NodeId, ...] = tuple(sorted(set(crashed_honest)))
        self.attack_start = attack_start
        self.faults_injected = 0
        self.faults_cleared = 0
        self.suspicions = 0
        self.deaths_declared = 0
        self.recoveries_observed = 0
        self.suspended_accusations = 0
        self.alert_retransmits = 0
        self.first_detection: Optional[float] = None
        self.false_isolation_events: Dict[NodeId, int] = {}
        self._alerts_sent: Set[AlertTriple] = set()
        self._alerts_delivered: Set[AlertTriple] = set()
        self._crashed_set = frozenset(self.crashed_honest)
        self._last_time = 0.0
        trace.subscribe("fault_injected", self._on_fault)
        trace.subscribe("fault_cleared", self._on_cleared)
        trace.subscribe("neighbor_suspect", self._count("suspicions"))
        trace.subscribe("neighbor_dead", self._count("deaths_declared"))
        trace.subscribe("neighbor_recovered", self._count("recoveries_observed"))
        trace.subscribe("malc_suspended", self._count("suspended_accusations"))
        trace.subscribe("alert_retransmit", self._count("alert_retransmits"))
        trace.subscribe("alert_sent", self._on_alert_sent)
        trace.subscribe("alert_accepted", self._on_alert_accepted)
        trace.subscribe("guard_detection", self._on_detection)
        trace.subscribe("isolation", self._on_isolation)

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def _count(self, attribute: str):
        def bump(record: TraceRecord) -> None:
            setattr(self, attribute, getattr(self, attribute) + 1)
            self._last_time = record.time

        return bump

    def _on_fault(self, record: TraceRecord) -> None:
        self.faults_injected += 1
        self._last_time = record.time

    def _on_cleared(self, record: TraceRecord) -> None:
        self.faults_cleared += 1
        self._last_time = record.time

    def _on_alert_sent(self, record: TraceRecord) -> None:
        self._alerts_sent.add((record["guard"], record["accused"], record["recipient"]))
        self._last_time = record.time

    def _on_alert_accepted(self, record: TraceRecord) -> None:
        self._alerts_delivered.add((record["guard"], record["accused"], record["node"]))
        self._last_time = record.time

    def _on_detection(self, record: TraceRecord) -> None:
        accused = record["accused"]
        if accused in self.malicious and self.first_detection is None:
            self.first_detection = record.time
        self._note_revocation(accused)
        self._last_time = record.time

    def _on_isolation(self, record: TraceRecord) -> None:
        self._note_revocation(record["accused"])
        self._last_time = record.time

    def _note_revocation(self, accused: NodeId) -> None:
        if accused in self._crashed_set:
            self.false_isolation_events[accused] = (
                self.false_isolation_events.get(accused, 0) + 1
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, duration: Optional[float] = None) -> RobustnessReport:
        """Snapshot the accumulated robustness metrics."""
        return RobustnessReport(
            duration=duration if duration is not None else self._last_time,
            crashed_honest=self.crashed_honest,
            falsely_isolated=tuple(sorted(self.false_isolation_events)),
            first_detection=self.first_detection,
            attack_start=self.attack_start,
            faults_injected=self.faults_injected,
            faults_cleared=self.faults_cleared,
            suspicions=self.suspicions,
            deaths_declared=self.deaths_declared,
            recoveries_observed=self.recoveries_observed,
            suspended_accusations=self.suspended_accusations,
            alerts_sent_unique=len(self._alerts_sent),
            alerts_delivered_unique=len(self._alerts_delivered),
            alert_retransmits=self.alert_retransmits,
            false_isolation_events=dict(self.false_isolation_events),
        )
