"""Trace-driven metric accumulation.

The paper's output parameters (section 6): "the isolation latency, the
number of data packets dropped due to the wormhole, the number of routes
established, and the number of routes affected by the wormhole", with
losses due to natural collisions accounted separately.

Drop accounting distinguishes:

- ``wormhole_drops`` — data packets a malicious node swallowed
  (``malicious_drop`` traces), the paper's figure-8 quantity;
- ``undelivered`` — originated minus delivered, which additionally counts
  natural losses (collisions, MAC give-ups, missing routes) and packets
  still in flight at the horizon.

Isolation latency for malicious node m = (time every honest ground-truth
neighbor of m has revoked m) − (m's first malicious act).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.net.packet import NodeId
from repro.sim.trace import TraceLog, TraceRecord


@dataclass
class MetricsReport:
    """Immutable summary produced by :meth:`MetricsCollector.report`."""

    duration: float
    originated: int
    delivered: int
    wormhole_drops: int
    routes_established: int
    malicious_routes: int
    drop_times: Tuple[float, ...]
    isolation_times: Dict[NodeId, float]
    first_activity: Dict[NodeId, float]
    detections: int
    isolations: int
    false_isolations: Dict[NodeId, int] = field(default_factory=dict)
    # Per-node protocol counters (see repro.obs.counters.snapshot_counters):
    # MalC totals, watch-buffer peaks, alert send/accept/reject/retransmit
    # tallies, filter rejects, liveness activity.
    node_counters: Dict[NodeId, Dict[str, int]] = field(default_factory=dict)
    # Causal latency stage timestamps per malicious node (see
    # repro.obs.latency): attack_start, first_malc, local_revocation,
    # quorum, full_isolation — only the stages the run actually reached.
    # full_isolation here is the ground-truth complete-neighborhood time
    # (== isolation_times), unlike the trace-level proxy the decomposer
    # computes.
    latency_stages: Dict[NodeId, Dict[str, float]] = field(default_factory=dict)

    @property
    def undelivered(self) -> int:
        """Originated packets that never reached their destination."""
        return max(0, self.originated - self.delivered)

    @property
    def fraction_dropped(self) -> float:
        """Undelivered fraction of originated data packets."""
        if self.originated == 0:
            return 0.0
        return self.undelivered / self.originated

    @property
    def fraction_wormhole_dropped(self) -> float:
        """Wormhole-swallowed fraction of originated data packets."""
        if self.originated == 0:
            return 0.0
        return self.wormhole_drops / self.originated

    @property
    def fraction_malicious_routes(self) -> float:
        """Wormhole-influenced fraction of established routes."""
        if self.routes_established == 0:
            return 0.0
        return self.malicious_routes / self.routes_established

    def isolation_latency(self, node: NodeId) -> Optional[float]:
        """Seconds from first malicious act to complete neighborhood
        isolation, or None if never fully isolated."""
        done = self.isolation_times.get(node)
        started = self.first_activity.get(node)
        if done is None or started is None:
            return None
        return max(0.0, done - started)

    def detection_latency(self, node: NodeId) -> Optional[float]:
        """Seconds from first malicious act to the first guard's local
        revocation (MalC crossing C_t), or None if never detected."""
        stages = self.latency_stages.get(node)
        if not stages:
            return None
        started = stages.get("attack_start")
        detected = stages.get("local_revocation")
        if started is None or detected is None:
            return None
        return max(0.0, detected - started)

    def mean_detection_latency(self) -> Optional[float]:
        """Average detection latency over detected malicious nodes."""
        latencies = [
            latency
            for node in self.latency_stages
            if (latency := self.detection_latency(node)) is not None
        ]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    def latency_decomposition(self, node: NodeId) -> Dict[str, Optional[float]]:
        """Per-stage durations for ``node`` (see repro.obs.latency
        DURATIONS); stages the run never reached map to None."""
        from repro.obs.latency import DURATIONS

        stages = self.latency_stages.get(node, {})
        out: Dict[str, Optional[float]] = {}
        for name, start, end in DURATIONS:
            t0, t1 = stages.get(start), stages.get(end)
            out[name] = max(0.0, t1 - t0) if t0 is not None and t1 is not None else None
        return out

    def mean_isolation_latency(self) -> Optional[float]:
        """Average isolation latency over fully isolated malicious nodes."""
        latencies = [
            latency
            for node in self.isolation_times
            if (latency := self.isolation_latency(node)) is not None
        ]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    def cumulative_drops_at(self, time: float) -> int:
        """Wormhole drops up to and including ``time`` (figure 8 series)."""
        return bisect.bisect_right(self.drop_times, time)

    def drop_series(self, times: Sequence[float]) -> List[int]:
        """Cumulative wormhole drops sampled at each time."""
        return [self.cumulative_drops_at(t) for t in times]

    def to_state(self) -> Dict[str, object]:
        """Full-fidelity JSON-serialisable state (see :meth:`from_state`).

        Unlike :meth:`to_dict` — a human-oriented summary that elides the
        drop-time series — this preserves every field exactly, so a report
        written to the result cache and read back compares equal to the
        report the run produced.
        """
        return {
            "duration": self.duration,
            "originated": self.originated,
            "delivered": self.delivered,
            "wormhole_drops": self.wormhole_drops,
            "routes_established": self.routes_established,
            "malicious_routes": self.malicious_routes,
            "drop_times": list(self.drop_times),
            "isolation_times": {str(k): v for k, v in self.isolation_times.items()},
            "first_activity": {str(k): v for k, v in self.first_activity.items()},
            "detections": self.detections,
            "isolations": self.isolations,
            "false_isolations": {str(k): v for k, v in self.false_isolations.items()},
            "node_counters": {
                str(k): dict(v) for k, v in self.node_counters.items()
            },
            "latency_stages": {
                str(k): dict(v) for k, v in self.latency_stages.items()
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "MetricsReport":
        """Rebuild a report serialised by :meth:`to_state` (JSON round-trip
        safe: node-id keys come back as strings and are re-int'ed here)."""
        return cls(
            duration=float(state["duration"]),  # type: ignore[arg-type]
            originated=int(state["originated"]),  # type: ignore[arg-type]
            delivered=int(state["delivered"]),  # type: ignore[arg-type]
            wormhole_drops=int(state["wormhole_drops"]),  # type: ignore[arg-type]
            routes_established=int(state["routes_established"]),  # type: ignore[arg-type]
            malicious_routes=int(state["malicious_routes"]),  # type: ignore[arg-type]
            drop_times=tuple(state["drop_times"]),  # type: ignore[arg-type]
            isolation_times={int(k): v for k, v in state["isolation_times"].items()},  # type: ignore[union-attr]
            first_activity={int(k): v for k, v in state["first_activity"].items()},  # type: ignore[union-attr]
            detections=int(state["detections"]),  # type: ignore[arg-type]
            isolations=int(state["isolations"]),  # type: ignore[arg-type]
            false_isolations={int(k): v for k, v in state["false_isolations"].items()},  # type: ignore[union-attr]
            # .get: reports cached before this field existed lack it.
            node_counters={
                int(k): dict(v)
                for k, v in state.get("node_counters", {}).items()  # type: ignore[union-attr]
            },
            # .get: schema-version-2 entries (pre-latency-decomposition)
            # lack this field and must still load.
            latency_stages={
                int(k): dict(v)
                for k, v in state.get("latency_stages", {}).items()  # type: ignore[union-attr]
            },
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary (drop times elided to a count)."""
        return {
            "duration": self.duration,
            "originated": self.originated,
            "delivered": self.delivered,
            "undelivered": self.undelivered,
            "fraction_dropped": self.fraction_dropped,
            "wormhole_drops": self.wormhole_drops,
            "fraction_wormhole_dropped": self.fraction_wormhole_dropped,
            "routes_established": self.routes_established,
            "malicious_routes": self.malicious_routes,
            "fraction_malicious_routes": self.fraction_malicious_routes,
            "detections": self.detections,
            "isolations": self.isolations,
            "isolation_latencies": {
                str(node): self.isolation_latency(node) for node in self.isolation_times
            },
            "detection_latencies": {
                str(node): self.detection_latency(node) for node in self.latency_stages
            },
            "false_isolations": {str(k): v for k, v in self.false_isolations.items()},
        }


class MetricsCollector:
    """Live accumulator attached to a trace log.

    Parameters
    ----------
    trace:
        The experiment's trace log; subscriptions are installed here.
    malicious_ids:
        Ground-truth malicious node set.
    honest_neighbors:
        Ground truth: honest neighbors of each malicious node — the
        set whose unanimous revocation constitutes complete isolation.

    A route counts as *malicious* when a malicious node physically
    transmitted its route reply (i.e. sits on the reverse path the data
    will follow) — attach the collector to the network with
    :meth:`attach_network` to enable that ground-truth check.
    """

    def __init__(
        self,
        trace: TraceLog,
        malicious_ids: Sequence[NodeId] = (),
        honest_neighbors: Optional[Dict[NodeId, FrozenSet[NodeId]]] = None,
    ) -> None:
        self.malicious = frozenset(malicious_ids)
        self.honest_neighbors = honest_neighbors or {}
        self._wormhole_reps: Set[Tuple[NodeId, int]] = set()
        self.originated = 0
        self.delivered = 0
        self.routes_established = 0
        self.malicious_routes = 0
        self.detections = 0
        self.isolations = 0
        self.drop_times: List[float] = []
        self.first_activity: Dict[NodeId, float] = {}
        self.isolation_times: Dict[NodeId, float] = {}
        self.false_isolations: Dict[NodeId, int] = {}
        self._revokers: Dict[NodeId, Set[NodeId]] = {}
        # Latency decomposition stages (ground-truth malicious nodes only).
        self.first_malc: Dict[NodeId, float] = {}
        self.first_detection: Dict[NodeId, float] = {}
        self.first_quorum: Dict[NodeId, float] = {}
        self._last_time = 0.0
        trace.subscribe("malc_increment", self._on_malc)
        trace.subscribe("data_origin", self._on_origin)
        trace.subscribe("data_delivered", self._on_delivered)
        trace.subscribe("malicious_drop", self._on_drop)
        trace.subscribe("route_established", self._on_route)
        trace.subscribe("wormhole_activity", self._on_activity)
        trace.subscribe("guard_detection", self._on_detection)
        trace.subscribe("isolation", self._on_isolation)

    def attach_network(self, network) -> None:
        """Observe physical transmissions so malicious route replies can be
        attributed with ground truth."""
        network.channel.add_tx_observer(self._on_physical_tx)

    def _on_physical_tx(self, sender: NodeId, frame, time: float) -> None:
        if sender not in self.malicious:
            return
        packet = frame.packet
        key = getattr(packet, "key", None)
        if key is None:
            return
        identity = packet.key()
        if identity and identity[0] == "REP":
            self._wormhole_reps.add((identity[1], identity[2]))

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def _on_origin(self, record: TraceRecord) -> None:
        self.originated += 1
        self._last_time = record.time

    def _on_delivered(self, record: TraceRecord) -> None:
        self.delivered += 1
        self._last_time = record.time

    def _on_drop(self, record: TraceRecord) -> None:
        self.drop_times.append(record.time)
        self._last_time = record.time

    def _on_route(self, record: TraceRecord) -> None:
        self.routes_established += 1
        key = (record["origin"], record["request_id"])
        path_hits = self.malicious.intersection(record.get("path", ()))
        next_hop_malicious = record.get("next_hop") in self.malicious
        if key in self._wormhole_reps or path_hits or next_hop_malicious:
            self.malicious_routes += 1
        self._last_time = record.time

    def _on_activity(self, record: TraceRecord) -> None:
        node = record["node"]
        self.first_activity.setdefault(node, record.time)

    def _on_malc(self, record: TraceRecord) -> None:
        accused = record["accused"]
        if accused in self.malicious:
            self.first_malc.setdefault(accused, record.time)

    def _on_detection(self, record: TraceRecord) -> None:
        self.detections += 1
        accused = record["accused"]
        if accused in self.malicious:
            self.first_detection.setdefault(accused, record.time)
        self._note_revocation(accused, record["guard"], record.time)

    def _on_isolation(self, record: TraceRecord) -> None:
        self.isolations += 1
        accused = record["accused"]
        if accused in self.malicious:
            self.first_quorum.setdefault(accused, record.time)
        self._note_revocation(accused, record["node"], record.time)

    def _note_revocation(self, accused: NodeId, revoker: NodeId, time: float) -> None:
        if accused not in self.malicious:
            self.false_isolations[accused] = self.false_isolations.get(accused, 0) + 1
            return
        revokers = self._revokers.setdefault(accused, set())
        revokers.add(revoker)
        required = self.honest_neighbors.get(accused)
        if required is not None and accused not in self.isolation_times:
            if required.issubset(revokers):
                self.isolation_times[accused] = time

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def revokers_of(self, accused: NodeId) -> FrozenSet[NodeId]:
        """Nodes that have revoked ``accused`` so far."""
        return frozenset(self._revokers.get(accused, ()))

    def fully_isolated(self, node: NodeId) -> bool:
        """Whether every honest neighbor of ``node`` has revoked it."""
        return node in self.isolation_times

    def latency_stages(self) -> Dict[NodeId, Dict[str, float]]:
        """Per-malicious-node causal stage timestamps (only stages that
        occurred appear as keys)."""
        stages: Dict[NodeId, Dict[str, float]] = {}
        sources: Tuple[Tuple[str, Dict[NodeId, float]], ...] = (
            ("attack_start", self.first_activity),
            ("first_malc", self.first_malc),
            ("local_revocation", self.first_detection),
            ("quorum", self.first_quorum),
            ("full_isolation", self.isolation_times),
        )
        for name, mapping in sources:
            for node, time in mapping.items():
                if node in self.malicious:
                    stages.setdefault(node, {})[name] = time
        return stages

    def report(
        self,
        duration: Optional[float] = None,
        node_counters: Optional[Dict[NodeId, Dict[str, int]]] = None,
    ) -> MetricsReport:
        """Snapshot the accumulated metrics."""
        return MetricsReport(
            duration=duration if duration is not None else self._last_time,
            originated=self.originated,
            delivered=self.delivered,
            wormhole_drops=len(self.drop_times),
            routes_established=self.routes_established,
            malicious_routes=self.malicious_routes,
            drop_times=tuple(self.drop_times),
            isolation_times=dict(self.isolation_times),
            first_activity=dict(self.first_activity),
            detections=self.detections,
            isolations=self.isolations,
            false_isolations=dict(self.false_isolations),
            node_counters=dict(node_counters) if node_counters else {},
            latency_stages=self.latency_stages(),
        )
