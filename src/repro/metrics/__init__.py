"""Experiment metrics.

:class:`~repro.metrics.collector.MetricsCollector` subscribes to the trace
log and accumulates the paper's output parameters live: cumulative data
packets dropped, routes established / malicious routes, detection and
isolation events, and isolation latency per malicious node.
"""

from repro.metrics.collector import MetricsCollector, MetricsReport
from repro.metrics.robustness import RobustnessCollector, RobustnessReport

__all__ = [
    "MetricsCollector",
    "MetricsReport",
    "RobustnessCollector",
    "RobustnessReport",
]
