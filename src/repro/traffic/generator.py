"""Poisson data sources with exponentially re-drawn destinations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.net.packet import NodeId
from repro.routing.ondemand import OnDemandRouting
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.timers import PeriodicTimer


@dataclass(frozen=True)
class TrafficConfig:
    """Workload parameters (Table 2 defaults).

    Attributes
    ----------
    data_rate:
        λ — data packets per second per source (Table 2: 1/10 s⁻¹).
    destination_change_rate:
        μ — rate at which a source re-draws its destination
        (Table 2: 1/200 s⁻¹).
    payload_size:
        Data packet size in bytes.
    start_time:
        Sources stay silent before this time (lets neighbor discovery and
        LITEWORP activation finish first).
    """

    data_rate: float = 1.0 / 10.0
    destination_change_rate: float = 1.0 / 200.0
    payload_size: int = 64
    start_time: float = 5.0

    def __post_init__(self) -> None:
        if self.data_rate <= 0:
            raise ValueError("data_rate must be positive")
        if self.destination_change_rate <= 0:
            raise ValueError("destination_change_rate must be positive")
        if self.payload_size < 1:
            raise ValueError("payload_size must be at least 1 byte")
        if self.start_time < 0:
            raise ValueError("start_time must be non-negative")


class TrafficGenerator:
    """Drives every source node's application traffic.

    ``sources`` are the sending nodes and also the candidate destinations;
    experiments pass the honest nodes only, so malicious nodes neither
    source traffic nor get chosen as sinks (they participate purely as
    forwarders/attackers, as in the paper's runs).
    """

    def __init__(
        self,
        sim: Simulator,
        routers: Dict[NodeId, OnDemandRouting],
        sources: Sequence[NodeId],
        rng: RngRegistry,
        config: Optional[TrafficConfig] = None,
    ) -> None:
        self.sim = sim
        self.routers = routers
        self.sources = list(sources)
        self.config = config or TrafficConfig()
        self._rng = rng.stream("traffic")
        self._destinations: Dict[NodeId, NodeId] = {}
        self._timers: Dict[NodeId, PeriodicTimer] = {}
        self._dest_timers: Dict[NodeId, PeriodicTimer] = {}
        self.packets_originated = 0
        if len(self.sources) < 2:
            raise ValueError("need at least two sources to form flows")

    def start(self) -> None:
        """Arm all source timers (idempotent)."""
        for source in self.sources:
            if source in self._timers:
                continue
            self._destinations[source] = self._draw_destination(source)
            send_timer = PeriodicTimer(
                self.sim,
                lambda s=source: self._send_one(s),
                lambda: self._rng.expovariate(self.config.data_rate),
            )
            send_timer.start(
                initial_delay=self.config.start_time
                + self._rng.expovariate(self.config.data_rate)
            )
            self._timers[source] = send_timer
            dest_timer = PeriodicTimer(
                self.sim,
                lambda s=source: self._change_destination(s),
                lambda: self._rng.expovariate(self.config.destination_change_rate),
            )
            dest_timer.start(
                initial_delay=self.config.start_time
                + self._rng.expovariate(self.config.destination_change_rate)
            )
            self._dest_timers[source] = dest_timer

    def stop(self) -> None:
        """Silence all sources."""
        for timer in self._timers.values():
            timer.stop()
        for timer in self._dest_timers.values():
            timer.stop()

    def current_destination(self, source: NodeId) -> Optional[NodeId]:
        """The destination ``source`` is currently sending to."""
        return self._destinations.get(source)

    def _draw_destination(self, source: NodeId) -> NodeId:
        while True:
            destination = self._rng.choice(self.sources)
            if destination != source:
                return destination

    def _change_destination(self, source: NodeId) -> None:
        self._destinations[source] = self._draw_destination(source)

    def _send_one(self, source: NodeId) -> None:
        destination = self._destinations[source]
        self.routers[source].send_data(destination, payload_size=self.config.payload_size)
        self.packets_originated += 1
