"""Traffic generation (paper section 6).

"Each node acts as a data source and generates data using an exponential
random distribution with inter-arrival rate of λ.  The destination is
chosen at random and is changed using an exponential random distribution
with rate μ."
"""

from repro.traffic.generator import TrafficConfig, TrafficGenerator

__all__ = ["TrafficConfig", "TrafficGenerator"]
