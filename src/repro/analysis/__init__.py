"""Closed-form analysis from paper section 5.

- :mod:`repro.analysis.coverage` — detection and false-alarm probability
  as functions of network density and the detection confidence index θ
  (figures 6(a), 6(b), and the analytical curve in figure 10).
- :mod:`repro.analysis.cost` — memory / computation / bandwidth overhead
  model (section 5.2).
"""

from repro.analysis.coverage import (
    CoverageParams,
    density_for_detection,
    detection_probability,
    detection_vs_neighbors,
    detection_vs_theta,
    expected_guards,
    false_alarm_probability,
    false_alarm_vs_neighbors,
    guard_region_area,
    guard_region_area_min,
    mean_guard_region_area,
    min_guards,
    per_guard_alert_probability,
    per_guard_false_alarm_probability,
)
from repro.analysis.cost import (
    CostModel,
    CostReport,
)

__all__ = [
    "CostModel",
    "CostReport",
    "CoverageParams",
    "density_for_detection",
    "detection_probability",
    "detection_vs_neighbors",
    "detection_vs_theta",
    "expected_guards",
    "false_alarm_probability",
    "false_alarm_vs_neighbors",
    "guard_region_area",
    "guard_region_area_min",
    "mean_guard_region_area",
    "min_guards",
    "per_guard_alert_probability",
    "per_guard_false_alarm_probability",
]
