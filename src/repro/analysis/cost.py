"""Cost analysis (paper section 5.2).

Models the three overheads that make LITEWORP "lightweight":

- **Memory** — first/second-hop neighbor lists (5 bytes per first-hop
  entry: 4-byte id + 1-byte MalC; 4 bytes per second-hop id), the alert
  buffer (θ entries of 4 bytes), and the watch buffer (20 bytes per entry:
  immediate source, immediate destination, original source ids at 4 bytes
  each, plus an 8-byte sequence number).
- **Computation** — neighbor-list lookups and watch-buffer updates per
  watched packet, scaled by the paper's MICA-mote lookup throughput.
- **Bandwidth** — messages only at initialisation (neighbor discovery)
  and on detection (alerts), zero in steady state.

The watch-buffer occupancy estimate uses the paper's bounding-box argument:
the nodes that may overhear a route reply travelling h hops lie inside a
2r × (h+1)r rectangle, so ``N_REP = 2 r² (h+1) d`` nodes are involved per
reply, and each node watches ``(N_REP / N) · f`` replies per unit time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

NEIGHBOR_ENTRY_BYTES = 5  # 4-byte id + 1-byte MalC
SECOND_HOP_ID_BYTES = 4
WATCH_ENTRY_BYTES = 20  # 3 ids * 4 bytes + 8-byte sequence number
ALERT_ENTRY_BYTES = 4


@dataclass(frozen=True)
class CostModel:
    """Inputs of the cost model (paper's running example as defaults)."""

    n_nodes: int = 100
    tx_range: float = 30.0
    avg_neighbors: float = 10.0
    avg_route_hops: float = 4.0
    route_frequency: float = 0.25  # f: route establishments per unit time
    watch_window: float = 1.0  # time a watch entry lives (≈ δ)
    theta: int = 3
    include_requests: bool = False
    mote_lookups_per_second: float = 50.0  # MICA Atmega128 @ 4 MHz, 100-entry buffer

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be positive")
        if self.tx_range <= 0:
            raise ValueError("tx_range must be positive")
        if self.avg_neighbors <= 0:
            raise ValueError("avg_neighbors must be positive")
        if self.avg_route_hops < 1:
            raise ValueError("avg_route_hops must be at least 1")
        if self.route_frequency <= 0:
            raise ValueError("route_frequency must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def density(self) -> float:
        """Node density d implied by N_B = π r² d."""
        return self.avg_neighbors / (math.pi * self.tx_range ** 2)

    def neighbor_list_bytes(self) -> float:
        """NBL storage: first-hop entries plus each neighbor's list."""
        first = NEIGHBOR_ENTRY_BYTES * self.avg_neighbors
        second = SECOND_HOP_ID_BYTES * self.avg_neighbors * self.avg_neighbors
        return first + second

    def alert_buffer_bytes(self) -> int:
        """Alert buffer: θ guard ids."""
        return ALERT_ENTRY_BYTES * self.theta

    def nodes_watching_per_reply(self) -> float:
        """N_REP: nodes inside the 2r × (h+1)r bounding box of one reply."""
        return 2 * self.tx_range ** 2 * (self.avg_route_hops + 1) * self.density

    def watches_per_node_per_unit_time(self) -> float:
        """Replies (and optionally requests) each node watches per unit time."""
        replies = (self.nodes_watching_per_reply() / self.n_nodes) * self.route_frequency
        if self.include_requests:
            # A flooded request involves (almost) every node once.
            replies += self.route_frequency
        return replies

    def watch_buffer_entries(self) -> float:
        """Expected concurrent watch-buffer occupancy (Little's law)."""
        return self.watches_per_node_per_unit_time() * self.watch_window

    def watch_buffer_bytes(self, slack: float = 4.0) -> float:
        """Provisioned watch-buffer size with a safety factor."""
        entries = max(1.0, math.ceil(self.watch_buffer_entries() * slack))
        return entries * WATCH_ENTRY_BYTES

    def total_memory_bytes(self) -> float:
        """All LITEWORP state on one node."""
        return (
            self.neighbor_list_bytes()
            + self.alert_buffer_bytes()
            + self.watch_buffer_bytes()
        )

    def lookups_per_watched_packet(self) -> int:
        """Neighbor-list lookups + watch-buffer update per watched packet."""
        return 3  # source lookup, destination lookup, buffer add-or-delete

    def cpu_utilisation(self) -> float:
        """Fraction of the mote's lookup throughput LITEWORP consumes."""
        rate = self.watches_per_node_per_unit_time() * self.lookups_per_watched_packet()
        return rate / self.mote_lookups_per_second

    def report(self) -> "CostReport":
        """Assemble the section-5.2 cost table."""
        return CostReport(
            neighbor_list_bytes=self.neighbor_list_bytes(),
            alert_buffer_bytes=self.alert_buffer_bytes(),
            watch_entries_steady_state=self.watch_buffer_entries(),
            watch_buffer_bytes=self.watch_buffer_bytes(),
            total_memory_bytes=self.total_memory_bytes(),
            nodes_watching_per_reply=self.nodes_watching_per_reply(),
            watches_per_node=self.watches_per_node_per_unit_time(),
            cpu_utilisation=self.cpu_utilisation(),
        )


@dataclass(frozen=True)
class CostReport:
    """The section-5.2 overhead summary for one parameterisation."""

    neighbor_list_bytes: float
    alert_buffer_bytes: int
    watch_entries_steady_state: float
    watch_buffer_bytes: float
    total_memory_bytes: float
    nodes_watching_per_reply: float
    watches_per_node: float
    cpu_utilisation: float

    def rows(self):
        """(name, value, unit) rows for table rendering."""
        return [
            ("Neighbor lists (NBL)", self.neighbor_list_bytes, "bytes"),
            ("Alert buffer", float(self.alert_buffer_bytes), "bytes"),
            ("Watch buffer steady-state", self.watch_entries_steady_state, "entries"),
            ("Watch buffer provisioned", self.watch_buffer_bytes, "bytes"),
            ("Total memory", self.total_memory_bytes, "bytes"),
            ("Nodes watching one reply", self.nodes_watching_per_reply, "nodes"),
            ("Watched packets per node", self.watches_per_node, "per unit time"),
            ("CPU utilisation", self.cpu_utilisation, "fraction"),
        ]
