"""Coverage analysis (paper section 5.1).

Geometry
--------
Two neighbor nodes S and D at distance x (pdf f(x) = 2x/r² on (0, r))
can be guarded by any node inside the intersection of their two
communication disks.  The lens area is::

    Area(x) = 2 r² cos⁻¹(x / 2r) − (x/2) √(4r² − x²)

minimised at x = r and averaging E[Area] ≈ 1.84 r² over f (exact
quadrature).  With node density d and N_B = π r² d average neighbors, the
paper linearises the expected guard count as g ≈ 0.51·N_B (it quotes
E[Area] ≈ 1.6 r²; the difference is immaterial to every conclusion, and we
expose both the exact and the paper's quoted constants).

Probabilities
-------------
With per-packet collision probability P_C, a guard misses a fabrication
with probability P_C.  Over a window containing γ fabrications, a guard
alerts if it detects at least κ::

    P_alert = Σ_{i=κ}^{γ} C(γ,i) (1−P_C)^i P_C^{γ−i}

and the wormhole is detected when at least θ of the g guards alert::

    P_θ = Σ_{i=θ}^{g} C(g,i) P_alert^i (1−P_alert)^{g−i}

False alarms: a guard falsely suspects one packet when it misses the
S→D transmission but hears D's forward, P_fa = P_C (1−P_C); the windowed
and θ-of-g aggregation is identical in form.

Figure 6 evaluates both curves against the number of neighbors N_B with
P_C growing linearly in N_B.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from scipy import integrate, stats

PAPER_GUARD_FRACTION = 0.51  # paper: g = 0.51 * N_B


# ----------------------------------------------------------------------
# Geometry
# ----------------------------------------------------------------------
def guard_region_area(x: float, r: float) -> float:
    """Lens area of two disks of radius ``r`` whose centres are ``x`` apart.

    Valid for 0 <= x <= 2r; the paper only uses x in (0, r] (neighbors).
    """
    if r <= 0:
        raise ValueError("r must be positive")
    if x < 0 or x > 2 * r:
        raise ValueError(f"x must be in [0, 2r], got {x!r}")
    if x == 0:
        return math.pi * r * r
    area = 2 * r * r * math.acos(x / (2 * r)) - (x / 2.0) * math.sqrt(4 * r * r - x * x)
    # Catastrophic cancellation near x = 2r can produce a tiny negative.
    return max(0.0, area)


def guard_region_area_min(r: float) -> float:
    """Minimum guard-region area over neighbor distances (attained at x=r)."""
    return guard_region_area(r, r)


def mean_guard_region_area(r: float) -> float:
    """E[Area(x)] under f(x) = 2x/r² on (0, r), by quadrature."""
    if r <= 0:
        raise ValueError("r must be positive")
    value, _err = integrate.quad(
        lambda x: guard_region_area(x, r) * 2 * x / (r * r), 0.0, r
    )
    return value


def expected_guards(n_neighbors: float, exact: bool = False) -> float:
    """Expected guard count for a random link given average degree N_B.

    ``exact=False`` uses the paper's linearisation g = 0.51·N_B;
    ``exact=True`` uses E[Area]/ (π r²) · N_B from the quadrature.
    """
    if n_neighbors < 0:
        raise ValueError("n_neighbors must be non-negative")
    if not exact:
        return PAPER_GUARD_FRACTION * n_neighbors
    ratio = mean_guard_region_area(1.0) / math.pi
    return ratio * n_neighbors


def min_guards(n_neighbors: float) -> float:
    """Worst-case guard count (link length x = r): Area_min/(π r²) · N_B."""
    ratio = guard_region_area_min(1.0) / math.pi
    return ratio * n_neighbors


# ----------------------------------------------------------------------
# Detection probability
# ----------------------------------------------------------------------
def per_guard_alert_probability(p_collision: float, gamma: int, kappa: int) -> float:
    """Probability one guard detects ≥ κ of γ fabrications (each seen with
    probability 1 − P_C)."""
    _check_probability(p_collision, "p_collision")
    _check_window(gamma, kappa)
    return float(stats.binom.sf(kappa - 1, gamma, 1.0 - p_collision))

def theta_of_g(p_alert: float, theta: int, guards: int) -> float:
    """Probability at least θ of g independent guards alert."""
    _check_probability(p_alert, "p_alert")
    if theta < 1:
        raise ValueError("theta must be at least 1")
    if guards < 0:
        raise ValueError("guards must be non-negative")
    if guards < theta:
        return 0.0
    return float(stats.binom.sf(theta - 1, guards, p_alert))


def detection_probability(
    p_collision: float, gamma: int, kappa: int, theta: int, guards: int
) -> float:
    """P_θ: the wormhole is detected by at least θ of g guards."""
    p_alert = per_guard_alert_probability(p_collision, gamma, kappa)
    return theta_of_g(p_alert, theta, guards)


# ----------------------------------------------------------------------
# False-alarm probability
# ----------------------------------------------------------------------
def per_guard_false_alarm_probability(
    p_collision: float, gamma: int, kappa: int, squared: bool = False
) -> float:
    """Probability one guard falsely accuses over a γ-packet window.

    Per packet the guard must miss the incoming transmission and hear the
    forward: p = P_C (1 − P_C); ``squared=True`` selects the stricter
    P_C² (1 − P_C) variant suggested by the scanned formula.
    """
    _check_probability(p_collision, "p_collision")
    _check_window(gamma, kappa)
    per_packet = p_collision * (1.0 - p_collision)
    if squared:
        per_packet *= p_collision
    return float(stats.binom.sf(kappa - 1, gamma, per_packet))


def false_alarm_probability(
    p_collision: float,
    gamma: int,
    kappa: int,
    theta: int,
    guards: int,
    squared: bool = False,
) -> float:
    """Probability an honest node is falsely isolated (≥ θ guards falsely
    alert)."""
    p_fa = per_guard_false_alarm_probability(p_collision, gamma, kappa, squared=squared)
    return theta_of_g(p_fa, theta, guards)


# ----------------------------------------------------------------------
# Figure-level sweeps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoverageParams:
    """Parameters of the figure-6 sweeps (paper values as defaults)."""

    gamma: int = 7
    kappa: int = 5
    theta: int = 3
    p_collision_base: float = 0.05
    n_neighbors_base: float = 3.0
    exact_guards: bool = False

    def p_collision(self, n_neighbors: float) -> float:
        """P_C grows linearly with the neighbor count (paper assumption),
        capped below 1."""
        scaled = self.p_collision_base * n_neighbors / self.n_neighbors_base
        return min(scaled, 0.999)

    def guards(self, n_neighbors: float) -> int:
        """Integer guard count for the sweep."""
        return int(round(expected_guards(n_neighbors, exact=self.exact_guards)))


def detection_vs_neighbors(
    neighbor_counts: Sequence[float], params: CoverageParams = CoverageParams()
) -> List[Tuple[float, float]]:
    """Figure 6(a): (N_B, P_detection) series."""
    series = []
    for n_b in neighbor_counts:
        p = detection_probability(
            params.p_collision(n_b), params.gamma, params.kappa,
            params.theta, params.guards(n_b),
        )
        series.append((float(n_b), p))
    return series


def false_alarm_vs_neighbors(
    neighbor_counts: Sequence[float],
    params: CoverageParams = CoverageParams(),
    squared: bool = False,
) -> List[Tuple[float, float]]:
    """Figure 6(b): (N_B, P_false_alarm) series."""
    series = []
    for n_b in neighbor_counts:
        p = false_alarm_probability(
            params.p_collision(n_b), params.gamma, params.kappa,
            params.theta, params.guards(n_b), squared=squared,
        )
        series.append((float(n_b), p))
    return series


def detection_vs_theta(
    thetas: Sequence[int],
    n_neighbors: float = 15.0,
    params: CoverageParams = CoverageParams(),
) -> List[Tuple[int, float]]:
    """Figure 10 (analytical curve): (θ, P_detection) at fixed N_B."""
    guards = params.guards(n_neighbors)
    p_c = params.p_collision(n_neighbors)
    series = []
    for theta in thetas:
        p = detection_probability(p_c, params.gamma, params.kappa, int(theta), guards)
        series.append((int(theta), p))
    return series


def density_for_detection(
    target_probability: float,
    params: CoverageParams = CoverageParams(),
    search_range: Tuple[float, float] = (2.0, 60.0),
    tolerance: float = 0.01,
) -> Optional[float]:
    """Smallest average neighbor count N_B achieving the target detection
    probability (paper 5.1: "we are able to compute the required network
    density d to detect p% of the wormhole attacks for a given θ").

    Returns None when no density in ``search_range`` reaches the target
    (detection is non-monotone in density — it collapses again at high
    density — so the search walks up from the sparse end).
    """
    _check_probability(target_probability, "target_probability")
    low, high = search_range
    if low <= 0 or high <= low:
        raise ValueError("search_range must satisfy 0 < low < high")
    step = tolerance * max(1.0, (high - low))
    n_b = low
    previous = None
    while n_b <= high:
        p = detection_probability(
            params.p_collision(n_b), params.gamma, params.kappa,
            params.theta, params.guards(n_b),
        )
        if p >= target_probability:
            if previous is None:
                return n_b
            # Refine between the last miss and this hit.
            lo, hi = previous, n_b
            for _ in range(30):
                mid = (lo + hi) / 2
                p_mid = detection_probability(
                    params.p_collision(mid), params.gamma, params.kappa,
                    params.theta, params.guards(mid),
                )
                if p_mid >= target_probability:
                    hi = mid
                else:
                    lo = mid
            return hi
        previous = n_b
        n_b += step
    return None


# ----------------------------------------------------------------------
# Validation helpers
# ----------------------------------------------------------------------
def _check_probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def _check_window(gamma: int, kappa: int) -> None:
    if gamma < 1:
        raise ValueError("gamma must be at least 1")
    if not 1 <= kappa <= gamma:
        raise ValueError("kappa must satisfy 1 <= kappa <= gamma")
