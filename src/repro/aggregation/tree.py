"""Epoch-based tree aggregation over the beacon tree.

Schedule: each aggregation epoch starts at a multiple of
``epoch_interval``.  Within an epoch, sends are staggered by depth —
deeper nodes report earlier — so every node can fold its children's
partial aggregates into its own before reporting to its parent:

    send time of node at depth d = epoch_start + (max_depth - d) * depth_slot

The sink finalises the epoch after the last slot and emits an
``aggregate_result`` trace carrying the combined value and the number of
nodes that contributed — the COUNT makes wormhole suppression directly
visible as missing contributors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.packet import Frame, NodeId, Packet
from repro.routing.beacon import BeaconTreeRouting
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceLog

SUM = "sum"
MAX = "max"
COUNT = "count"
AggregateKind = str
KINDS = (SUM, MAX, COUNT)


@dataclass(frozen=True)
class AggregatePacket(Packet):
    """A partial aggregate travelling one hop up the tree."""

    sink: NodeId = 0
    epoch: int = 0
    reporter: NodeId = 0
    value: float = 0.0
    count: int = 0

    def key(self) -> Tuple[Any, ...]:
        return ("AGG", self.sink, self.epoch, self.reporter)

    @property
    def size_bytes(self) -> int:
        return 24

    @property
    def is_control(self) -> bool:
        return False


@dataclass(frozen=True)
class AggregationConfig:
    """Aggregation schedule and combinator."""

    kind: AggregateKind = SUM
    epoch_interval: float = 10.0
    depth_slot: float = 0.3
    max_depth: int = 12

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}")
        if self.epoch_interval <= 0:
            raise ValueError("epoch_interval must be positive")
        if self.depth_slot <= 0:
            raise ValueError("depth_slot must be positive")
        if self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if self.epoch_interval <= (self.max_depth + 1) * self.depth_slot:
            raise ValueError("epoch_interval must exceed the slot schedule")


class TreeAggregation:
    """Per-node aggregation agent riding a :class:`BeaconTreeRouting`."""

    def __init__(
        self,
        sim: Simulator,
        tree: BeaconTreeRouting,
        config: AggregationConfig,
        trace: TraceLog,
        reading_fn: Callable[[NodeId, int], float],
    ) -> None:
        self.sim = sim
        self.tree = tree
        self.node = tree.node
        self.config = config
        self.trace = trace
        self.reading_fn = reading_fn
        self._epoch = 0
        self._pending: Dict[int, List[AggregatePacket]] = {}
        self._timer: Optional[PeriodicTimer] = None
        self.node.add_listener(self._on_frame)

    @property
    def is_sink(self) -> bool:
        """Whether this agent finalises epochs instead of reporting up."""
        return self.tree.is_sink

    def start(self) -> None:
        """Arm the epoch schedule (idempotent)."""
        if self._timer is not None:
            return
        self._timer = PeriodicTimer(
            self.sim, self._begin_epoch, lambda: self.config.epoch_interval
        )
        self._timer.start(initial_delay=self.config.epoch_interval)

    def stop(self) -> None:
        """Stop aggregating."""
        if self._timer is not None:
            self._timer.stop()

    # ------------------------------------------------------------------
    # Epoch machinery
    # ------------------------------------------------------------------
    def _begin_epoch(self) -> None:
        self._epoch += 1
        epoch = self._epoch
        if self.is_sink:
            delay = (self.config.max_depth + 1) * self.config.depth_slot
            self.sim.schedule(delay, self._finalise, epoch)
            return
        depth = self.tree.depth
        if depth is None or self.tree.parent is None:
            return  # not attached to the tree this epoch
        slot = max(0, self.config.max_depth - min(depth, self.config.max_depth))
        # Jitter within the slot: same-depth reporters must not fire at the
        # same instant (hidden-terminal collisions would eat whole subtrees).
        jitter = self.tree.rng.uniform(0.0, 0.5 * self.config.depth_slot)
        self.sim.schedule(slot * self.config.depth_slot + jitter, self._report, epoch)

    def _report(self, epoch: int) -> None:
        parent = self.tree.parent
        if parent is None or not self.tree.usable(parent):
            self.trace.emit(
                self.sim.now, "aggregate_stranded",
                node=self.node.node_id, epoch=epoch,
            )
            return
        value, count = self._combine(epoch)
        packet = AggregatePacket(
            sink=self.tree.sink,
            epoch=epoch,
            reporter=self.node.node_id,
            value=value,
            count=count,
        )
        self.node.unicast(packet, next_hop=parent, prev_hop=None)

    def _combine(self, epoch: int) -> Tuple[float, int]:
        own = self.reading_fn(self.node.node_id, epoch)
        partials = self._pending.pop(epoch, [])
        values = [p.value for p in partials]
        count = 1 + sum(p.count for p in partials)
        if self.config.kind == SUM:
            return own + sum(values), count
        if self.config.kind == MAX:
            return max([own] + values), count
        return float(count), count

    def _finalise(self, epoch: int) -> None:
        partials = self._pending.pop(epoch, [])
        values = [p.value for p in partials]
        count = sum(p.count for p in partials)
        if self.config.kind == SUM:
            value = sum(values)
        elif self.config.kind == MAX:
            value = max(values) if values else float("-inf")
        else:
            value = float(count)
        self.trace.emit(
            self.sim.now, "aggregate_result",
            sink=self.node.node_id, epoch=epoch, value=value, count=count,
            aggregate=self.config.kind,
        )

    # ------------------------------------------------------------------
    # Child partials
    # ------------------------------------------------------------------
    def _on_frame(self, frame: Frame) -> None:
        packet = frame.packet
        if not isinstance(packet, AggregatePacket):
            return
        if frame.link_dst != self.node.node_id:
            return
        self._pending.setdefault(packet.epoch, []).append(packet)
