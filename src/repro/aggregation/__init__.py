"""In-network data aggregation under wormhole attack.

The paper's introduction names "data aggregation" among the protocol
classes a wormhole subverts.  This package implements epoch-based
tree aggregation over the beacon tree
(:class:`~repro.aggregation.tree.TreeAggregation`): every node combines
its own reading with its children's partial aggregates and sends one
combined value to its parent; the sink reconstructs the field-wide
aggregate (SUM / MAX / COUNT).

A wormhole that captures a subtree swallows the region's partial
aggregates, silently biasing the sink's view of the field — the COUNT
aggregate makes the damage directly measurable as missing nodes.
"""

from repro.aggregation.tree import (
    AggregateKind,
    AggregatePacket,
    AggregationConfig,
    TreeAggregation,
)

__all__ = [
    "AggregateKind",
    "AggregatePacket",
    "AggregationConfig",
    "TreeAggregation",
]
