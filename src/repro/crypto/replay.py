"""Replay suppression.

Guards and alert recipients must not double-count the same authenticated
message (a wormhole could otherwise replay one legitimate alert many times).
:class:`ReplayCache` remembers message identities within a sliding window.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable


class ReplayCache:
    """Sliding-window set of previously seen message identities.

    Parameters
    ----------
    window:
        Entries older than ``window`` seconds are forgotten.  ``None``
        disables expiry (bounded only by ``max_entries``).
    max_entries:
        Hard size cap; oldest entries are evicted first.
    """

    def __init__(self, window: float | None = None, max_entries: int = 10_000) -> None:
        if window is not None and window <= 0:
            raise ValueError("window must be positive (or None)")
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self._window = window
        self._max_entries = max_entries
        self._seen: "OrderedDict[Hashable, float]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._seen)

    def seen_before(self, identity: Hashable, now: float) -> bool:
        """Record ``identity``; return True if it was already present
        (within the window)."""
        self._expire(now)
        if identity in self._seen:
            self._seen.move_to_end(identity)
            self._seen[identity] = now
            return True
        self._seen[identity] = now
        if len(self._seen) > self._max_entries:
            self._seen.popitem(last=False)
        return False

    def _expire(self, now: float) -> None:
        if self._window is None:
            return
        cutoff = now - self._window
        while self._seen:
            identity, stamp = next(iter(self._seen.items()))
            if stamp >= cutoff:
                break
            self._seen.popitem(last=False)
