"""Pairwise key management.

:class:`PairwiseKeyManager` plays the role of the key-predistribution
schemes the paper cites ([18][19][20]): after deployment, any two
legitimate nodes share a symmetric key, and no outsider knows any key.
Keys are derived as ``HMAC(master, sorted(i, j))`` so the scheme needs no
communication — equivalent, at the protocol interface, to predistribution.

:class:`KeyStore` is a node's view: it can produce the key it shares with
any peer, but only if the node was *enrolled* (given the master).  An
external (non-enrolled) attacker gets a key store that refuses to derive —
modelling an outsider without cryptographic material.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Optional

NodeId = int


class PairwiseKeyManager:
    """Network-wide key authority (simulates predistribution)."""

    def __init__(self, master_secret: bytes = b"liteworp-deployment-master") -> None:
        if not master_secret:
            raise ValueError("master secret must be non-empty")
        self._master = bytes(master_secret)

    def pairwise_key(self, a: NodeId, b: NodeId) -> bytes:
        """The symmetric key shared by nodes ``a`` and ``b`` (order-free)."""
        if a == b:
            raise ValueError("a node does not share a pairwise key with itself")
        low, high = (a, b) if a <= b else (b, a)
        material = f"pair:{low}:{high}".encode("utf-8")
        return hmac.new(self._master, material, hashlib.sha256).digest()

    def enroll(self, node: NodeId) -> "KeyStore":
        """Key store for a legitimate (insider) node."""
        return KeyStore(node, self)

    def outsider(self, node: NodeId) -> "KeyStore":
        """Key store for an external attacker: holds no keys."""
        return KeyStore(node, None)


class KeyStore:
    """One node's keyring."""

    def __init__(self, node: NodeId, manager: Optional[PairwiseKeyManager]) -> None:
        self.node = node
        self._manager = manager

    @property
    def has_keys(self) -> bool:
        """Whether this node possesses legitimate cryptographic material."""
        return self._manager is not None

    def key_with(self, peer: NodeId) -> Optional[bytes]:
        """Key shared with ``peer``, or None for an outsider."""
        if self._manager is None:
            return None
        return self._manager.pairwise_key(self.node, peer)
