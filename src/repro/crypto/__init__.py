"""Cryptographic substrate.

LITEWORP assumes "a pre-distribution pair-wise key management protocol"
(paper 4.1) and uses it in exactly two places: authenticating neighbor-
discovery replies / neighbor-list broadcasts, and authenticating alert
messages so that a single malicious guard cannot frame honest nodes.

We simulate predistribution by deriving each pairwise key k(i, j)
deterministically from a deployment master secret — the interface (any two
legitimate nodes share a key; outsiders share none) is identical to the
probabilistic schemes the paper cites.  Authentication is HMAC-SHA256
truncated to 8 bytes, which is unforgeable for simulation purposes.
"""

from repro.crypto.auth import Authenticator, AuthError
from repro.crypto.keys import KeyStore, PairwiseKeyManager
from repro.crypto.replay import ReplayCache

__all__ = [
    "AuthError",
    "Authenticator",
    "KeyStore",
    "PairwiseKeyManager",
    "ReplayCache",
]
