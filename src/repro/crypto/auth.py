"""Message authentication.

Tags are HMAC-SHA256 truncated to :data:`TAG_BYTES`.  Payloads are
canonicalised from simple Python values (ints, strings, bytes, tuples) so
both ends compute the tag over identical bytes without a full serializer.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Any, Iterable

TAG_BYTES = 8


class AuthError(ValueError):
    """Raised when a payload cannot be canonicalised."""


def _canonical(value: Any) -> bytes:
    if isinstance(value, bytes):
        return b"b:" + value
    if isinstance(value, bool):
        return b"B:1" if value else b"B:0"
    if isinstance(value, int):
        return f"i:{value}".encode("ascii")
    if isinstance(value, float):
        return f"f:{value!r}".encode("ascii")
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8")
    if value is None:
        return b"n:"
    if isinstance(value, (tuple, list)):
        parts = b"|".join(_canonical(item) for item in value)
        return b"t:[" + parts + b"]"
    raise AuthError(f"cannot canonicalise {type(value).__name__} for authentication")


class Authenticator:
    """Compute and verify truncated-HMAC tags over structured payloads."""

    @staticmethod
    def tag(key: bytes, *payload: Any) -> bytes:
        """Authentication tag for ``payload`` under ``key``."""
        if not key:
            raise AuthError("empty key")
        message = _canonical(tuple(payload))
        return hmac.new(key, message, hashlib.sha256).digest()[:TAG_BYTES]

    @staticmethod
    def verify(key: bytes | None, tag: bytes, *payload: Any) -> bool:
        """Constant-time verification; a missing key always fails."""
        if not key:
            return False
        expected = Authenticator.tag(key, *payload)
        return hmac.compare_digest(expected, tag)

    @staticmethod
    def forge() -> bytes:
        """A syntactically valid but cryptographically worthless tag —
        what an outsider without keys can produce."""
        return b"\x00" * TAG_BYTES


def tag_many(key_lookup, sender: int, recipients: Iterable[int], *payload: Any):
    """Tags for the same payload under the pairwise key with each recipient.

    ``key_lookup(recipient)`` must return the shared key (or None).  Returns
    a tuple of ``(recipient, tag)`` pairs, skipping recipients with no key.
    """
    tags = []
    for recipient in recipients:
        key = key_lookup(recipient)
        if key is None:
            continue
        tags.append((recipient, Authenticator.tag(key, sender, *payload)))
    return tuple(tags)
