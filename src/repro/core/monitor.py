"""Local monitoring — the guard logic (paper 4.2.1 and 4.2.3).

A guard of the link X -> A is a node that neighbors both X and A.  Because
every forwarder must announce its previous hop, a guard can check two
properties of each control packet it overhears from A:

- **Fabrication** — A claims the packet came from X, but the guard (being
  X's neighbor) never heard X transmit it.  MalC(guard, A) += V_f.
- **Drop** — the guard heard X hand a packet to A (watch-buffer entry with
  deadline δ), but A never forwarded it.  MalC(guard, A) += V_d.

A node is trivially a guard of all its own outgoing links, so the monitor
also records the node's *own* transmissions — for those, fabrication
evidence is perfect (no collision can fool a node about what it itself
sent).

**Collision awareness** (engineering refinement over the paper, documented
in DESIGN.md): a real radio senses that *something* was on the air even
when it cannot decode it.  The monitor keeps the timestamps of its node's
recent reception losses and withholds an accusation when the missing
evidence could plausibly have been lost in one of them — a fabrication
accusation is suppressed if a loss occurred within ``fabrication_grace``
seconds before the suspicious forward, and a drop accusation if a loss
occurred while the watch-buffer entry was pending.  This trades a slower
MalC accrual against the malicious node (it still fabricates far more
often than collisions occur) for a collapse of the false-accusation rate
against honest nodes.

When MalC crosses C_t within the sliding window the monitor fires its
detection callback; alerting and revocation live in
:mod:`repro.core.isolation`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.core.config import LiteworpConfig
from repro.core.tables import NeighborTable
from repro.net.packet import (
    DataPacket,
    Frame,
    NodeId,
    RouteErrorPacket,
    RouteReply,
    RouteRequest,
)
from repro.sim.engine import Event, Simulator
from repro.sim.trace import TraceLog

PacketKey = Tuple[Any, ...]
WatchKey = Tuple[PacketKey, NodeId]

#: Minimum simulated seconds between two ``watch_buffer`` gauge records
#: from one guard.  The watch buffer churns on every overheard frame, so
#: the occupancy series is throttled to keep trace volume (and the emit
#: hot path) unaffected; 1 Hz per guard is plenty for occupancy curves.
WATCH_SAMPLE_PERIOD = 1.0


class LocalMonitor:
    """The per-node guard: overheard store, watch buffer, MalC updates."""

    def __init__(
        self,
        sim: Simulator,
        owner: NodeId,
        table: NeighborTable,
        config: LiteworpConfig,
        trace: TraceLog,
        on_detection: Callable[[NodeId], None],
    ) -> None:
        self.sim = sim
        self.owner = owner
        self.table = table
        self.config = config
        self.trace = trace
        self.on_detection = on_detection
        self.enabled = config.monitor_enabled
        # (packet key, transmitter) -> last transmission time.
        self._overheard: "OrderedDict[WatchKey, float]" = OrderedDict()
        # (packet key, watched node) -> deadline event.
        self._expectations: Dict[WatchKey, Event] = {}
        self._detected: Set[NodeId] = set()
        self._recent_losses: "OrderedDict[int, float]" = OrderedDict()
        self._loss_counter = 0
        self.fabrications_seen = 0
        self.drops_seen = 0
        self.suppressed_accusations = 0
        self.suspended_accusations = 0
        self.watch_buffer_peak = 0
        self.malc_total = 0
        # Sampled occupancy gauge (see _note_watch_size).
        self._watch_sampled_at: Optional[float] = None
        self._watch_sampled_size = 0
        # Liveness refinement: when set, accusations against nodes the
        # predicate reports as not-alive are suspended (a crashed neighbor
        # is not a malicious dropper).
        self._is_alive: Optional[Callable[[NodeId], bool]] = None

    # ------------------------------------------------------------------
    # Liveness integration
    # ------------------------------------------------------------------
    def set_liveness(self, is_alive: Callable[[NodeId], bool]) -> None:
        """Install the liveness predicate used to suspend accusations
        against neighbors currently believed DEAD."""
        self._is_alive = is_alive

    def clear_watch_of(self, node: NodeId) -> None:
        """Cancel every pending watch-buffer expectation on ``node`` (its
        guard just learned the node is dead: the pending forwards will
        never happen for benign reasons)."""
        stale = [key for key in self._expectations if key[1] == node]
        for key in stale:
            event = self._expectations.pop(key)
            event.cancel()
        if stale:
            self._note_watch_size()

    def reset(self) -> None:
        """Drop all volatile monitoring state (crash support): pending
        expectations, the overheard store, and recent-loss history.  The
        set of already-detected nodes survives — detection state rides the
        (nonvolatile) neighbor table's revocations."""
        for event in self._expectations.values():
            event.cancel()
        self._expectations.clear()
        self._overheard.clear()
        self._recent_losses.clear()
        self._note_watch_size()

    # ------------------------------------------------------------------
    # Collision awareness
    # ------------------------------------------------------------------
    def note_reception_loss(self, time: float) -> None:
        """Record that the radio sensed a garbled reception at ``time``."""
        self._loss_counter += 1
        self._recent_losses[self._loss_counter] = time
        # Drop-suppression consults losses as old as a watch-buffer entry
        # (δ seconds), so the history must stay at least that deep even
        # when δ exceeds the overheard window.
        cutoff = time - max(self.config.overheard_window, self.config.delta)
        while self._recent_losses:
            key, stamp = next(iter(self._recent_losses.items()))
            if stamp >= cutoff:
                break
            self._recent_losses.popitem(last=False)

    def _lost_since(self, since: float) -> bool:
        """Whether any reception loss happened at or after ``since``."""
        if not self._recent_losses:
            return False
        newest = next(reversed(self._recent_losses.values()))
        return newest >= since

    # ------------------------------------------------------------------
    # Observation entry points
    # ------------------------------------------------------------------
    def observe(self, frame: Frame) -> None:
        """Promiscuous tap: called for every frame the radio delivers."""
        self._process(frame, own=False)

    def observe_own(self, frame: Frame) -> None:
        """Called for every frame this node itself transmits."""
        self._process(frame, own=True)

    # ------------------------------------------------------------------
    # Core logic
    # ------------------------------------------------------------------
    def _process(self, frame: Frame, own: bool) -> None:
        if not self.enabled:
            return
        packet = frame.packet
        if isinstance(packet, RouteErrorPacket):
            # The transmitter legitimately cannot forward: clear the watch.
            if own or self.table.is_neighbor(frame.transmitter):
                pending = self._expectations.pop(
                    (packet.inner_key, frame.transmitter), None
                )
                if pending is not None:
                    pending.cancel()
                    self._note_watch_size()
            return
        if isinstance(packet, DataPacket):
            watched = self.config.watch_data
        else:
            watched = packet.monitored
        if not watched:
            return

        now = self.sim.now
        transmitter = frame.transmitter
        key = packet.key()

        if own or self.table.is_neighbor(transmitter):
            self._remember((key, transmitter), now)
            pending = self._expectations.pop((key, transmitter), None)
            if pending is not None:
                pending.cancel()
                self._note_watch_size()

        if not own:
            self._check_fabrication(frame, key, transmitter)

        self._maybe_watch(frame, key, transmitter, own)

    def _check_fabrication(self, frame: Frame, key: PacketKey, transmitter: NodeId) -> None:
        prev = frame.prev_hop
        if prev is None:
            return
        if not self.table.is_neighbor(transmitter):
            return
        if not self.table.is_neighbor(prev):
            # Not a guard of the claimed link: cannot judge.
            return
        if (key, prev) in self._overheard:
            return
        if self._lost_since(self.sim.now - self.config.fabrication_grace):
            # Our own radio was impaired recently: the missing transmission
            # may simply have been lost on us.  Withhold judgment.
            self.suppressed_accusations += 1
            return
        self.fabrications_seen += 1
        self._accuse(transmitter, self.config.v_fabricate, "fabrication", key)

    def _maybe_watch(self, frame: Frame, key: PacketKey, transmitter: NodeId, own: bool) -> None:
        packet = frame.packet
        if frame.link_dst is not None:
            watched_node = frame.link_dst
            if watched_node == self.owner:
                return
            if not self.table.is_active_neighbor(watched_node):
                return
            if not own and not self.table.is_neighbor(transmitter):
                return
            if self._is_terminal(packet, watched_node):
                return
            self._add_expectation(key, watched_node)
        elif self.config.watch_request_drops and isinstance(packet, RouteRequest):
            self._watch_request_forwarders(packet, key, transmitter, own)

    def _watch_request_forwarders(
        self, packet: RouteRequest, key: PacketKey, transmitter: NodeId, own: bool
    ) -> None:
        """Optional: expect every common neighbor to rebroadcast a flooded
        request unless it already did or is the origin/target."""
        if not own and not self.table.is_neighbor(transmitter):
            return
        if self._lost_since(self.sim.now - self.config.fabrication_grace):
            # Flood rebroadcasts pile up on the air, and this guard just
            # provably missed at least one reception — its view of who
            # already forwarded is unreliable, so expecting anyone to
            # forward again would manufacture false drops.  Same grace
            # logic as fabrication.
            self.suppressed_accusations += 1
            return
        reach = self.table.neighbors_of(transmitter)
        if reach is None:
            return
        for candidate in self.table.active_neighbors():
            if candidate in (packet.origin, packet.target, transmitter):
                continue
            if candidate not in reach:
                continue
            if (key, candidate) in self._overheard:
                continue
            self._add_expectation(key, candidate)

    @staticmethod
    def _is_terminal(packet, link_dst: NodeId) -> bool:
        """Whether ``link_dst`` legitimately consumes the packet (no forward
        expected)."""
        if isinstance(packet, RouteReply):
            return link_dst == packet.origin
        if isinstance(packet, DataPacket):
            return link_dst == packet.destination
        return True

    # ------------------------------------------------------------------
    # Watch buffer
    # ------------------------------------------------------------------
    def _add_expectation(self, key: PacketKey, watched: NodeId) -> None:
        if self._is_alive is not None and not self._is_alive(watched):
            return
        watch_key = (key, watched)
        if watch_key in self._expectations:
            return
        event = self.sim.schedule(
            self.config.delta, self._expectation_expired, watch_key, self.sim.now
        )
        self._expectations[watch_key] = event
        if len(self._expectations) > self.watch_buffer_peak:
            self.watch_buffer_peak = len(self._expectations)
        self._note_watch_size()

    def _expectation_expired(self, watch_key: WatchKey, created_at: float) -> None:
        if self._expectations.pop(watch_key, None) is None:
            return
        self._note_watch_size()
        key, watched = watch_key
        if self._lost_since(created_at):
            # The forward may have happened and been lost on us.
            self.suppressed_accusations += 1
            return
        self.drops_seen += 1
        self._accuse(watched, self.config.v_drop, "drop", key)

    @property
    def watch_buffer_size(self) -> int:
        """Current number of pending watch-buffer entries."""
        return len(self._expectations)

    def _note_watch_size(self) -> None:
        """Emit a throttled ``watch_buffer`` occupancy gauge record.

        Called after every size change; emits at most once per
        :data:`WATCH_SAMPLE_PERIOD` simulated seconds per guard, and only
        when the size actually differs from the last emitted sample —
        the time-series recorder (repro.obs.series) rebuilds the
        occupancy curve from these gauges.
        """
        size = len(self._expectations)
        if size == self._watch_sampled_size:
            return
        now = self.sim.now
        if (
            self._watch_sampled_at is not None
            and now - self._watch_sampled_at < WATCH_SAMPLE_PERIOD
        ):
            return
        self._watch_sampled_at = now
        self._watch_sampled_size = size
        self.trace.emit(
            now, "watch_buffer",
            guard=self.owner, size=size, peak=self.watch_buffer_peak,
        )

    # ------------------------------------------------------------------
    # MalC and detection
    # ------------------------------------------------------------------
    def _accuse(self, node: NodeId, value: int, reason: str, key: PacketKey) -> None:
        if node in self._detected or self.table.is_revoked(node):
            return
        if self._is_alive is not None and not self._is_alive(node):
            # Graceful degradation: the neighbor is believed dead, so the
            # missing forward is explained by the failure, not by malice.
            self.suspended_accusations += 1
            self.trace.emit(
                self.sim.now,
                "malc_suspended",
                guard=self.owner,
                accused=node,
                reason=reason,
            )
            return
        total = self.table.record_malicious(node, value, self.sim.now, self.config.malc_window)
        self.malc_total += value
        self.trace.emit(
            self.sim.now,
            "malc_increment",
            guard=self.owner,
            accused=node,
            value=value,
            reason=reason,
            packet=key,
            total=total,
        )
        if total >= self.config.c_t:
            self._detected.add(node)
            self.on_detection(node)

    def has_detected(self, node: NodeId) -> bool:
        """Whether this guard's own MalC for ``node`` crossed C_t."""
        return node in self._detected

    def malc(self, node: NodeId) -> int:
        """Convenience accessor for the windowed MalC of ``node``."""
        return self.table.malc(node, self.sim.now, self.config.malc_window)

    # ------------------------------------------------------------------
    # Overheard store maintenance
    # ------------------------------------------------------------------
    def _remember(self, watch_key: WatchKey, now: float) -> None:
        store = self._overheard
        if watch_key in store:
            store.move_to_end(watch_key)
        store[watch_key] = now
        cutoff = now - self.config.overheard_window
        while store:
            oldest_key, stamp = next(iter(store.items()))
            if stamp >= cutoff:
                break
            store.popitem(last=False)

    def heard_transmission(self, key: PacketKey, transmitter: NodeId) -> bool:
        """Whether the guard remembers ``transmitter`` sending ``key``."""
        return (key, transmitter) in self._overheard
