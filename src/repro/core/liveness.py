"""Neighbor liveness tracking — the failure-vs-malice disambiguator.

The paper assumes crash-free nodes, so a guard reads *any* missing forward
as evidence of malice.  Under churn that mis-isolates honest nodes: a
crashed neighbor drops everything, exactly like a wormhole endpoint.  This
module adds the standard failure-detector refinement (DESIGN.md 5b item
5, ablatable via ``LiteworpConfig.heartbeat_period = None``):

- every node broadcasts a small **heartbeat** each period (any overheard
  frame also counts as a life sign, so heartbeats cost nothing on busy
  links);
- a neighbor silent for ``liveness_timeout_beats`` periods becomes
  **SUSPECT** and is probed with exponential backoff;
- after ``probe_retries`` unanswered probes it is declared **DEAD**:
  guards *suspend* MalC accusations against it (and optionally void the
  mass already accrued — ``exonerate_dead``), routing stops using it, and
  pending watch-buffer entries on it are cleared;
- hearing anything from a DEAD neighbor (e.g. the heartbeats of a
  rebooted node) restores it to **ALIVE** and re-enables monitoring.

Revocation is orthogonal and sticky: a revoked node that reboots stays
revoked — liveness never forgives malice, it only withholds judgment
about silence.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, Optional

from repro.core.config import LiteworpConfig
from repro.core.tables import NeighborTable
from repro.net.node import Node
from repro.net.packet import Frame, HeartbeatPacket, NodeId, ProbeAckPacket, ProbePacket
from repro.sim.engine import Event, Simulator
from repro.sim.trace import TraceLog

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


class LivenessManager:
    """Per-node heartbeat emission and neighbor liveness state machine.

    Constructed by :class:`~repro.core.agent.LiteworpAgent` when
    ``config.heartbeat_period`` is set.  The owner wires
    :meth:`note_frame` as a promiscuous observer (every decodable frame is
    a life sign) and :meth:`on_frame` as a listener (probe / probe-ack
    handling).
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        table: NeighborTable,
        config: LiteworpConfig,
        trace: TraceLog,
        rng: random.Random,
        on_dead: Optional[Callable[[NodeId], None]] = None,
        on_recovered: Optional[Callable[[NodeId], None]] = None,
    ) -> None:
        if config.heartbeat_period is None:
            raise ValueError("LivenessManager requires heartbeat_period to be set")
        self.sim = sim
        self.node = node
        self.table = table
        self.config = config
        self.trace = trace
        self.rng = rng
        self.on_dead = on_dead
        self.on_recovered = on_recovered
        self._state: Dict[NodeId, str] = {}
        self._last_heard: Dict[NodeId, float] = {}
        self._probe_attempts: Dict[NodeId, int] = {}
        self._probe_deadlines: Dict[NodeId, Event] = {}
        self._beat_event: Optional[Event] = None
        self._beat_sequence = itertools.count()
        self._nonces = itertools.count(1)
        self._running = False
        self.heartbeats_sent = 0
        self.probes_sent = 0
        self.deaths_declared = 0
        self.recoveries_seen = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin heartbeating and neighbor supervision.  The first beat
        fires almost immediately, which doubles as the rejoin announcement
        after a reboot."""
        if self._running:
            return
        self._running = True
        now = self.sim.now
        for neighbor in self.table.neighbors():
            self._last_heard.setdefault(neighbor, now)
        self._schedule_beat(initial=True)

    def stop(self) -> None:
        """Halt heartbeats and cancel every pending probe (crash support)."""
        self._running = False
        if self._beat_event is not None:
            self._beat_event.cancel()
            self._beat_event = None
        for event in self._probe_deadlines.values():
            event.cancel()
        self._probe_deadlines.clear()
        self._probe_attempts.clear()

    def reset(self) -> None:
        """Stop and forget all volatile liveness state (crash support: a
        rebooted node has no memory of who it suspected before)."""
        self.stop()
        self._state.clear()
        self._last_heard.clear()

    @property
    def running(self) -> bool:
        """Whether the manager is currently heartbeating."""
        return self._running

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def state_of(self, neighbor: NodeId) -> str:
        """Current liveness state (ALIVE / SUSPECT / DEAD) of a neighbor."""
        return self._state.get(neighbor, ALIVE)

    def is_alive(self, neighbor: NodeId) -> bool:
        """Routing predicate: SUSPECT nodes still count as alive (a next
        hop is dropped only once declared DEAD)."""
        return self._state.get(neighbor, ALIVE) != DEAD

    def is_accusable(self, neighbor: NodeId) -> bool:
        """Accusation predicate for the monitor, stricter than
        :meth:`is_alive`: judgment is withheld the moment a neighbor is
        SUSPECT — silence under adjudication is not yet evidence of
        malice.  A node that keeps transmitting (as any attacker must)
        never leaves ALIVE, so this suspends nothing against real
        adversaries."""
        return self._state.get(neighbor, ALIVE) == ALIVE

    def dead_neighbors(self) -> tuple:
        """Neighbors currently believed DEAD, sorted."""
        return tuple(sorted(n for n, s in self._state.items() if s == DEAD))

    # ------------------------------------------------------------------
    # Heartbeat emission + supervision tick
    # ------------------------------------------------------------------
    def _period(self) -> float:
        """Effective heartbeat period, including this node's clock drift
        (a skewed clock stretches or shrinks every local interval)."""
        assert self.config.heartbeat_period is not None
        return self.config.heartbeat_period * (1.0 + self.node.clock_skew)

    def _schedule_beat(self, initial: bool = False) -> None:
        jitter = self.rng.uniform(0.0, self.config.heartbeat_jitter)
        delay = jitter if initial else self._period() + jitter
        self._beat_event = self.sim.schedule(delay, self._beat)

    def _beat(self) -> None:
        if not self._running:
            return
        self.node.broadcast(
            HeartbeatPacket(sender=self.node.node_id, sequence=next(self._beat_sequence)),
            jitter=0.0,
        )
        self.heartbeats_sent += 1
        self._supervise()
        self._schedule_beat()

    def _supervise(self) -> None:
        """Mark neighbors silent beyond the timeout SUSPECT and probe them."""
        assert self.config.heartbeat_period is not None
        timeout = self.config.heartbeat_period * self.config.liveness_timeout_beats
        now = self.sim.now
        for neighbor in self.table.active_neighbors():
            if self._state.get(neighbor, ALIVE) != ALIVE:
                continue
            last = self._last_heard.setdefault(neighbor, now)
            if now - last > timeout:
                self._suspect(neighbor)

    # ------------------------------------------------------------------
    # Probe state machine
    # ------------------------------------------------------------------
    def _suspect(self, neighbor: NodeId) -> None:
        self._state[neighbor] = SUSPECT
        self._probe_attempts[neighbor] = 0
        self.trace.emit(
            self.sim.now, "neighbor_suspect", node=self.node.node_id, neighbor=neighbor
        )
        self._send_probe(neighbor)

    def _send_probe(self, neighbor: NodeId) -> None:
        attempt = self._probe_attempts.get(neighbor, 0)
        probe = ProbePacket(
            sender=self.node.node_id, target=neighbor, nonce=next(self._nonces)
        )
        self.node.unicast(probe, next_hop=neighbor, jitter=self.config.heartbeat_jitter)
        self.probes_sent += 1
        deadline = self.config.probe_backoff * (2 ** attempt)
        self._probe_deadlines[neighbor] = self.sim.schedule(
            deadline, self._probe_timeout, neighbor
        )

    def _probe_timeout(self, neighbor: NodeId) -> None:
        if self._state.get(neighbor) != SUSPECT:
            return
        self._probe_deadlines.pop(neighbor, None)
        attempts = self._probe_attempts.get(neighbor, 0) + 1
        self._probe_attempts[neighbor] = attempts
        if attempts >= self.config.probe_retries:
            self._declare_dead(neighbor)
        else:
            self._send_probe(neighbor)

    def _declare_dead(self, neighbor: NodeId) -> None:
        self._state[neighbor] = DEAD
        self._probe_attempts.pop(neighbor, None)
        self.deaths_declared += 1
        self.trace.emit(
            self.sim.now, "neighbor_dead", node=self.node.node_id, neighbor=neighbor
        )
        if self.on_dead is not None:
            self.on_dead(neighbor)

    def _clear_suspicion(self, neighbor: NodeId) -> None:
        pending = self._probe_deadlines.pop(neighbor, None)
        if pending is not None:
            pending.cancel()
        self._probe_attempts.pop(neighbor, None)

    # ------------------------------------------------------------------
    # Incoming traffic
    # ------------------------------------------------------------------
    def note_frame(self, frame: Frame) -> None:
        """Promiscuous life-sign tap: any decodable frame from a known
        neighbor proves it is up, whatever the frame carries."""
        transmitter = frame.transmitter
        if transmitter == self.node.node_id or not self.table.is_neighbor(transmitter):
            return
        self._last_heard[transmitter] = self.sim.now
        previous = self._state.get(transmitter, ALIVE)
        if previous == ALIVE:
            return
        self._state[transmitter] = ALIVE
        self._clear_suspicion(transmitter)
        if previous == DEAD:
            self.recoveries_seen += 1
            self.trace.emit(
                self.sim.now,
                "neighbor_recovered",
                node=self.node.node_id,
                neighbor=transmitter,
            )
            if self.on_recovered is not None:
                self.on_recovered(transmitter)

    def on_frame(self, frame: Frame) -> None:
        """Listener: answer probes addressed to this node (the ack is the
        proof of life; it refreshes the prober's tap on reception)."""
        packet = frame.packet
        if isinstance(packet, ProbePacket) and packet.target == self.node.node_id:
            ack = ProbeAckPacket(
                sender=self.node.node_id, target=packet.sender, nonce=packet.nonce
            )
            self.node.unicast(ack, next_hop=packet.sender, jitter=0.0)
