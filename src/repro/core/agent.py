"""The per-node LITEWORP agent: composition of tables, monitor, isolation,
discovery, and the legitimacy filters.

The agent plugs into the node pipeline in four places:

- **observer** — the local monitor sees every frame (even ones the filters
  will reject: a guard must watch traffic it would itself discard);
- **filter** — the legitimacy checks: reject frames from non-neighbors
  (defeats high-power and relay wormholes), from revoked nodes, and
  forwarded frames whose announced previous hop is not a neighbor of the
  transmitter (the second-hop check, defeating naive encapsulation);
- **listener** — alert handling;
- **send filter** — refuse to transmit to revoked nodes, and feed the
  node's own transmissions to the monitor (a node guards its own links).

When ``config.heartbeat_period`` is set the agent additionally composes a
:class:`~repro.core.liveness.LivenessManager` and subscribes to the node's
lifecycle (crash / recover): a crash deactivates the filters and drops all
volatile monitor state; a recovery re-runs neighbor bootstrap against the
retained (nonvolatile) neighbor table, so revocations stay sticky across
reboots.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.core.config import LiteworpConfig
from repro.core.discovery import NeighborDiscovery, install_oracle_tables
from repro.core.isolation import IsolationManager
from repro.core.liveness import LivenessManager
from repro.core.monitor import LocalMonitor
from repro.core.tables import NeighborTable
from repro.crypto.keys import KeyStore
from repro.net.node import Node
from repro.net.packet import Frame, NodeId
from repro.routing.ondemand import OnDemandRouting
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog


class LiteworpAgent:
    """LITEWORP runtime for one node."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        keys: KeyStore,
        config: LiteworpConfig,
        trace: TraceLog,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.keys = keys
        self.config = config
        self.trace = trace
        self.rng = rng or random.Random(node.node_id)
        self.table = NeighborTable(node.node_id)
        self.isolation = IsolationManager(sim, node, self.table, keys, config, trace)
        self.monitor = LocalMonitor(
            sim,
            node.node_id,
            self.table,
            config,
            trace,
            on_detection=self.isolation.handle_local_detection,
        )
        self.discovery: Optional[NeighborDiscovery] = None
        self.activated = False
        self.rejects: Dict[str, int] = {"nonneighbor": 0, "revoked": 0, "secondhop": 0}
        self._router: Optional[OnDemandRouting] = None
        self._oracle_adjacency: Optional[Dict[NodeId, tuple]] = None
        self.liveness: Optional[LivenessManager] = None
        if config.heartbeat_period is not None:
            self.liveness = LivenessManager(
                sim,
                node,
                self.table,
                config,
                trace,
                self.rng,
                on_dead=self._neighbor_dead,
                on_recovered=self._neighbor_recovered,
            )
            self.monitor.set_liveness(self.liveness.is_accusable)
            node.add_observer(self.liveness.note_frame)
            node.add_listener(self.liveness.on_frame)
        node.add_observer(self._observe)
        node.add_filter(self._receive_filter)
        node.add_listener(self.isolation.on_frame)
        node.add_send_filter(self._send_filter)
        node.add_lifecycle_listener(self._lifecycle)

    # ------------------------------------------------------------------
    # Bootstrapping
    # ------------------------------------------------------------------
    def start_discovery(self) -> None:
        """Run the message-driven neighbor-discovery protocol, activating
        the filters when it completes."""
        self.discovery = NeighborDiscovery(
            self.sim,
            self.node,
            self.table,
            self.keys,
            self.config,
            self.trace,
            self.rng,
            on_complete=self.activate,
        )
        self.discovery.start()

    def install_oracle(self, adjacency: Dict[NodeId, tuple]) -> None:
        """Install ground-truth neighbor tables and activate immediately."""
        self._oracle_adjacency = adjacency
        install_oracle_tables(self.table, self.node.node_id, adjacency)
        self.activate()

    def activate(self) -> None:
        """Switch on the legitimacy filters and local monitoring."""
        self.activated = True
        if self.liveness is not None:
            self.liveness.start()

    def attach_router(self, router: OnDemandRouting) -> None:
        """Wire LITEWORP into a routing agent: revoked neighbors become
        unusable as next hops and their cached routes are evicted."""
        self._router = router
        router.usable = self.is_usable
        self.isolation.on_revocation(lambda bad: router.routes.evict_via(bad))

    # ------------------------------------------------------------------
    # Crash / recovery and neighbor liveness
    # ------------------------------------------------------------------
    def _lifecycle(self, alive: bool) -> None:
        if alive:
            self._rejoin()
        else:
            self._crash()

    def _crash(self) -> None:
        """The host node went down: all volatile protocol state is gone.
        The neighbor table (and its revocations) models nonvolatile
        storage and is retained across the outage."""
        self.activated = False
        self.monitor.reset()
        self.isolation.reset_pending()
        if self.liveness is not None:
            self.liveness.reset()

    def _rejoin(self) -> None:
        """Reboot: re-run neighbor bootstrap.  With an oracle installed the
        tables are refreshed in place; otherwise the authenticated
        discovery protocol runs again.  Either way revocations are sticky
        (``install_oracle_tables`` and discovery both go through
        ``add_neighbor``, which never resurrects a tombstone)."""
        if self._oracle_adjacency is not None:
            self.install_oracle(self._oracle_adjacency)
        else:
            self.start_discovery()

    def _neighbor_dead(self, neighbor: NodeId) -> None:
        """Liveness declared a neighbor DEAD: stop expecting forwards from
        it, optionally void the MalC mass its silence accrued, and evict
        routes through it."""
        self.monitor.clear_watch_of(neighbor)
        if self.config.exonerate_dead and not self.table.is_revoked(neighbor):
            self.table.clear_malc(neighbor)
        if self._router is not None:
            self._router.routes.evict_via(neighbor)

    def _neighbor_recovered(self, neighbor: NodeId) -> None:
        """A DEAD neighbor spoke again (rebooted): monitoring resumes
        automatically via the liveness predicate; nothing to undo."""

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_usable(self, node: NodeId) -> bool:
        """Routing hook: may ``node`` be used as a next hop?  Revoked
        neighbors never are; neighbors currently believed DEAD are skipped
        too (routing around failures, not just malice)."""
        if not self.activated:
            return True
        if not self.table.is_active_neighbor(node):
            return False
        if self.liveness is not None and not self.liveness.is_alive(node):
            return False
        return True

    def has_isolated(self, node: NodeId) -> bool:
        """Whether this agent has revoked ``node`` (by own detection or θ
        alerts)."""
        return self.table.is_revoked(node)

    # ------------------------------------------------------------------
    # Pipeline hooks
    # ------------------------------------------------------------------
    def _observe(self, frame: Frame) -> None:
        if self.activated:
            self.monitor.observe(frame)

    def _receive_filter(self, frame: Frame) -> bool:
        if not self.activated:
            return True
        transmitter = frame.transmitter
        if not self.table.is_neighbor(transmitter):
            self._reject("nonneighbor", frame)
            return False
        if self.table.is_revoked(transmitter):
            self._reject("revoked", frame)
            return False
        if frame.prev_hop is not None and self.config.second_hop_check:
            reach = self.table.neighbors_of(transmitter)
            if reach is not None and frame.prev_hop not in reach:
                self._reject("secondhop", frame)
                return False
        return True

    def _send_filter(self, frame: Frame) -> bool:
        if self.activated and frame.link_dst is not None:
            if self.table.is_revoked(frame.link_dst):
                self.trace.emit(
                    self.sim.now,
                    "send_blocked",
                    node=self.node.node_id,
                    next_hop=frame.link_dst,
                    **frame.describe(),
                )
                return False
        if self.activated:
            self.monitor.observe_own(frame)
        return True

    def _reject(self, reason: str, frame: Frame) -> None:
        self.rejects[reason] += 1
        self.trace.emit(
            self.sim.now,
            "frame_rejected",
            node=self.node.node_id,
            reason=reason,
            **frame.describe(),
        )
