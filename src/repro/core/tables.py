"""Neighbor tables and malicious counters.

Each node stores (paper 4.2.1 / 5.2):

- its **first-hop neighbor list** with, per neighbor, a status (active or
  revoked) and the MalC malicious counter;
- the **neighbor list of each neighbor** ``R_n`` (the second-hop view) used
  by the legitimacy checks and by guard determination;
- the **alert buffer**: which guards have accused which neighbor.

MalC is accumulated over a sliding window of ``window`` seconds, matching
the paper's per-window analysis (fabrications "occur within a certain time
window, T").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

NodeId = int

STATUS_ACTIVE = "active"
STATUS_REVOKED = "revoked"


@dataclass
class NeighborRecord:
    """Per-neighbor state: status plus timestamped MalC increments."""

    node: NodeId
    status: str = STATUS_ACTIVE
    malc_events: List[Tuple[float, int]] = field(default_factory=list)

    def malc(self, now: float, window: float) -> int:
        """MalC value over the trailing ``window`` seconds (prunes old)."""
        cutoff = now - window
        if self.malc_events and self.malc_events[0][0] < cutoff:
            self.malc_events = [(t, v) for t, v in self.malc_events if t >= cutoff]
        return sum(v for _, v in self.malc_events)

    def add(self, now: float, value: int, window: float) -> int:
        """Record an increment and return the updated windowed MalC."""
        self.malc_events.append((now, value))
        return self.malc(now, window)


class NeighborTable:
    """First/second-hop neighbor knowledge plus the alert buffer."""

    def __init__(self, owner: NodeId) -> None:
        self.owner = owner
        self._first: Dict[NodeId, NeighborRecord] = {}
        self._second: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._alerts: Dict[NodeId, Set[NodeId]] = {}

    # ------------------------------------------------------------------
    # First hop
    # ------------------------------------------------------------------
    def add_neighbor(self, node: NodeId) -> None:
        """Record a verified first-hop neighbor (idempotent)."""
        if node == self.owner:
            raise ValueError("a node is not its own neighbor")
        if node not in self._first:
            self._first[node] = NeighborRecord(node=node)

    def neighbors(self) -> Tuple[NodeId, ...]:
        """All first-hop neighbors, regardless of status."""
        return tuple(self._first)

    def active_neighbors(self) -> Tuple[NodeId, ...]:
        """First-hop neighbors not yet revoked."""
        return tuple(n for n, r in self._first.items() if r.status == STATUS_ACTIVE)

    def is_neighbor(self, node: NodeId) -> bool:
        """Whether ``node`` is a known first-hop neighbor (any status)."""
        return node in self._first

    def is_active_neighbor(self, node: NodeId) -> bool:
        """Whether ``node`` is a first-hop neighbor in good standing."""
        record = self._first.get(node)
        return record is not None and record.status == STATUS_ACTIVE

    def is_revoked(self, node: NodeId) -> bool:
        """Whether ``node`` has been revoked locally."""
        record = self._first.get(node)
        return record is not None and record.status == STATUS_REVOKED

    def remove_neighbor(self, node: NodeId) -> bool:
        """Forget a departed neighbor (mobility) — unless it is revoked, in
        which case the tombstone is kept so the node cannot re-enter
        cleanly later.  Returns True if an active record was removed."""
        record = self._first.get(node)
        if record is None or record.status == STATUS_REVOKED:
            return False
        del self._first[node]
        self._second.pop(node, None)
        return True

    def revoke(self, node: NodeId) -> bool:
        """Mark a neighbor revoked; returns False if it already was (or is
        unknown, in which case a tombstone record is created)."""
        record = self._first.get(node)
        if record is None:
            record = NeighborRecord(node=node, status=STATUS_REVOKED)
            self._first[node] = record
            return True
        if record.status == STATUS_REVOKED:
            return False
        record.status = STATUS_REVOKED
        return True

    # ------------------------------------------------------------------
    # Second hop
    # ------------------------------------------------------------------
    def set_neighbor_list(self, node: NodeId, neighbor_list: Tuple[NodeId, ...]) -> None:
        """Store the verified neighbor list ``R_node``."""
        self._second[node] = frozenset(neighbor_list)

    def neighbors_of(self, node: NodeId) -> Optional[FrozenSet[NodeId]]:
        """``R_node`` if known, else None."""
        return self._second.get(node)

    def knows_second_hop(self, node: NodeId) -> bool:
        """Whether ``R_node`` has been received and verified."""
        return node in self._second

    def second_hop_neighbors(self) -> FrozenSet[NodeId]:
        """Union of all stored neighbor lists minus self and first hop."""
        combined: Set[NodeId] = set()
        for members in self._second.values():
            combined.update(members)
        combined.discard(self.owner)
        combined.difference_update(self._first)
        return frozenset(combined)

    def guards_of_link(self, from_node: NodeId, to_node: NodeId) -> Tuple[NodeId, ...]:
        """Guard candidates for the link ``from_node -> to_node`` as derivable
        from this table (common members of both neighbor lists)."""
        near_from = self._second.get(from_node)
        near_to = self._second.get(to_node)
        if near_from is None or near_to is None:
            return ()
        guards = set(near_from & near_to)
        guards.add(from_node)
        guards.discard(to_node)
        return tuple(sorted(guards))

    # ------------------------------------------------------------------
    # MalC
    # ------------------------------------------------------------------
    def record_malicious(self, node: NodeId, value: int, now: float, window: float) -> int:
        """Add ``value`` to MalC(owner, node); returns the windowed total.

        Creating an implicit record for unknown nodes is deliberate —
        monitoring can only ever accuse first-hop neighbors, so the entry
        exists; tests may call this directly.
        """
        record = self._first.get(node)
        if record is None:
            record = NeighborRecord(node=node)
            self._first[node] = record
        return record.add(now, value, window)

    def malc(self, node: NodeId, now: float, window: float) -> int:
        """Current windowed MalC for ``node`` (0 if unknown)."""
        record = self._first.get(node)
        if record is None:
            return 0
        return record.malc(now, window)

    def clear_malc(self, node: NodeId) -> None:
        """Void all pending MalC mass for ``node`` (liveness exoneration:
        a neighbor declared DEAD had its drop evidence explained by the
        failure, not by malice).  Status is untouched."""
        record = self._first.get(node)
        if record is not None:
            record.malc_events.clear()

    # ------------------------------------------------------------------
    # Alert buffer
    # ------------------------------------------------------------------
    def add_alert(self, accused: NodeId, guard: NodeId) -> int:
        """Record an accepted alert; returns the count of distinct guards."""
        guards = self._alerts.setdefault(accused, set())
        guards.add(guard)
        return len(guards)

    def alert_count(self, accused: NodeId) -> int:
        """Distinct guards that have accused ``accused`` so far."""
        return len(self._alerts.get(accused, ()))

    def alert_guards(self, accused: NodeId) -> FrozenSet[NodeId]:
        """The accusing guard set for ``accused``."""
        return frozenset(self._alerts.get(accused, ()))

    # ------------------------------------------------------------------
    # Storage accounting (section 5.2)
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Modelled memory footprint: 5 bytes per first-hop entry (4-byte id
        + 1-byte MalC) plus 4 bytes per stored second-hop id."""
        first = 5 * len(self._first)
        second = sum(4 * len(members) for members in self._second.values())
        return first + second
