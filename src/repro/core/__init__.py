"""LITEWORP — the paper's primary contribution.

The protocol has three cooperating pieces, composed per node by
:class:`~repro.core.agent.LiteworpAgent`:

1. **Secure two-hop neighbor discovery**
   (:class:`~repro.core.discovery.NeighborDiscovery`): HELLO broadcast,
   authenticated replies, authenticated neighbor-list broadcast.  After it
   completes, every node knows its first- and second-hop neighbors and the
   legitimacy filters activate.  Experiments may instead install the
   tables from the topology oracle — the paper *assumes* discovery
   completes securely within the compromise-threshold time T_CT.
2. **Local monitoring** (:class:`~repro.core.monitor.LocalMonitor`): the
   guard logic — watch buffer with deadline δ, fabrication detection
   (announced previous hop never transmitted the packet), drop detection
   (watched packet never forwarded), and the per-neighbor malicious
   counters ``MalC`` with weights ``V_f``/``V_d`` over a sliding window.
3. **Response and isolation** (:class:`~repro.core.isolation.IsolationManager`):
   local revocation when ``MalC`` crosses ``C_t``, authenticated alerts to
   the accused node's neighbors, and isolation once ``θ`` distinct valid
   guards have alerted (θ = detection confidence index).
"""

from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.core.discovery import NeighborDiscovery
from repro.core.isolation import IsolationManager
from repro.core.liveness import ALIVE, DEAD, SUSPECT, LivenessManager
from repro.core.monitor import LocalMonitor
from repro.core.tables import NeighborTable

__all__ = [
    "ALIVE",
    "DEAD",
    "SUSPECT",
    "IsolationManager",
    "LiteworpAgent",
    "LiteworpConfig",
    "LivenessManager",
    "LocalMonitor",
    "NeighborDiscovery",
    "NeighborTable",
]
