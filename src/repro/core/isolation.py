"""Response and isolation (paper 4.2.2).

When a guard's MalC for a neighbor A crosses C_t, the guard:

1. revokes A in its own neighbor list,
2. sends an authenticated alert to every neighbor of A it knows from the
   stored neighbor list ``R_A`` — directly when the recipient is also the
   guard's neighbor, else through one relay (the paper's simulation
   "informs all the neighbors of the detected node through multiple
   unicasts").

A recipient D verifies (a) the alert's authenticity under the pairwise key
with the guard, (b) that the guard is a neighbor of A (i.e. actually in a
position to watch A), and (c) that A is D's neighbor.  After alerts from
``θ`` distinct guards, D marks A revoked: it will no longer accept packets
from A or send packets to A.  Isolation is purely local to A's
neighborhood — quick and cheap.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import LiteworpConfig
from repro.core.tables import NeighborTable
from repro.crypto.auth import Authenticator
from repro.crypto.keys import KeyStore
from repro.net.node import Node
from repro.net.packet import AlertAckPacket, AlertPacket, Frame, NodeId
from repro.sim.engine import Event, Simulator
from repro.sim.trace import TraceLog

AlertKey = Tuple[NodeId, NodeId]  # (accused, recipient)


class IsolationManager:
    """Per-node alert emission, verification, and revocation."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        table: NeighborTable,
        keys: KeyStore,
        config: LiteworpConfig,
        trace: TraceLog,
    ) -> None:
        self.sim = sim
        self.node = node
        self.table = table
        self.keys = keys
        self.config = config
        self.trace = trace
        self.alerts_sent = 0
        self.alerts_accepted = 0
        self.alerts_rejected = 0
        self.alert_retransmits = 0
        self.acks_verified = 0
        self._revocation_callbacks: List[Callable[[NodeId], None]] = []
        # Acked dissemination (config.alert_retries > 0): outstanding
        # retransmission deadlines per (accused, recipient).
        self._pending_acks: Dict[AlertKey, Event] = {}

    def on_revocation(self, callback: Callable[[NodeId], None]) -> None:
        """Register a callback fired whenever a node is revoked locally."""
        self._revocation_callbacks.append(callback)

    def reset_pending(self) -> None:
        """Cancel every outstanding retransmission deadline (crash support:
        a guard that went down loses its volatile send state)."""
        for event in self._pending_acks.values():
            event.cancel()
        self._pending_acks.clear()

    # ------------------------------------------------------------------
    # Guard side: detection -> revoke + alert
    # ------------------------------------------------------------------
    def handle_local_detection(self, accused: NodeId) -> None:
        """Called by the monitor when MalC(owner, accused) crossed C_t."""
        me = self.node.node_id
        newly = self.table.revoke(accused)
        self.trace.emit(self.sim.now, "guard_detection", guard=me, accused=accused)
        if newly:
            self._fire_revocation(accused)
        for recipient in self._alert_recipients(accused):
            self._send_alert(accused, recipient)

    def _alert_recipients(self, accused: NodeId) -> List[NodeId]:
        me = self.node.node_id
        known = self.table.neighbors_of(accused)
        recipients = set(known) if known is not None else set()
        # Common first-hop neighbors are also at risk even if R_accused is
        # incomplete.
        for neighbor in self.table.active_neighbors():
            reach = self.table.neighbors_of(neighbor)
            if reach is not None and accused in reach:
                recipients.add(neighbor)
        recipients.discard(me)
        recipients.discard(accused)
        return sorted(recipients)

    def _send_alert(self, accused: NodeId, recipient: NodeId) -> None:
        if not self._transmit_alert(accused, recipient):
            return
        self.alerts_sent += 1
        self.trace.emit(
            self.sim.now, "alert_sent", guard=self.node.node_id,
            accused=accused, recipient=recipient,
        )
        if self.config.alert_retries > 0:
            self._arm_retry(accused, recipient, attempt=0)

    def _transmit_alert(self, accused: NodeId, recipient: NodeId) -> bool:
        """Build and transmit one alert (direct or one-relay).  The relay
        is re-chosen per transmission so retransmissions route around
        neighbors that died or were revoked in the meantime."""
        me = self.node.node_id
        key = self.keys.key_with(recipient)
        if key is None:
            return False
        auth = Authenticator.tag(key, "alert", me, accused, recipient)
        if self.table.is_active_neighbor(recipient):
            packet = AlertPacket(guard=me, accused=accused, recipient=recipient, auth=auth)
            return self.node.unicast(packet, next_hop=recipient, prev_hop=None)
        if not self.config.alert_relay:
            return False
        relay = self._pick_relay(accused, recipient)
        if relay is None:
            self.trace.emit(
                self.sim.now, "alert_undeliverable", guard=me,
                accused=accused, recipient=recipient,
            )
            return False
        packet = AlertPacket(
            guard=me, accused=accused, recipient=recipient, auth=auth, relay_via=relay
        )
        return self.node.unicast(packet, next_hop=relay, prev_hop=None)

    # ------------------------------------------------------------------
    # Bounded retransmission (acked dissemination)
    # ------------------------------------------------------------------
    def _arm_retry(self, accused: NodeId, recipient: NodeId, attempt: int) -> None:
        key = (accused, recipient)
        stale = self._pending_acks.get(key)
        if stale is not None:
            # Re-detection (e.g. after a crash-recover cycle) restarts the
            # backoff ladder; the superseded deadline must not keep firing
            # alongside the new one.
            stale.cancel()
        deadline = self.config.alert_retry_timeout * (2 ** attempt)
        self._pending_acks[key] = self.sim.schedule(
            deadline, self._retry_alert, accused, recipient, attempt
        )

    def _retry_alert(self, accused: NodeId, recipient: NodeId, attempt: int) -> None:
        key = (accused, recipient)
        if key not in self._pending_acks:
            return
        del self._pending_acks[key]
        if attempt >= self.config.alert_retries:
            self.trace.emit(
                self.sim.now, "alert_abandoned", guard=self.node.node_id,
                accused=accused, recipient=recipient, attempts=attempt,
            )
            return
        if not self._transmit_alert(accused, recipient):
            # Transmission could not be attempted (relay gone, key missing,
            # link down): the same backoff ladder cannot succeed, so stop
            # instead of burning the remaining retry budget.
            return
        self.alert_retransmits += 1
        self.trace.emit(
            self.sim.now, "alert_retransmit", guard=self.node.node_id,
            accused=accused, recipient=recipient, attempt=attempt + 1,
        )
        self._arm_retry(accused, recipient, attempt + 1)

    def _ack_alert(self, packet: AlertPacket, via: NodeId) -> None:
        """Recipient side: confirm delivery so the guard stops resending.
        The ack retraces the delivery path (direct, or back through the
        relay that brought the alert)."""
        me = self.node.node_id
        key = self.keys.key_with(packet.guard)
        if key is None:
            return
        ack = AlertAckPacket(
            sender=me,
            guard=packet.guard,
            accused=packet.accused,
            auth=Authenticator.tag(key, "alert-ack", me, packet.accused, packet.guard),
            relay_via=None if via == packet.guard else via,
        )
        self.node.unicast(ack, next_hop=via, prev_hop=None)

    def _on_alert_ack(self, packet: AlertAckPacket) -> None:
        me = self.node.node_id
        if packet.relay_via == me and packet.guard != me:
            # Relay leg: hand the ack on to the guard.
            if self.table.is_active_neighbor(packet.guard):
                forwarded = AlertAckPacket(
                    sender=packet.sender, guard=packet.guard,
                    accused=packet.accused, auth=packet.auth, relay_via=None,
                )
                self.node.unicast(forwarded, next_hop=packet.guard, prev_hop=packet.sender)
            return
        if packet.guard != me:
            return
        key = self.keys.key_with(packet.sender)
        if not Authenticator.verify(
            key, packet.auth, "alert-ack", packet.sender, packet.accused, me
        ):
            return
        pending = self._pending_acks.pop((packet.accused, packet.sender), None)
        if pending is not None:
            pending.cancel()
            self.acks_verified += 1
            self.trace.emit(
                self.sim.now, "alert_ack_verified", guard=me,
                accused=packet.accused, recipient=packet.sender,
            )

    def _pick_relay(self, accused: NodeId, recipient: NodeId) -> Optional[NodeId]:
        """A neighbor (other than the accused) that can reach the recipient."""
        for neighbor in self.table.active_neighbors():
            if neighbor in (accused, recipient):
                continue
            reach = self.table.neighbors_of(neighbor)
            if reach is not None and recipient in reach:
                return neighbor
        return None

    # ------------------------------------------------------------------
    # Recipient side
    # ------------------------------------------------------------------
    def on_frame(self, frame: Frame) -> None:
        """Listener entry point for alert and alert-ack packets."""
        packet = frame.packet
        me = self.node.node_id
        if frame.link_dst != me:
            return
        if isinstance(packet, AlertAckPacket):
            self._on_alert_ack(packet)
            return
        if not isinstance(packet, AlertPacket):
            return
        if packet.relay_via == me and packet.recipient != me:
            self._relay_alert(packet)
            return
        if packet.recipient != me:
            return
        self._accept_alert(packet, via=frame.transmitter)

    def _relay_alert(self, packet: AlertPacket) -> None:
        """Forward a two-hop alert to its recipient (end-to-end tag keeps us
        honest: we cannot alter the accusation)."""
        if not self.table.is_active_neighbor(packet.recipient):
            return
        forwarded = AlertPacket(
            guard=packet.guard,
            accused=packet.accused,
            recipient=packet.recipient,
            auth=packet.auth,
            relay_via=None,
        )
        self.node.unicast(forwarded, next_hop=packet.recipient, prev_hop=packet.guard)

    def _accept_alert(self, packet: AlertPacket, via: Optional[NodeId] = None) -> None:
        me = self.node.node_id
        guard, accused = packet.guard, packet.accused
        key = self.keys.key_with(guard)
        if not Authenticator.verify(key, packet.auth, "alert", guard, accused, me):
            self.alerts_rejected += 1
            self.trace.emit(
                self.sim.now, "alert_rejected", node=me, guard=guard,
                accused=accused, reason="auth",
            )
            return
        if not self.table.is_neighbor(accused):
            self.alerts_rejected += 1
            self.trace.emit(
                self.sim.now, "alert_rejected", node=me, guard=guard,
                accused=accused, reason="not_my_neighbor",
            )
            return
        reach = self.table.neighbors_of(accused)
        if reach is not None and guard not in reach and guard != accused:
            # The claimed guard is not a neighbor of the accused: it cannot
            # possibly watch A's links.
            self.alerts_rejected += 1
            self.trace.emit(
                self.sim.now, "alert_rejected", node=me, guard=guard,
                accused=accused, reason="not_a_guard",
            )
            return
        if self.config.alert_retries > 0 and via is not None:
            self._ack_alert(packet, via)
        if guard in self.table.alert_guards(accused):
            # Retransmitted duplicate: the ack above is the useful part.
            return
        self.alerts_accepted += 1
        count = self.table.add_alert(accused, guard)
        self.trace.emit(
            self.sim.now, "alert_accepted", node=me, guard=guard,
            accused=accused, count=count,
        )
        if count >= self.config.theta and not self.table.is_revoked(accused):
            self.table.revoke(accused)
            self.trace.emit(self.sim.now, "isolation", node=me, accused=accused, alerts=count)
            self._fire_revocation(accused)

    def _fire_revocation(self, accused: NodeId) -> None:
        for callback in self._revocation_callbacks:
            callback(accused)
