"""Response and isolation (paper 4.2.2).

When a guard's MalC for a neighbor A crosses C_t, the guard:

1. revokes A in its own neighbor list,
2. sends an authenticated alert to every neighbor of A it knows from the
   stored neighbor list ``R_A`` — directly when the recipient is also the
   guard's neighbor, else through one relay (the paper's simulation
   "informs all the neighbors of the detected node through multiple
   unicasts").

A recipient D verifies (a) the alert's authenticity under the pairwise key
with the guard, (b) that the guard is a neighbor of A (i.e. actually in a
position to watch A), and (c) that A is D's neighbor.  After alerts from
``θ`` distinct guards, D marks A revoked: it will no longer accept packets
from A or send packets to A.  Isolation is purely local to A's
neighborhood — quick and cheap.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.config import LiteworpConfig
from repro.core.tables import NeighborTable
from repro.crypto.auth import Authenticator
from repro.crypto.keys import KeyStore
from repro.net.node import Node
from repro.net.packet import AlertPacket, Frame, NodeId
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog


class IsolationManager:
    """Per-node alert emission, verification, and revocation."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        table: NeighborTable,
        keys: KeyStore,
        config: LiteworpConfig,
        trace: TraceLog,
    ) -> None:
        self.sim = sim
        self.node = node
        self.table = table
        self.keys = keys
        self.config = config
        self.trace = trace
        self.alerts_sent = 0
        self.alerts_accepted = 0
        self.alerts_rejected = 0
        self._revocation_callbacks: List[Callable[[NodeId], None]] = []

    def on_revocation(self, callback: Callable[[NodeId], None]) -> None:
        """Register a callback fired whenever a node is revoked locally."""
        self._revocation_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Guard side: detection -> revoke + alert
    # ------------------------------------------------------------------
    def handle_local_detection(self, accused: NodeId) -> None:
        """Called by the monitor when MalC(owner, accused) crossed C_t."""
        me = self.node.node_id
        newly = self.table.revoke(accused)
        self.trace.emit(self.sim.now, "guard_detection", guard=me, accused=accused)
        if newly:
            self._fire_revocation(accused)
        for recipient in self._alert_recipients(accused):
            self._send_alert(accused, recipient)

    def _alert_recipients(self, accused: NodeId) -> List[NodeId]:
        me = self.node.node_id
        known = self.table.neighbors_of(accused)
        recipients = set(known) if known is not None else set()
        # Common first-hop neighbors are also at risk even if R_accused is
        # incomplete.
        for neighbor in self.table.active_neighbors():
            reach = self.table.neighbors_of(neighbor)
            if reach is not None and accused in reach:
                recipients.add(neighbor)
        recipients.discard(me)
        recipients.discard(accused)
        return sorted(recipients)

    def _send_alert(self, accused: NodeId, recipient: NodeId) -> None:
        me = self.node.node_id
        key = self.keys.key_with(recipient)
        if key is None:
            return
        auth = Authenticator.tag(key, "alert", me, accused, recipient)
        if self.table.is_active_neighbor(recipient):
            packet = AlertPacket(guard=me, accused=accused, recipient=recipient, auth=auth)
            self.node.unicast(packet, next_hop=recipient, prev_hop=None)
            self.alerts_sent += 1
            return
        if not self.config.alert_relay:
            return
        relay = self._pick_relay(accused, recipient)
        if relay is None:
            self.trace.emit(
                self.sim.now, "alert_undeliverable", guard=me,
                accused=accused, recipient=recipient,
            )
            return
        packet = AlertPacket(
            guard=me, accused=accused, recipient=recipient, auth=auth, relay_via=relay
        )
        self.node.unicast(packet, next_hop=relay, prev_hop=None)
        self.alerts_sent += 1

    def _pick_relay(self, accused: NodeId, recipient: NodeId) -> Optional[NodeId]:
        """A neighbor (other than the accused) that can reach the recipient."""
        for neighbor in self.table.active_neighbors():
            if neighbor in (accused, recipient):
                continue
            reach = self.table.neighbors_of(neighbor)
            if reach is not None and recipient in reach:
                return neighbor
        return None

    # ------------------------------------------------------------------
    # Recipient side
    # ------------------------------------------------------------------
    def on_frame(self, frame: Frame) -> None:
        """Listener entry point for alert packets."""
        packet = frame.packet
        if not isinstance(packet, AlertPacket):
            return
        me = self.node.node_id
        if frame.link_dst != me:
            return
        if packet.relay_via == me and packet.recipient != me:
            self._relay_alert(packet)
            return
        if packet.recipient != me:
            return
        self._accept_alert(packet)

    def _relay_alert(self, packet: AlertPacket) -> None:
        """Forward a two-hop alert to its recipient (end-to-end tag keeps us
        honest: we cannot alter the accusation)."""
        if not self.table.is_active_neighbor(packet.recipient):
            return
        forwarded = AlertPacket(
            guard=packet.guard,
            accused=packet.accused,
            recipient=packet.recipient,
            auth=packet.auth,
            relay_via=None,
        )
        self.node.unicast(forwarded, next_hop=packet.recipient, prev_hop=packet.guard)

    def _accept_alert(self, packet: AlertPacket) -> None:
        me = self.node.node_id
        guard, accused = packet.guard, packet.accused
        key = self.keys.key_with(guard)
        if not Authenticator.verify(key, packet.auth, "alert", guard, accused, me):
            self.alerts_rejected += 1
            self.trace.emit(
                self.sim.now, "alert_rejected", node=me, guard=guard,
                accused=accused, reason="auth",
            )
            return
        if not self.table.is_neighbor(accused):
            self.alerts_rejected += 1
            self.trace.emit(
                self.sim.now, "alert_rejected", node=me, guard=guard,
                accused=accused, reason="not_my_neighbor",
            )
            return
        reach = self.table.neighbors_of(accused)
        if reach is not None and guard not in reach and guard != accused:
            # The claimed guard is not a neighbor of the accused: it cannot
            # possibly watch A's links.
            self.alerts_rejected += 1
            self.trace.emit(
                self.sim.now, "alert_rejected", node=me, guard=guard,
                accused=accused, reason="not_a_guard",
            )
            return
        self.alerts_accepted += 1
        count = self.table.add_alert(accused, guard)
        self.trace.emit(
            self.sim.now, "alert_accepted", node=me, guard=guard,
            accused=accused, count=count,
        )
        if count >= self.config.theta and not self.table.is_revoked(accused):
            self.table.revoke(accused)
            self.trace.emit(self.sim.now, "isolation", node=me, accused=accused, alerts=count)
            self._fire_revocation(accused)

    def _fire_revocation(self, accused: NodeId) -> None:
        for callback in self._revocation_callbacks:
            callback(accused)
