"""Secure two-hop neighbor discovery (paper 4.2.1).

On deployment each node broadcasts HELLO; hearers send back an
authenticated reply; the announcer verifies each reply, builds its
neighbor list ``R_A``, and broadcasts it with one authentication tag per
member so every neighbor can verify and store it.  The process runs once
(the paper's system model guarantees no insider is present within two hops
during this window) and yields the first- and second-hop tables.

Because the real protocol rides the lossy channel, experiments may instead
install the same tables from the topology oracle
(:meth:`LiteworpAgent.install_oracle`), which matches the paper's
*assumption* that discovery completes correctly within T_CT.  The
message-driven protocol here is exercised by its own tests and example.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Set

from repro.core.config import LiteworpConfig
from repro.core.tables import NeighborTable
from repro.crypto.auth import Authenticator
from repro.crypto.keys import KeyStore
from repro.net.node import Node
from repro.net.packet import Frame, HelloPacket, HelloReplyPacket, NeighborListPacket, NodeId
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog


class NeighborDiscovery:
    """Message-driven HELLO / reply / neighbor-list exchange for one node."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        table: NeighborTable,
        keys: KeyStore,
        config: LiteworpConfig,
        trace: TraceLog,
        rng: random.Random,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.table = table
        self.keys = keys
        self.config = config
        self.trace = trace
        self.rng = rng
        self.on_complete = on_complete
        self._verified_responders: Set[NodeId] = set()
        self._replied_to: Set[NodeId] = set()
        self._completed = False
        node.add_listener(self.on_frame)

    def start(self) -> None:
        """Kick off the discovery schedule for this node."""
        for repeat in range(self.config.hello_repeats):
            delay = repeat * 0.4 + self.rng.uniform(0.0, self.config.hello_jitter)
            self.sim.schedule(delay, self._broadcast_hello)
        # The list is broadcast twice: a lost broadcast would leave a
        # neighbor without our R_A and trip the second-hop check later.
        self.sim.schedule(self.config.list_time, self._broadcast_neighbor_list)
        self.sim.schedule(
            self.config.list_time + 0.4 * (self.config.activate_time - self.config.list_time),
            self._broadcast_neighbor_list,
        )
        self.sim.schedule(self.config.activate_time, self._complete)

    # ------------------------------------------------------------------
    # Outgoing
    # ------------------------------------------------------------------
    def _broadcast_hello(self) -> None:
        self.node.broadcast(HelloPacket(sender=self.node.node_id), jitter=0.0)

    def _broadcast_neighbor_list(self) -> None:
        me = self.node.node_id
        members = tuple(sorted(self._verified_responders))
        for member in members:
            self.table.add_neighbor(member)
        auths = []
        for member in members:
            key = self.keys.key_with(member)
            if key is None:
                continue
            auths.append((member, Authenticator.tag(key, "nlist", me, members)))
        packet = NeighborListPacket(sender=me, neighbors=members, auths=tuple(auths))
        self.node.broadcast(packet, jitter=self.config.hello_jitter)

    def _complete(self) -> None:
        if self._completed:
            return
        self._completed = True
        self.trace.emit(
            self.sim.now,
            "nd_complete",
            node=self.node.node_id,
            neighbors=len(self.table.neighbors()),
            second_hop_lists=sum(
                1 for n in self.table.neighbors() if self.table.knows_second_hop(n)
            ),
        )
        if self.on_complete is not None:
            self.on_complete()

    # ------------------------------------------------------------------
    # Incoming
    # ------------------------------------------------------------------
    def on_frame(self, frame: Frame) -> None:
        """Listener for HELLO / reply / neighbor-list packets."""
        if self._completed:
            return
        packet = frame.packet
        me = self.node.node_id
        if isinstance(packet, HelloPacket):
            announcer = packet.sender
            if announcer == me:
                return
            key = self.keys.key_with(announcer)
            if key is None:
                # An outsider cannot produce a verifiable reply; stay silent.
                return
            # Deliberately reply to every HELLO repetition: the announcer
            # deduplicates, and redundancy rides out reply collisions.
            self._replied_to.add(announcer)
            reply = HelloReplyPacket(
                sender=me,
                announcer=announcer,
                auth=Authenticator.tag(key, "hello-reply", me, announcer),
            )
            self.node.unicast(reply, next_hop=announcer, jitter=self.config.reply_jitter)
        elif isinstance(packet, HelloReplyPacket):
            if packet.announcer != me or frame.link_dst != me:
                return
            responder = packet.sender
            key = self.keys.key_with(responder)
            if not Authenticator.verify(key, packet.auth, "hello-reply", responder, me):
                self.trace.emit(
                    self.sim.now, "nd_reply_rejected", node=me, responder=responder
                )
                return
            self._verified_responders.add(responder)
        elif isinstance(packet, NeighborListPacket):
            sender = packet.sender
            if sender == me:
                return
            tag = packet.auth_for(me)
            if tag is None:
                return
            key = self.keys.key_with(sender)
            if not Authenticator.verify(key, tag, "nlist", sender, packet.neighbors):
                self.trace.emit(self.sim.now, "nd_list_rejected", node=me, sender=sender)
                return
            self.table.add_neighbor(sender)
            self.table.set_neighbor_list(sender, packet.neighbors)


def install_oracle_tables(
    table: NeighborTable,
    owner: NodeId,
    adjacency: Dict[NodeId, tuple],
) -> None:
    """Populate a node's tables directly from ground truth.

    Equivalent to a lossless run of the discovery protocol; used by the
    experiments (the paper assumes discovery is secure and complete).
    """
    for neighbor in adjacency[owner]:
        table.add_neighbor(neighbor)
        table.set_neighbor_list(neighbor, tuple(adjacency[neighbor]))
