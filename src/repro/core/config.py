"""LITEWORP protocol parameters.

The symbols follow the paper: δ (watch-buffer deadline), V_f / V_d
(malicious-counter increments for fabrication / drop), C_t (local
detection threshold), θ (detection confidence index), and T (the time
window over which malicious activity is accumulated — Table 2 uses 200).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class LiteworpConfig:
    """All LITEWORP tunables.

    Attributes
    ----------
    delta:
        δ — seconds a guard waits for the watched node to forward a packet
        before accusing it of dropping.
    v_fabricate, v_drop:
        V_f and V_d — MalC increments for fabricating / dropping a control
        packet.  Fabrication is stronger evidence (a collision can make a
        drop look real far more easily than a fabrication).
    c_t:
        C_t — a guard revokes a neighbor when its MalC over the window
        reaches this value.
    theta:
        θ — alerts from this many distinct guards isolate a node.
    malc_window:
        T — sliding window (seconds) for MalC accumulation.
    overheard_window:
        How long a guard remembers that a neighbor transmitted a given
        packet (must exceed the duration of one route-discovery flood).
    fabrication_grace:
        Collision awareness: a fabrication accusation is withheld when the
        guard's own radio lost a reception within this many seconds before
        the suspicious forward (the missing evidence may have been lost on
        the guard, not absent from the air).  Drop accusations use the
        watch entry's own lifetime as the grace window.
    watch_request_drops:
        Also create drop expectations for flooded route requests (off by
        default: duplicate suppression makes legitimate non-forwarding
        common, so this setting trades detection speed for false alarms).
    watch_data:
        Extend monitoring to data packets (off in the paper; enabling it is
        the extension that catches the protocol-deviation attacker when it
        drops data).
    second_hop_check:
        Discard forwarded packets whose announced previous hop is not a
        neighbor of the transmitter (paper 4.2.1).
    monitor_enabled:
        Master switch for guard monitoring (isolation still works from
        received alerts).
    alert_relay:
        Deliver alerts to two-hop-away neighbors of the accused through a
        common neighbor (otherwise only direct neighbors get them).
    hello_jitter, reply_jitter, list_time, activate_time:
        Neighbor-discovery schedule: HELLO within [0, hello_jitter], reply
        within [0, reply_jitter] of hearing it, neighbor-list broadcast at
        ``list_time``, filters/monitoring active at ``activate_time``.
    hello_repeats:
        HELLO retransmissions to ride out collisions during discovery.
    heartbeat_period:
        Liveness refinement (DESIGN.md 5b item 5): nodes broadcast a
        heartbeat every this many seconds and track when each neighbor was
        last heard.  ``None`` (the default) disables the liveness layer
        entirely and recovers the paper's raw behaviour, where a crashed
        neighbor is indistinguishable from a malicious dropper.
    heartbeat_jitter:
        Uniform jitter added to each heartbeat to avoid synchronisation.
    liveness_timeout_beats:
        Silence longer than this many heartbeat periods marks a neighbor
        SUSPECT and starts probing.
    probe_retries:
        Unacknowledged probes (with exponential backoff) before a SUSPECT
        neighbor is declared DEAD.
    probe_backoff:
        Initial probe-response timeout in seconds; doubles per retry.
    exonerate_dead:
        Void the windowed MalC mass of a neighbor on its ALIVE -> DEAD
        transition: the accumulated drop evidence is better explained by
        the failure than by malice.  (A malicious node gains nothing by
        playing dead: while "dead" it is not used for routing and cannot
        attack, and its MalC re-accrues the moment it resumes.)
    alert_retries:
        Application-level retransmissions of an unacknowledged ALERT
        (0, the default, recovers the paper's fire-and-forget alerts).
        When positive, alert recipients return an authenticated ack and
        guards retransmit with exponential backoff until acked or the
        budget is spent — revocations then survive lossy bursts.
    alert_retry_timeout:
        Initial ALERT ack timeout in seconds; doubles per retransmission.
    """

    delta: float = 0.8
    v_fabricate: int = 2
    v_drop: int = 1
    c_t: int = 8
    theta: int = 3
    malc_window: float = 200.0
    overheard_window: float = 10.0
    fabrication_grace: float = 1.5
    watch_request_drops: bool = False
    watch_data: bool = False
    second_hop_check: bool = True
    monitor_enabled: bool = True
    alert_relay: bool = True
    hello_jitter: float = 0.3
    reply_jitter: float = 0.3
    list_time: float = 2.0
    activate_time: float = 3.0
    hello_repeats: int = 2
    heartbeat_period: Optional[float] = None
    heartbeat_jitter: float = 0.1
    liveness_timeout_beats: float = 3.0
    probe_retries: int = 3
    probe_backoff: float = 1.0
    exonerate_dead: bool = True
    alert_retries: int = 0
    alert_retry_timeout: float = 1.0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.v_fabricate < 1 or self.v_drop < 1:
            raise ValueError("MalC increments must be at least 1")
        if self.c_t < 1:
            raise ValueError("c_t must be at least 1")
        if self.theta < 1:
            raise ValueError("theta must be at least 1")
        if self.malc_window <= 0:
            raise ValueError("malc_window must be positive")
        if self.overheard_window <= 0:
            raise ValueError("overheard_window must be positive")
        if self.fabrication_grace < 0:
            raise ValueError("fabrication_grace must be non-negative")
        if self.hello_repeats < 1:
            raise ValueError("hello_repeats must be at least 1")
        if not 0 < self.list_time < self.activate_time:
            raise ValueError("need 0 < list_time < activate_time")
        if self.heartbeat_period is not None and self.heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be positive (or None to disable)")
        if self.heartbeat_jitter < 0:
            raise ValueError("heartbeat_jitter must be non-negative")
        if self.liveness_timeout_beats <= 0:
            raise ValueError("liveness_timeout_beats must be positive")
        if self.probe_retries < 1:
            raise ValueError("probe_retries must be at least 1")
        if self.probe_backoff <= 0:
            raise ValueError("probe_backoff must be positive")
        if self.alert_retries < 0:
            raise ValueError("alert_retries must be non-negative")
        if self.alert_retry_timeout <= 0:
            raise ValueError("alert_retry_timeout must be positive")
