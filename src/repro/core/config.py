"""LITEWORP protocol parameters.

The symbols follow the paper: δ (watch-buffer deadline), V_f / V_d
(malicious-counter increments for fabrication / drop), C_t (local
detection threshold), θ (detection confidence index), and T (the time
window over which malicious activity is accumulated — Table 2 uses 200).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LiteworpConfig:
    """All LITEWORP tunables.

    Attributes
    ----------
    delta:
        δ — seconds a guard waits for the watched node to forward a packet
        before accusing it of dropping.
    v_fabricate, v_drop:
        V_f and V_d — MalC increments for fabricating / dropping a control
        packet.  Fabrication is stronger evidence (a collision can make a
        drop look real far more easily than a fabrication).
    c_t:
        C_t — a guard revokes a neighbor when its MalC over the window
        reaches this value.
    theta:
        θ — alerts from this many distinct guards isolate a node.
    malc_window:
        T — sliding window (seconds) for MalC accumulation.
    overheard_window:
        How long a guard remembers that a neighbor transmitted a given
        packet (must exceed the duration of one route-discovery flood).
    fabrication_grace:
        Collision awareness: a fabrication accusation is withheld when the
        guard's own radio lost a reception within this many seconds before
        the suspicious forward (the missing evidence may have been lost on
        the guard, not absent from the air).  Drop accusations use the
        watch entry's own lifetime as the grace window.
    watch_request_drops:
        Also create drop expectations for flooded route requests (off by
        default: duplicate suppression makes legitimate non-forwarding
        common, so this setting trades detection speed for false alarms).
    watch_data:
        Extend monitoring to data packets (off in the paper; enabling it is
        the extension that catches the protocol-deviation attacker when it
        drops data).
    second_hop_check:
        Discard forwarded packets whose announced previous hop is not a
        neighbor of the transmitter (paper 4.2.1).
    monitor_enabled:
        Master switch for guard monitoring (isolation still works from
        received alerts).
    alert_relay:
        Deliver alerts to two-hop-away neighbors of the accused through a
        common neighbor (otherwise only direct neighbors get them).
    hello_jitter, reply_jitter, list_time, activate_time:
        Neighbor-discovery schedule: HELLO within [0, hello_jitter], reply
        within [0, reply_jitter] of hearing it, neighbor-list broadcast at
        ``list_time``, filters/monitoring active at ``activate_time``.
    hello_repeats:
        HELLO retransmissions to ride out collisions during discovery.
    """

    delta: float = 0.8
    v_fabricate: int = 2
    v_drop: int = 1
    c_t: int = 8
    theta: int = 3
    malc_window: float = 200.0
    overheard_window: float = 10.0
    fabrication_grace: float = 1.5
    watch_request_drops: bool = False
    watch_data: bool = False
    second_hop_check: bool = True
    monitor_enabled: bool = True
    alert_relay: bool = True
    hello_jitter: float = 0.3
    reply_jitter: float = 0.3
    list_time: float = 2.0
    activate_time: float = 3.0
    hello_repeats: int = 2

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.v_fabricate < 1 or self.v_drop < 1:
            raise ValueError("MalC increments must be at least 1")
        if self.c_t < 1:
            raise ValueError("c_t must be at least 1")
        if self.theta < 1:
            raise ValueError("theta must be at least 1")
        if self.malc_window <= 0:
            raise ValueError("malc_window must be positive")
        if self.overheard_window <= 0:
            raise ValueError("overheard_window must be positive")
        if self.fabrication_grace < 0:
            raise ValueError("fabrication_grace must be non-negative")
        if self.hello_repeats < 1:
            raise ValueError("hello_repeats must be at least 1")
        if not 0 < self.list_time < self.activate_time:
            raise ValueError("need 0 < list_time < activate_time")
