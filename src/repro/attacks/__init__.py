"""Wormhole attack implementations (paper section 3).

The five launch modes of the taxonomy:

==============================  =============================  ==========================
Mode                            Class                          LITEWORP outcome
==============================  =============================  ==========================
Packet encapsulation (3.1)      :class:`TunnelRouting` +       detected (fabrication /
                                coordinator mode               REP drop at the guards)
                                ``"encapsulation"``
Out-of-band channel (3.2)       :class:`TunnelRouting` +       detected (same mechanism)
                                coordinator mode ``"outofband"``
High-power transmission (3.3)   :class:`HighPowerRouting`      rejected (non-neighbor
                                                               check)
Packet relay (3.4)              :class:`RelayAttacker`         rejected (non-neighbor
                                                               check)
Protocol deviation (3.5)        :class:`RushingRouting`        **not** detected (paper
                                                               4.2.3) unless the
                                                               ``watch_data`` extension
                                                               is enabled
==============================  =============================  ==========================

Tunnelled modes are orchestrated by :class:`WormholeCoordinator`, which
also provides the ground truth the metrics need (which discoveries were
tainted, when each colluder first acted, how many packets it swallowed).
"""

from repro.attacks.agents import HighPowerRouting, RelayAttacker, RushingRouting, TunnelRouting
from repro.attacks.coordinator import WormholeCoordinator
from repro.attacks.taxonomy import ATTACK_MODES, AttackMode, taxonomy_table

__all__ = [
    "ATTACK_MODES",
    "AttackMode",
    "HighPowerRouting",
    "RelayAttacker",
    "RushingRouting",
    "TunnelRouting",
    "WormholeCoordinator",
    "taxonomy_table",
]
