"""Wormhole coordination between colluding nodes.

The coordinator is the tunnel: it moves packets between colluders either
*instantaneously* (out-of-band channel — exactly how the paper's simulation
models it) or with a per-hop *encapsulation* delay along the multihop path
between the colluders (the paper assumes "the colluding nodes always have a
route between them").

It is also the experiments' ground-truth ledger: which route discoveries
the wormhole touched (``tainted``), when each colluder first acted
(isolation-latency measurement starts there), and how many data packets
each end swallowed.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.net.network import Network
from repro.net.packet import NodeId, RouteReply, RouteRequest
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.attacks.agents import TunnelRouting

OUT_OF_BAND_LATENCY = 1e-4

TUNNEL_MODES = ("outofband", "encapsulation")


class WormholeCoordinator:
    """Shared state and tunnel for a set of colluding wormhole nodes."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        trace: TraceLog,
        mode: str = "outofband",
        encap_hop_delay: float = 0.02,
        rng: Optional[random.Random] = None,
    ) -> None:
        if mode not in TUNNEL_MODES:
            raise ValueError(f"mode must be one of {TUNNEL_MODES}, got {mode!r}")
        if encap_hop_delay <= 0:
            raise ValueError("encap_hop_delay must be positive")
        self.sim = sim
        self.network = network
        self.trace = trace
        self.mode = mode
        self.encap_hop_delay = encap_hop_delay
        self.rng = rng or random.Random(0)
        self.colluders: List[NodeId] = []
        self.agents: Dict[NodeId, "TunnelRouting"] = {}
        self.tainted: Set[Tuple[NodeId, int]] = set()
        self.first_activity: Dict[NodeId, float] = {}
        self.drops: Dict[NodeId, int] = {}
        self.attack_start: Optional[float] = None
        self._hop_cache: Dict[Tuple[NodeId, NodeId], int] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register(self, agent: "TunnelRouting") -> None:
        """Add a colluding agent to the wormhole."""
        node_id = agent.node.node_id
        self.colluders.append(node_id)
        self.agents[node_id] = agent
        self.drops[node_id] = 0

    def activate_at(self, start_time: float) -> None:
        """Schedule the attack to begin at ``start_time``."""
        self.attack_start = start_time
        self.sim.schedule_at(start_time, self._activate_all)

    def _activate_all(self) -> None:
        for agent in self.agents.values():
            agent.activate()
        self.trace.emit(self.sim.now, "attack_activated", colluders=tuple(self.colluders))

    # ------------------------------------------------------------------
    # Tunnel
    # ------------------------------------------------------------------
    def tunnel_request(self, source: NodeId, request: RouteRequest) -> None:
        """Send a captured route request to every other colluder."""
        self.note_activity(source)
        for peer in self.colluders:
            if peer == source:
                continue
            self.sim.schedule(
                self._tunnel_delay(source, peer),
                self.agents[peer].receive_tunneled_request,
                request,
                source,
            )

    def tunnel_reply(self, source: NodeId, peer: NodeId, reply: RouteReply) -> None:
        """Send a captured route reply back through the tunnel to ``peer``."""
        self.note_activity(source)
        self.sim.schedule(
            self._tunnel_delay(source, peer),
            self.agents[peer].receive_tunneled_reply,
            reply,
            source,
        )

    def _tunnel_delay(self, a: NodeId, b: NodeId) -> float:
        if self.mode == "outofband":
            return OUT_OF_BAND_LATENCY
        return self._hops_between(a, b) * self.encap_hop_delay

    def _hops_between(self, a: NodeId, b: NodeId) -> int:
        key = (a, b) if a <= b else (b, a)
        hops = self._hop_cache.get(key)
        if hops is None:
            hops = self.network.topology.hop_distance(a, b) or 1
            self._hop_cache[key] = hops
        return hops

    # ------------------------------------------------------------------
    # Ground truth for metrics
    # ------------------------------------------------------------------
    def note_activity(self, node: NodeId) -> None:
        """Record the first visible malicious act of ``node``."""
        if node not in self.first_activity:
            self.first_activity[node] = self.sim.now
            self.trace.emit(self.sim.now, "wormhole_activity", node=node)

    def mark_tainted(self, origin: NodeId, request_id: int) -> None:
        """Mark a route discovery as wormhole-influenced."""
        self.tainted.add((origin, request_id))

    def is_tainted(self, origin: NodeId, request_id: int) -> bool:
        """Whether the wormhole touched discovery ``(origin, request_id)``."""
        return (origin, request_id) in self.tainted

    def note_drop(self, node: NodeId, packet_key: Tuple) -> None:
        """Record a data packet swallowed by colluder ``node``."""
        self.note_activity(node)
        self.drops[node] = self.drops.get(node, 0) + 1
        self.trace.emit(self.sim.now, "malicious_drop", node=node, packet=packet_key)

    @property
    def total_drops(self) -> int:
        """Data packets swallowed by all colluders."""
        return sum(self.drops.values())
