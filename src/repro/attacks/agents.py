"""Malicious node behaviours.

Every attack agent *is* a routing agent: before activation it behaves like
an honest node (a compromised node blends in), after activation it deviates
according to its mode.  Subclassing :class:`OnDemandRouting` and overriding
the protected hooks keeps the protocol mechanics identical to honest nodes,
so the only differences are the deliberate deviations.
"""

from __future__ import annotations

import random
from typing import Dict, Set, Tuple

from repro.attacks.coordinator import WormholeCoordinator
from repro.net.network import Network
from repro.net.node import Node
from repro.net.packet import DataPacket, Frame, NodeId, RouteReply, RouteRequest
from repro.routing.config import RoutingConfig
from repro.routing.ondemand import OnDemandRouting
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog

TUNNEL_REBROADCAST_JITTER = 0.002


class _ActivatableRouting(OnDemandRouting):
    """Shared machinery: honest until :meth:`activate` is called."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        config: RoutingConfig,
        trace: TraceLog,
        rng: random.Random,
    ) -> None:
        super().__init__(sim, node, config, trace, rng)
        self.active = False

    def activate(self) -> None:
        """Begin malicious behaviour."""
        self.active = True


class TunnelRouting(_ActivatableRouting):
    """A wormhole colluder for the encapsulation / out-of-band modes.

    Once active, the node tunnels every route request it hears to its
    colluding peers instead of rebroadcasting it.  The far end rebroadcasts
    the request *without the tunnel hops* and with a fabricated
    previous-hop announcement (the paper's "smart" choice: a genuine
    neighbor, so the two-hop check passes and only the guards can tell).
    Replies travel back through the tunnel and are injected toward the
    origin the same way.  Data packets routed through either end are
    silently dropped.

    ``fake_prev_strategy``:

    - ``"smart"`` — announce a random legitimate neighbor (guards detect a
      fabrication, paper figure 4 second choice);
    - ``"naive"`` — announce the colluding peer (every receiver's two-hop
      check rejects the packet outright, first choice).
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        config: RoutingConfig,
        trace: TraceLog,
        rng: random.Random,
        coordinator: WormholeCoordinator,
        network: Network,
        fake_prev_strategy: str = "smart",
    ) -> None:
        if fake_prev_strategy not in ("smart", "naive"):
            raise ValueError(f"unknown strategy {fake_prev_strategy!r}")
        super().__init__(sim, node, config, trace, rng)
        self.coordinator = coordinator
        self.network = network
        self.fake_prev_strategy = fake_prev_strategy
        # Far-end bookkeeping: which colluder tunnelled us this discovery.
        self._tunnel_peer: Dict[Tuple[NodeId, int], NodeId] = {}
        coordinator.register(self)

    # -- request side ---------------------------------------------------
    def _on_request(self, frame: Frame, request: RouteRequest) -> None:
        if not self.active:
            super()._on_request(frame, request)
            return
        me = self.node.node_id
        if request.origin == me or request.target == me:
            return
        key = request.key()
        if key in self._seen_requests:
            return
        self._seen_requests.add(key)
        self._reverse[(request.origin, request.request_id)] = frame.transmitter
        self.coordinator.tunnel_request(me, request)

    def receive_tunneled_request(self, request: RouteRequest, from_colluder: NodeId) -> None:
        """Far-end: replay the tunnelled request locally."""
        if not self.active:
            return
        me = self.node.node_id
        key = request.key()
        if key in self._seen_requests:
            return
        self._seen_requests.add(key)
        self._tunnel_peer[(request.origin, request.request_id)] = from_colluder
        self.coordinator.mark_tainted(request.origin, request.request_id)
        self.coordinator.note_activity(me)
        forged = RouteRequest(
            origin=request.origin,
            request_id=request.request_id,
            target=request.target,
            hop_count=request.hop_count + 1,  # tunnel hops are hidden
            path=request.path + (me,),
        )
        self.node.broadcast(
            forged, prev_hop=self._fake_prev(from_colluder), jitter=TUNNEL_REBROADCAST_JITTER
        )

    # -- reply side -------------------------------------------------------
    def _on_reply(self, frame: Frame, reply: RouteReply) -> None:
        if not self.active:
            super()._on_reply(frame, reply)
            return
        me = self.node.node_id
        if reply.origin == me:
            super()._on_reply(frame, reply)
            return
        peer = self._tunnel_peer.get((reply.origin, reply.request_id))
        if peer is not None:
            # Far end: the reply came back to us; tunnel it home.  We do
            # NOT forward a local copy, which is the drop the guards of the
            # incoming link detect via the watch-buffer deadline.
            self.coordinator.tunnel_reply(me, peer, reply)
            return
        # Ordinary reverse-path reply: forward honestly to stay on routes.
        super()._on_reply(frame, reply)

    def receive_tunneled_reply(self, reply: RouteReply, from_colluder: NodeId) -> None:
        """Near-end: inject the reply toward the origin."""
        if not self.active:
            return
        me = self.node.node_id
        next_hop = self._reverse.get((reply.origin, reply.request_id))
        if next_hop is None:
            self.trace.emit(
                self.sim.now, "wormhole_rep_stranded", node=me,
                origin=reply.origin, request_id=reply.request_id,
            )
            return
        # Install the forward route so the victim's data flows to us (and
        # gets swallowed in _on_data).
        self.routes.install(
            destination=reply.target,
            next_hop=from_colluder,
            now=self.sim.now,
            hop_count=reply.hop_count,
            path=reply.path,
            request_id=reply.request_id,
        )
        self.node.unicast(reply, next_hop=next_hop, prev_hop=self._fake_prev(from_colluder))

    # -- data side --------------------------------------------------------
    def _on_data(self, frame: Frame, packet: DataPacket) -> None:
        if not self.active or packet.destination == self.node.node_id:
            super()._on_data(frame, packet)
            return
        self.coordinator.note_drop(self.node.node_id, packet.key())

    # -- helpers ------------------------------------------------------------
    def _fake_prev(self, colluder: NodeId) -> NodeId:
        if self.fake_prev_strategy == "naive":
            return colluder
        me = self.node.node_id
        neighbors = [
            n for n in self.network.neighbors(me) if n not in self.coordinator.colluders
        ]
        if not neighbors:
            return colluder
        return self.rng.choice(neighbors)


class HighPowerRouting(_ActivatableRouting):
    """High-power transmission wormhole (paper 3.3): one node rebroadcasts
    requests at a multiple of the legal range so distant nodes hear it
    directly, shortcutting the hop count.  LITEWORP nodes outside the legal
    range reject the frame because the transmitter is not in their neighbor
    list (symmetric-channel assumption)."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        config: RoutingConfig,
        trace: TraceLog,
        rng: random.Random,
        network: Network,
        range_multiplier: float = 3.0,
    ) -> None:
        if range_multiplier <= 1.0:
            raise ValueError("range_multiplier must exceed 1")
        super().__init__(sim, node, config, trace, rng)
        self.network = network
        self.range_multiplier = range_multiplier
        self.data_drops = 0

    def activate(self) -> None:
        super().activate()
        self.network.set_high_power(self.node.node_id, self.range_multiplier)
        self.trace.emit(self.sim.now, "wormhole_activity", node=self.node.node_id)

    def _forward_request(self, frame: Frame, request: RouteRequest) -> None:
        if not self.active:
            super()._forward_request(frame, request)
            return
        self.node.broadcast(
            request.forwarded_by(self.node.node_id),
            prev_hop=frame.transmitter,
            jitter=0.0,
            tx_range=self.network.topology.tx_range * self.range_multiplier,
        )

    def _on_data(self, frame: Frame, packet: DataPacket) -> None:
        if not self.active or packet.destination == self.node.node_id:
            super()._on_data(frame, packet)
            return
        self.data_drops += 1
        self.trace.emit(
            self.sim.now, "malicious_drop", node=self.node.node_id, packet=packet.key()
        )


class RushingRouting(_ActivatableRouting):
    """Protocol-deviation wormhole (paper 3.5): forward requests without
    the random backoff to win the duplicate-suppression race, then drop the
    attracted data.  The forwarding itself is truthful — which is exactly
    why base LITEWORP cannot detect it (watching data packets, the
    ``watch_data`` extension, can)."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        config: RoutingConfig,
        trace: TraceLog,
        rng: random.Random,
    ) -> None:
        super().__init__(sim, node, config, trace, rng)
        self.data_drops = 0

    def activate(self) -> None:
        super().activate()
        self.trace.emit(self.sim.now, "wormhole_activity", node=self.node.node_id)

    def _forward_request(self, frame: Frame, request: RouteRequest) -> None:
        jitter = 0.0 if self.active else None
        self.node.broadcast(
            request.forwarded_by(self.node.node_id),
            prev_hop=frame.transmitter,
            jitter=jitter if jitter is not None else self.config.forward_jitter,
        )

    def _on_data(self, frame: Frame, packet: DataPacket) -> None:
        if not self.active or packet.destination == self.node.node_id:
            super()._on_data(frame, packet)
            return
        self.data_drops += 1
        self.trace.emit(
            self.sim.now, "malicious_drop", node=self.node.node_id, packet=packet.key()
        )


class RelayAttacker:
    """Packet-relay wormhole (paper 3.4): a link-layer parasite.

    The attacker verbatim-retransmits frames between two victims that are
    its neighbors but not each other's, so each victim believes the other
    is one hop away.  Control frames are relayed (to keep the fake link
    alive and attract routes over it); data frames are swallowed.

    This agent sits *below* routing: it is an observer on the malicious
    node and spoofs the original transmitter in the frames it re-sends.
    The malicious node runs an ordinary routing agent alongside to blend in.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        victims: Tuple[NodeId, NodeId],
        trace: TraceLog,
    ) -> None:
        if victims[0] == victims[1]:
            raise ValueError("victims must be two distinct nodes")
        self.sim = sim
        self.node = node
        self.victims = victims
        self.trace = trace
        self.active = False
        self.relayed = 0
        self.data_drops = 0
        self._recently_relayed: Set[int] = set()
        node.add_observer(self.on_frame)

    def activate(self) -> None:
        """Begin relaying between the victims."""
        self.active = True
        self.trace.emit(self.sim.now, "wormhole_activity", node=self.node.node_id)

    def on_frame(self, frame: Frame) -> None:
        """Observer: relay control frames between the victims verbatim."""
        if not self.active:
            return
        if frame.transmitter not in self.victims:
            return
        if frame.packet.uid in self._recently_relayed:
            return
        if isinstance(frame.packet, DataPacket):
            # Selective forwarding: the fake link silently eats data.
            other = self.victims[1] if frame.transmitter == self.victims[0] else self.victims[0]
            if frame.link_dst == other:
                self.data_drops += 1
                self.trace.emit(
                    self.sim.now, "malicious_drop",
                    node=self.node.node_id, packet=frame.packet.key(),
                )
            return
        self._recently_relayed.add(frame.packet.uid)
        if len(self._recently_relayed) > 4096:
            self._recently_relayed.clear()
        self.relayed += 1
        # Spoofed retransmission: the frame still names the victim as its
        # transmitter, which is the whole point of the relay mode.
        self.node.raw_send(frame, jitter=0.001)
