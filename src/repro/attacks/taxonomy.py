"""The wormhole attack-mode taxonomy (paper Table 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class AttackMode:
    """One row of the taxonomy."""

    key: str
    name: str
    min_compromised_nodes: int
    special_requirements: str
    liteworp_detects: bool
    paper_section: str


ATTACK_MODES: Tuple[AttackMode, ...] = (
    AttackMode(
        key="encapsulation",
        name="Packet encapsulation",
        min_compromised_nodes=2,
        special_requirements="None",
        liteworp_detects=True,
        paper_section="3.1",
    ),
    AttackMode(
        key="outofband",
        name="Out-of-band channel",
        min_compromised_nodes=2,
        special_requirements="Out-of-band link",
        liteworp_detects=True,
        paper_section="3.2",
    ),
    AttackMode(
        key="highpower",
        name="High power transmission",
        min_compromised_nodes=1,
        special_requirements="High energy source",
        liteworp_detects=True,
        paper_section="3.3",
    ),
    AttackMode(
        key="relay",
        name="Packet relay",
        min_compromised_nodes=1,
        special_requirements="None",
        liteworp_detects=True,
        paper_section="3.4",
    ),
    AttackMode(
        key="deviation",
        name="Protocol deviations",
        min_compromised_nodes=1,
        special_requirements="None",
        liteworp_detects=False,
        paper_section="3.5",
    ),
)


def mode_by_key(key: str) -> AttackMode:
    """Look up a taxonomy row by its short key."""
    for mode in ATTACK_MODES:
        if mode.key == key:
            return mode
    raise KeyError(f"unknown attack mode {key!r}")


def taxonomy_table() -> List[Tuple[str, int, str]]:
    """Table 1 rows: (mode name, min #compromised nodes, requirements)."""
    return [
        (mode.name, mode.min_compromised_nodes, mode.special_requirements)
        for mode in ATTACK_MODES
    ]
