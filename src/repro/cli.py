"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``run`` — one scenario with chosen attack/defense, printing the report.
- ``figure {8,9,10}`` — regenerate a simulation figure (``--jobs`` fans
  replications across processes, ``--no-cache`` skips the on-disk result
  cache).  The pre-unification spellings ``fig8``/``fig9``/``fig10``
  survive as thin deprecated aliases.
- ``campaign`` — declarative multi-sweep batches: ``run`` executes a
  TOML/JSON campaign spec through a pluggable, supervised backend with an
  append-only completion journal (``--resume`` skips every journaled job
  and yields byte-identical aggregates; ``--timeout`` preempts hung
  workers; poison jobs are dead-lettered; SIGINT/SIGTERM flush the
  journal and exit 75), ``plan`` prints the compiled job list, ``status``
  summarises a journal, and ``doctor`` audits/repairs a damaged journal
  or result cache.
- ``matrix`` — every registered defense × every requested attack mode
  through the campaign orchestrator (one journaled, resumable campaign
  per attack; the malicious-node count co-varies with the mode),
  rendered as one markdown + JSON detection-rate / isolation-latency /
  overhead matrix report.
- ``fig6`` — the analytical coverage curves.
- ``cost`` — the section-5.2 cost table.
- ``taxonomy`` — Table 1.
- ``chaos`` — fault-injection run: guards crash mid-run under a loss
  burst; reports detection survival and false-isolation counts.
- ``bench`` — the microbenchmark suite; writes ``BENCH_*.json``.
- ``trace`` — observability tooling: ``export`` streams one run's trace
  to JSONL, ``stats`` summarises an export, ``check`` validates it
  against the schema registry and the protocol invariants.
- ``report`` — one markdown + JSON run report (summary metrics, node
  counters, detection-latency decomposition, time series, invariant
  verdict) from an existing JSONL export, or — with ``--live`` — from a
  fresh run consumed through a live trace subscription.  Both paths
  produce byte-identical JSON for the same run.

The figure and chaos commands accept ``--trace-out`` / ``--trace-strict``
/ ``--trace-ring`` to stream their traces while they run (``--trace-out``
bypasses result-cache reads so the export is always complete).

The global ``--profile`` flag wraps any command in cProfile and prints
the top cumulative hot spots afterwards.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.cost import CostModel
from repro.analysis.coverage import (
    CoverageParams,
    detection_vs_neighbors,
    false_alarm_vs_neighbors,
)
from repro.attacks.taxonomy import taxonomy_table
from repro.experiments.chaos import ChaosConfig, run_chaos
from repro.experiments.figures import run_fig8, run_fig9, run_fig10
from repro.experiments.scenario import (
    ATTACK_MODES,
    DEFENSES,
    ScenarioConfig,
    build_scenario,
)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LITEWORP reproduction — run scenarios and regenerate the paper's figures",
    )
    parser.add_argument("--profile", action="store_true",
                        help="run the command under cProfile and print hot spots")
    parser.add_argument("--profile-top", type=int, default=20, metavar="N",
                        help="how many cumulative hot spots to print (default 20)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sweep_options(sub_parser: argparse.ArgumentParser) -> None:
        """Options shared by every replication-sweep command."""
        sub_parser.add_argument("--jobs", type=int, default=0, metavar="N",
                                help="worker processes for replications "
                                     "(0/1 serial, -1 one per CPU)")
        sub_parser.add_argument("--no-cache", dest="use_cache", action="store_false",
                                help="do not read or write the on-disk result cache")
        sub_parser.add_argument("--cache-dir", default=".repro-cache",
                                help="result cache directory (default .repro-cache)")
        add_trace_options(sub_parser)

    def add_trace_options(sub_parser: argparse.ArgumentParser) -> None:
        """Observability flags shared by figure/chaos/run commands."""
        sub_parser.add_argument("--trace-out", default=None, metavar="FILE",
                                help="stream every trace record to this JSONL file "
                                     "(disables result-cache reads)")
        sub_parser.add_argument("--trace-strict", action="store_true",
                                help="validate every emitted record against the "
                                     "trace schema registry (raises on mismatch)")
        sub_parser.add_argument("--trace-ring", type=int, default=None, metavar="N",
                                help="bound the in-memory trace to the newest N "
                                     "records (sinks still see everything)")

    run_p = sub.add_parser("run", help="run one scenario and print the report")
    run_p.add_argument("--nodes", type=int, default=50)
    run_p.add_argument("--duration", type=float, default=240.0)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--attack", choices=ATTACK_MODES, default="outofband")
    run_p.add_argument("--malicious", type=int, default=2)
    run_p.add_argument("--attack-start", type=float, default=40.0)
    run_p.add_argument("--defense", choices=DEFENSES, default="liteworp")
    run_p.add_argument("--json", dest="json_path", default=None,
                       help="also write the metric report as JSON to this path")

    def add_figure_options(sub_parser: argparse.ArgumentParser) -> None:
        """The one flag set every figure command shares.

        ``nodes``/``duration``/``runs`` default to None here; the handler
        fills per-figure defaults (see ``_FIGURE_DEFAULTS``) so the
        unified command and the deprecated aliases behave identically.
        """
        sub_parser.add_argument("--nodes", type=int, default=None)
        sub_parser.add_argument("--duration", type=float, default=None)
        sub_parser.add_argument("--runs", type=int, default=None)
        sub_parser.add_argument("--seed", type=int, default=8)
        add_sweep_options(sub_parser)

    figure_p = sub.add_parser(
        "figure", help="regenerate a simulation figure from the paper"
    )
    figure_p.add_argument("number", choices=("8", "9", "10"),
                          help="which figure to regenerate")
    add_figure_options(figure_p)

    # Deprecated aliases for the unified ``figure`` command; each prints a
    # one-line stderr notice and delegates.
    for number, legacy_help in (
        ("8", "cumulative dropped packets vs time"),
        ("9", "fractions vs number of compromised nodes"),
        ("10", "detection probability / latency vs theta"),
    ):
        legacy_p = sub.add_parser(
            f"fig{number}", help=f"[deprecated: use 'figure {number}'] {legacy_help}"
        )
        add_figure_options(legacy_p)

    campaign_p = sub.add_parser(
        "campaign", help="resumable multi-sweep campaigns from a declarative spec"
    )
    campaign_sub = campaign_p.add_subparsers(dest="campaign_command", required=True)

    crun_p = campaign_sub.add_parser(
        "run", help="execute a TOML/JSON campaign spec (journaled, resumable)"
    )
    crun_p.add_argument("spec", help="campaign spec file (.toml or .json)")
    crun_p.add_argument("--backend", choices=("inline", "process", "thread"),
                        default="inline",
                        help="execution backend (default inline)")
    crun_p.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="workers for process/thread backends "
                             "(0/1 serial, -1 one per CPU)")
    crun_p.add_argument("--journal", default=None, metavar="FILE",
                        help="completion journal path (default: next to the "
                             "spec as <spec>.journal.jsonl)")
    crun_p.add_argument("--no-journal", dest="journaled", action="store_false",
                        help="disable the completion journal (and resume)")
    crun_p.add_argument("--resume", action="store_true",
                        help="skip every job the journal already records")
    crun_p.add_argument("--max-jobs", type=int, default=None, metavar="N",
                        help="execute at most N new jobs, then stop "
                             "(exit 75; resume later with --resume)")
    crun_p.add_argument("--retries", type=int, default=2, metavar="N",
                        help="per-job retries on worker crash (default 2)")
    crun_p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-job wall-clock timeout; hung workers are "
                             "preempted (default: none)")
    crun_p.add_argument("--no-quarantine", dest="quarantine",
                        action="store_false",
                        help="abort the campaign when a job exhausts its "
                             "retries instead of dead-lettering it")
    crun_p.add_argument("--no-fsync", dest="fsync", action="store_false",
                        help="skip fsync on journal/cache writes (faster, "
                             "not crash-durable)")
    crun_p.add_argument("--harness-faults", default=None, metavar="FILE",
                        help="inject a harness fault plan (JSON) for chaos "
                             "testing")
    crun_p.add_argument("--fault-state", default=None, metavar="DIR",
                        help="fault firing-state directory (share between "
                             "run and resume; default <FILE>.state)")
    crun_p.add_argument("--no-cache", dest="use_cache", action="store_false",
                        help="do not read or write the on-disk result cache")
    crun_p.add_argument("--cache-dir", default=".repro-cache",
                        help="result cache directory (default .repro-cache)")
    crun_p.add_argument("--out", default=None, metavar="FILE",
                        help="write the aggregate JSON to this path")
    crun_p.add_argument("--trace-out", default=None, metavar="FILE",
                        help="stream campaign_job progress records to this JSONL file")
    crun_p.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress lines on stderr")

    cplan_p = campaign_sub.add_parser(
        "plan", help="compile a spec and print its job list without running"
    )
    cplan_p.add_argument("spec", help="campaign spec file (.toml or .json)")

    cstatus_p = campaign_sub.add_parser(
        "status", help="summarise a campaign journal"
    )
    cstatus_p.add_argument("journal", help="campaign journal (JSONL)")
    cstatus_p.add_argument("--spec", default=None,
                           help="spec file to compare against (reports "
                                "remaining jobs and digest match)")

    cdoctor_p = campaign_sub.add_parser(
        "doctor", help="audit (and repair) a campaign journal and cache"
    )
    cdoctor_p.add_argument("journal", help="campaign journal (JSONL)")
    cdoctor_p.add_argument("--repair", action="store_true",
                           help="rewrite the journal keeping healthy lines; "
                                "damaged ones move to <journal>.quarantine.jsonl")
    cdoctor_p.add_argument("--spec", default=None, metavar="FILE",
                           help="campaign spec; with --repair, drops lines "
                                "belonging to any other spec")
    cdoctor_p.add_argument("--cache-dir", default=None, metavar="DIR",
                           help="also audit/repair this result cache directory")

    matrix_p = sub.add_parser(
        "matrix",
        help="defense × attack matrix campaign (journaled, resumable)",
    )
    matrix_p.add_argument("--name", default="matrix",
                          help="matrix name; journals are <name>-<attack>."
                               "journal.jsonl (default matrix)")
    matrix_p.add_argument("--defense", dest="defenses", action="append",
                          default=None, metavar="NAME",
                          help="defense row to include (repeatable; default: "
                               "every registered defense)")
    matrix_p.add_argument("--attack", dest="attacks", action="append",
                          choices=ATTACK_MODES, default=None,
                          help="attack column to include (repeatable; default: "
                               "outofband, highpower, relay)")
    matrix_p.add_argument("--nodes", type=int, default=30)
    matrix_p.add_argument("--duration", type=float, default=120.0)
    matrix_p.add_argument("--seed", type=int, default=1)
    matrix_p.add_argument("--attack-start", type=float, default=30.0)
    matrix_p.add_argument("--runs", type=int, default=2, metavar="N",
                          help="replications per cell (default 2)")
    matrix_p.add_argument("--backend", choices=("inline", "process", "thread"),
                          default="inline",
                          help="execution backend (default inline)")
    matrix_p.add_argument("--jobs", type=int, default=0, metavar="N",
                          help="workers for process/thread backends "
                               "(0/1 serial, -1 one per CPU)")
    matrix_p.add_argument("--journal-dir", default=".repro-matrix",
                          help="per-attack journal directory "
                               "(default .repro-matrix)")
    matrix_p.add_argument("--resume", action="store_true",
                          help="skip every job the journals already record")
    matrix_p.add_argument("--max-jobs", type=int, default=None, metavar="N",
                          help="execute at most N new jobs across the whole "
                               "matrix, then stop (exit 75; --resume later)")
    matrix_p.add_argument("--retries", type=int, default=2, metavar="N",
                          help="per-job retries on worker crash (default 2)")
    matrix_p.add_argument("--timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="per-job wall-clock timeout (default: none)")
    matrix_p.add_argument("--no-fsync", dest="fsync", action="store_false",
                          help="skip fsync on journal/cache writes")
    matrix_p.add_argument("--no-cache", dest="use_cache", action="store_false",
                          help="do not read or write the on-disk result cache")
    matrix_p.add_argument("--cache-dir", default=".repro-cache",
                          help="result cache directory (default .repro-cache)")
    matrix_p.add_argument("--out", default=None, metavar="FILE",
                          help="write the matrix JSON payload to this path")
    matrix_p.add_argument("--md", dest="md_path", default=None, metavar="FILE",
                          help="write the markdown matrix to this path "
                               "(default: print to stdout)")
    matrix_p.add_argument("--quiet", action="store_true",
                          help="suppress per-job progress lines on stderr")

    bench_p = sub.add_parser("bench", help="microbenchmark suite; writes BENCH_*.json")
    bench_mode = bench_p.add_mutually_exclusive_group()
    bench_mode.add_argument("--full", action="store_true",
                            help="paper-scale sizes (default is quick mode)")
    bench_mode.add_argument("--quick", action="store_true",
                            help="reduced sizes (the default; explicit flag for CI)")
    bench_p.add_argument("--jobs", type=int, default=0, metavar="N",
                         help="worker processes for the sweep benchmark")
    bench_p.add_argument("--only", action="append", default=None, metavar="NAME",
                         help="run one benchmark (repeatable): engine, channel, "
                              "identity, scale, sweep, trace, campaign")
    bench_p.add_argument("--output-dir", default="benchmarks/output",
                         help="where BENCH_*.json files land (default benchmarks/output)")

    chaos_p = sub.add_parser(
        "chaos", help="run the wormhole scenario under fault injection"
    )
    chaos_p.add_argument("--nodes", type=int, default=60)
    chaos_p.add_argument("--duration", type=float, default=240.0)
    chaos_p.add_argument("--seed", type=int, default=1)
    chaos_p.add_argument("--crash-fraction", type=float, default=0.2,
                         help="fraction of the guard pool crashed mid-run")
    chaos_p.add_argument("--recover-fraction", type=float, default=0.0,
                         help="fraction of crashed guards that reboot")
    chaos_p.add_argument("--loss", type=float, default=0.10,
                         help="ambient loss probability during the burst")
    chaos_p.add_argument("--no-liveness", dest="liveness", action="store_false",
                         help="ablate the heartbeat failure detector")
    chaos_p.add_argument("--json", dest="json_path", default=None,
                         help="also write the robustness report as JSON to this path")
    add_trace_options(chaos_p)

    trace_p = sub.add_parser("trace", help="trace export / stats / invariant check")
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    export_p = trace_sub.add_parser(
        "export", help="run one scenario, streaming its trace to JSONL"
    )
    export_p.add_argument("--out", required=True, metavar="FILE",
                          help="JSONL output path (appended; delete to restart)")
    export_p.add_argument("--nodes", type=int, default=50)
    export_p.add_argument("--duration", type=float, default=240.0)
    export_p.add_argument("--seed", type=int, default=1)
    export_p.add_argument("--attack", choices=ATTACK_MODES, default="outofband")
    export_p.add_argument("--malicious", type=int, default=2)
    export_p.add_argument("--attack-start", type=float, default=40.0)
    export_p.add_argument("--defense", choices=DEFENSES, default="liteworp")
    export_p.add_argument("--strict", action="store_true",
                          help="schema-validate every record while emitting")
    export_p.add_argument("--ring", type=int, default=None, metavar="N",
                          help="bound in-memory residency to N records")

    stats_p = trace_sub.add_parser("stats", help="summarise a JSONL trace export")
    stats_p.add_argument("file", help="JSONL trace export to read")
    stats_p.add_argument("--json", dest="json_path", default=None,
                         help="also write the stats as JSON to this path")

    check_p = trace_sub.add_parser(
        "check", help="schema-validate and invariant-check a JSONL export"
    )
    check_p.add_argument("file", help="JSONL trace export to read")
    check_p.add_argument("--theta", type=int, default=3,
                         help="alert quorum the isolation invariant expects "
                              "(default 3, the paper's θ)")
    check_p.add_argument("--fail-on-attack", action="store_true",
                         help="exit nonzero on attack evidence too, not just "
                              "schema errors / protocol violations")

    report_p = sub.add_parser(
        "report", help="render a markdown + JSON run report from a trace"
    )
    report_p.add_argument("file", nargs="?", default=None,
                          help="JSONL trace export to report on (omit with --live)")
    report_p.add_argument("--live", action="store_true",
                          help="run a scenario and report on its live trace "
                               "instead of reading an export")
    report_p.add_argument("--nodes", type=int, default=50)
    report_p.add_argument("--duration", type=float, default=240.0)
    report_p.add_argument("--seed", type=int, default=1)
    report_p.add_argument("--attack", choices=ATTACK_MODES, default="outofband")
    report_p.add_argument("--malicious", type=int, default=2)
    report_p.add_argument("--attack-start", type=float, default=40.0)
    report_p.add_argument("--defense", choices=DEFENSES, default="liteworp")
    report_p.add_argument("--theta", type=int, default=3,
                          help="alert quorum the analysis assumes (default 3)")
    report_p.add_argument("--step", type=float, default=None, metavar="SECONDS",
                          help="time-series resampling step "
                               "(default: horizon / 50)")
    report_p.add_argument("--out", default=None, metavar="FILE",
                          help="with --live: also export the trace to this "
                               "JSONL file while reporting")
    report_p.add_argument("--json", dest="json_path", default=None,
                          help="write the JSON payload to this path")
    report_p.add_argument("--md", dest="md_path", default=None,
                          help="write the markdown report to this path "
                               "(default: print to stdout)")

    sub.add_parser("fig6", help="analytical coverage curves (6a and 6b)")
    sub.add_parser("cost", help="section 5.2 cost table")
    sub.add_parser("taxonomy", help="Table 1: wormhole attack modes")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        n_nodes=args.nodes,
        duration=args.duration,
        seed=args.seed,
        attack_mode=args.attack,
        n_malicious=args.malicious if args.attack != "none" else 0,
        attack_start=args.attack_start,
        defense=args.defense,
    )
    scenario = build_scenario(config)
    report = scenario.run()
    print(f"attack={args.attack} defense={args.defense} "
          f"nodes={args.nodes} duration={args.duration}s seed={args.seed}")
    print(f"malicious nodes       : {scenario.malicious_ids}")
    print(f"data originated       : {report.originated}")
    print(f"data delivered        : {report.delivered} "
          f"({100 * report.delivered / max(1, report.originated):.1f}%)")
    print(f"wormhole drops        : {report.wormhole_drops}")
    print(f"malicious routes      : {report.malicious_routes}/{report.routes_established}")
    print(f"guard detections      : {report.detections}")
    for node in sorted(report.isolation_times):
        print(f"isolated node {node:3d}     : {report.isolation_latency(node):.1f} s latency")
    if args.json_path:
        import json
        import pathlib

        path = pathlib.Path(args.json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"report written to {path}")
    return 0


def _obs_from_args(args: argparse.Namespace) -> Optional["ObsConfig"]:
    """Build the ObsConfig requested by --trace-* flags (None when unused)."""
    trace_out = getattr(args, "trace_out", None)
    strict = getattr(args, "trace_strict", False)
    ring = getattr(args, "trace_ring", None)
    if trace_out is None and not strict and ring is None:
        return None
    from repro.obs.config import ObsConfig

    return ObsConfig(trace_path=trace_out, strict=strict, ring_capacity=ring)


def _sweep_kwargs(args: argparse.Namespace) -> dict:
    """jobs/cache/obs keyword arguments for the figure runners."""
    obs = _obs_from_args(args)
    cache = None
    if getattr(args, "use_cache", False):
        from repro.experiments.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    if obs is not None and obs.trace_path is not None:
        # An export must contain every run's records; the runner already
        # skips cache reads for exporting configs, dropping the cache
        # entirely keeps the figure's provenance unambiguous.
        cache = None
    return {"jobs": args.jobs or None, "cache": cache, "obs": obs}


#: Per-figure defaults for the unified ``figure`` command (and aliases).
_FIGURE_DEFAULTS = {
    "8": {"nodes": 100, "duration": 300.0, "runs": 1},
    "9": {"nodes": 100, "duration": 300.0, "runs": 1},
    "10": {"nodes": 60, "duration": 250.0, "runs": 2},
}


def _run_figure(number: str, args: argparse.Namespace) -> int:
    """Shared body of ``figure N`` and the deprecated ``figN`` aliases."""
    defaults = _FIGURE_DEFAULTS[number]
    nodes = args.nodes if args.nodes is not None else defaults["nodes"]
    duration = args.duration if args.duration is not None else defaults["duration"]
    runs = args.runs if args.runs is not None else defaults["runs"]
    if number == "10":
        base = ScenarioConfig(n_nodes=nodes, avg_neighbors=15.0,
                              duration=duration, seed=args.seed, attack_start=50.0)
    else:
        base = ScenarioConfig(n_nodes=nodes, duration=duration,
                              seed=args.seed, attack_start=50.0)
    runner = {"8": run_fig8, "9": run_fig9, "10": run_fig10}[number]
    print(runner(base=base, runs=runs, **_sweep_kwargs(args)).format())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    return _run_figure(args.number, args)


def _make_legacy_figure_cmd(number: str):
    def handler(args: argparse.Namespace) -> int:
        print(f"note: 'fig{number}' is deprecated; use 'repro figure {number}'",
              file=sys.stderr)
        return _run_figure(number, args)

    return handler


_cmd_fig8 = _make_legacy_figure_cmd("8")
_cmd_fig9 = _make_legacy_figure_cmd("9")
_cmd_fig10 = _make_legacy_figure_cmd("10")


def _cmd_campaign(args: argparse.Namespace) -> int:
    handlers = {
        "run": _campaign_run,
        "plan": _campaign_plan,
        "status": _campaign_status,
        "doctor": _campaign_doctor,
    }
    return handlers[args.campaign_command](args)


def _campaign_run(args: argparse.Namespace) -> int:
    import pathlib
    import signal

    from repro.experiments.campaign import (
        CampaignError,
        RetryPolicy,
        SupervisionPolicy,
        load_spec,
        make_backend,
        run_campaign,
    )
    from repro.obs.progress import CampaignProgress

    try:
        spec = load_spec(args.spec)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    journal = None
    if args.journaled:
        journal = args.journal or str(
            pathlib.Path(args.spec).with_suffix(".journal.jsonl")
        )
    elif args.resume:
        print("error: --resume needs a journal (drop --no-journal)", file=sys.stderr)
        return 1

    cache = None
    if args.use_cache:
        from repro.experiments.cache import ResultCache

        cache = ResultCache(args.cache_dir, fsync=args.fsync)

    progress = None
    if not args.quiet:
        progress = CampaignProgress(
            printer=lambda line: print(line, file=sys.stderr)
        )

    trace = None
    if args.trace_out is not None:
        from repro.obs.sinks import JsonlSink
        from repro.sim.trace import TraceLog

        trace = TraceLog()
        trace.attach_sink(JsonlSink(args.trace_out, append=True, run=spec.name))

    harness_faults = None
    if args.harness_faults is not None:
        from repro.faults.harness import (
            HarnessFaultController,
            HarnessFaultError,
            load_harness_plan,
        )

        try:
            plan = load_harness_plan(args.harness_faults)
        except HarnessFaultError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        state_dir = args.fault_state or f"{args.harness_faults}.state"
        harness_faults = HarnessFaultController(plan, state_dir)
        print(f"chaos: {len(plan)} harness fault(s) armed "
              f"(state {state_dir})", file=sys.stderr)

    # Graceful shutdown: the first SIGINT/SIGTERM flips a flag the runner
    # polls between jobs, so the journal gets a final "interrupt" line
    # and the process exits 75 (resumable) instead of dying with a bare
    # traceback.  A second signal falls through to the default handling.
    signalled = {"stop": False}

    def _handle_signal(signum: int, frame: object) -> None:
        if signalled["stop"]:
            raise KeyboardInterrupt
        signalled["stop"] = True
        name = signal.Signals(signum).name
        print(f"\n{name} received — finishing in-flight jobs and flushing "
              f"the journal (again to abort hard)", file=sys.stderr)

    previous_handlers = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous_handlers[signum] = signal.signal(signum, _handle_signal)
        except (ValueError, OSError):
            pass  # non-main thread or unsupported platform

    try:
        result = run_campaign(
            spec,
            backend=make_backend(args.backend, jobs=args.jobs or None),
            cache=cache,
            journal=journal,
            resume=args.resume,
            retry=RetryPolicy(retries=args.retries),
            supervision=SupervisionPolicy(
                timeout=args.timeout, quarantine=args.quarantine
            ),
            progress=progress,
            trace=trace,
            max_jobs=args.max_jobs,
            stop=lambda: signalled["stop"],
            fsync=args.fsync,
            harness_faults=harness_faults,
        )
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        for signum, handler in previous_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
        if trace is not None:
            trace.close_sinks()

    if not result.complete:
        print(result.format())
        if result.interrupted == "signal":
            reason = "campaign interrupted by signal"
        elif result.interrupted == "torn_write":
            reason = ("campaign stopped by an injected torn journal write; "
                      "run 'repro campaign doctor' before resuming")
        elif result.dead_lettered:
            reason = (f"campaign finished with {result.dead_lettered} "
                      f"dead-lettered job(s); see the journal for tracebacks")
        else:
            reason = f"campaign stopped after --max-jobs {args.max_jobs}"
        print(f"{reason}; {result.completed_jobs}/{result.total_jobs} jobs "
              f"journaled — rerun with --resume to finish", file=sys.stderr)
        return 75  # EX_TEMPFAIL: partial progress, safe to resume
    print(result.format())
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(result.to_json())
        print(f"aggregate JSON written to {path}", file=sys.stderr)
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    import pathlib
    import signal

    from repro.experiments.campaign import (
        CampaignError,
        RetryPolicy,
        SupervisionPolicy,
        make_backend,
    )
    from repro.experiments.matrix import (
        DEFAULT_MATRIX_ATTACKS,
        MatrixSpec,
        run_matrix,
    )
    from repro.obs.progress import CampaignProgress

    try:
        spec = MatrixSpec(
            name=args.name,
            base=ScenarioConfig(
                n_nodes=args.nodes,
                duration=args.duration,
                seed=args.seed,
                attack_start=args.attack_start,
            ),
            defenses=tuple(args.defenses) if args.defenses else (),
            attacks=tuple(args.attacks) if args.attacks else DEFAULT_MATRIX_ATTACKS,
            runs=args.runs,
        )
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    cache = None
    if args.use_cache:
        from repro.experiments.cache import ResultCache

        cache = ResultCache(args.cache_dir, fsync=args.fsync)

    progress = None
    if not args.quiet:
        progress = CampaignProgress(
            printer=lambda line: print(line, file=sys.stderr)
        )

    # Same graceful-shutdown contract as ``campaign run``: first signal
    # stops between jobs (journals flushed, exit 75), second aborts hard.
    signalled = {"stop": False}

    def _handle_signal(signum: int, frame: object) -> None:
        if signalled["stop"]:
            raise KeyboardInterrupt
        signalled["stop"] = True
        name = signal.Signals(signum).name
        print(f"\n{name} received — finishing in-flight jobs and flushing "
              f"the journals (again to abort hard)", file=sys.stderr)

    previous_handlers = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous_handlers[signum] = signal.signal(signum, _handle_signal)
        except (ValueError, OSError):
            pass  # non-main thread or unsupported platform

    try:
        result = run_matrix(
            spec,
            journal_dir=args.journal_dir,
            backend=make_backend(args.backend, jobs=args.jobs or None),
            cache=cache,
            resume=args.resume,
            retry=RetryPolicy(retries=args.retries),
            supervision=SupervisionPolicy(timeout=args.timeout),
            progress=progress,
            max_jobs=args.max_jobs,
            stop=lambda: signalled["stop"],
            fsync=args.fsync,
        )
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        for signum, handler in previous_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass

    print(result.format(), file=sys.stderr)
    if not result.complete:
        if result.interrupted == "signal":
            reason = "matrix interrupted by signal"
        elif args.max_jobs is not None:
            reason = f"matrix stopped after --max-jobs {args.max_jobs}"
        else:
            reason = "matrix stopped before completing"
        print(f"{reason}; {result.completed_jobs}/{spec.total_jobs()} jobs "
              f"journaled — rerun with --resume to finish", file=sys.stderr)
        return 75  # EX_TEMPFAIL: partial progress, safe to resume
    report = result.report
    markdown = report.to_markdown()
    if args.md_path:
        path = pathlib.Path(args.md_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(markdown)
        print(f"markdown matrix written to {path}", file=sys.stderr)
    else:
        print(markdown, end="")
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report.to_json())
        print(f"matrix JSON written to {path}", file=sys.stderr)
    return 0


def _campaign_doctor(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import CampaignError, load_spec
    from repro.experiments.doctor import (
        audit_cache,
        audit_journal,
        repair_cache,
        repair_journal,
    )

    spec_digest = None
    if args.spec is not None:
        try:
            spec_digest = load_spec(args.spec).digest()
        except CampaignError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    try:
        problems = 0
        if args.repair:
            result = repair_journal(args.journal, spec_digest=spec_digest)
            print(result.audit.format())
            print(result.format())
        else:
            audit = audit_journal(args.journal)
            print(audit.format())
            problems += len(audit.problems)
        if args.cache_dir is not None:
            if args.repair:
                quarantined = repair_cache(args.cache_dir)
                for problem in quarantined:
                    print(f"  quarantined {problem.format()}")
                print(f"cache {args.cache_dir}: "
                      f"{len(quarantined)} entr(ies) quarantined"
                      if quarantined else
                      f"cache {args.cache_dir}: healthy")
            else:
                cache_problems = audit_cache(args.cache_dir)
                for problem in cache_problems:
                    print(f"  {problem.format()}")
                print(f"cache {args.cache_dir}: "
                      f"{len(cache_problems)} problem(s)"
                      if cache_problems else
                      f"cache {args.cache_dir}: healthy")
                problems += len(cache_problems)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2 if problems else 0


def _campaign_plan(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import CampaignError, compile_campaign, load_spec

    try:
        spec = load_spec(args.spec)
        jobs = compile_campaign(spec)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"campaign {spec.name}: {len(jobs)} job(s) "
          f"({len(spec.points())} point(s) x {spec.runs} run(s)), "
          f"spec {spec.digest()[:12]}")
    for job in jobs:
        print(f"  [{job.index:4d}] {job.digest[:12]}  seed={job.config.seed:<20d} "
              f"{job.label()}")
    return 0


def _campaign_status(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import (
        CampaignError,
        compile_campaign,
        load_journal,
        load_spec,
    )

    try:
        state = load_journal(args.journal, tolerate_partial=True)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    spec_digest = state.spec_digest[:12] if state.spec_digest else "unknown"
    print(f"journal {args.journal}: {len(state)} completed job(s), "
          f"spec {spec_digest}")
    if state.dead_letters:
        print(f"  {len(state.dead_letters)} dead-lettered job(s) "
              f"(will re-run on resume)")
    if state.interrupts:
        print(f"  {state.interrupts} recorded interrupt(s)")
    if state.partial_lines:
        print(f"warning: skipped {state.partial_lines} partial trailing line "
              f"(campaign was killed mid-append)", file=sys.stderr)
    if args.spec:
        try:
            spec = load_spec(args.spec)
            jobs = compile_campaign(spec)
        except CampaignError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if state.spec_digest is not None and state.spec_digest != spec.digest():
            print(f"spec mismatch: journal records {spec_digest}, "
                  f"spec compiles to {spec.digest()[:12]}", file=sys.stderr)
            return 1
        done = sum(1 for job in jobs if job.digest in state.reports)
        print(f"spec {spec.name}: {done}/{len(jobs)} job(s) journaled, "
              f"{len(jobs) - done} remaining")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_benchmarks

    results = run_benchmarks(
        names=args.only,
        quick=not args.full,
        jobs=args.jobs or None,
        output_dir=args.output_dir,
    )
    for result in results:
        print(result.summary())
    print(f"BENCH_*.json written to {args.output_dir}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    config = ChaosConfig(
        n_nodes=args.nodes,
        duration=args.duration,
        seed=args.seed,
        crash_fraction=args.crash_fraction,
        recover_fraction=args.recover_fraction,
        loss_probability=args.loss,
        liveness=args.liveness,
        obs=_obs_from_args(args),
    )
    result = run_chaos(config)
    print(result.format())
    if args.json_path:
        import json
        import pathlib

        path = pathlib.Path(args.json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result.robustness.to_dict(), indent=2) + "\n")
        print(f"report written to {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    handlers = {
        "export": _trace_export,
        "stats": _trace_stats,
        "check": _trace_check,
    }
    return handlers[args.trace_command](args)


def _trace_export(args: argparse.Namespace) -> int:
    from repro.obs.config import ObsConfig

    config = ScenarioConfig(
        n_nodes=args.nodes,
        duration=args.duration,
        seed=args.seed,
        attack_mode=args.attack,
        n_malicious=args.malicious if args.attack != "none" else 0,
        attack_start=args.attack_start,
        defense=args.defense,
        obs=ObsConfig(trace_path=args.out, strict=args.strict, ring_capacity=args.ring),
    )
    scenario = build_scenario(config)
    scenario.run()
    print(f"exported {scenario.trace.total_emitted} records to {args.out}")
    print(f"peak resident records : {scenario.trace.peak_resident}")
    print(f"evicted (ring mode)   : {scenario.trace.dropped_records}")
    return 0


def _read_export(path_str: str) -> Optional[list]:
    """All records from a JSONL export, or None after printing a one-line
    error (missing file, empty file, mid-file corruption).

    A truncated *final* line — a sweep worker killed mid-append — is
    tolerated with a warning rather than failing the whole read.
    """
    import pathlib

    from repro.obs.sinks import ReadStats, read_jsonl

    path = pathlib.Path(path_str)
    if not path.is_file():
        print(f"error: trace export not found: {path}", file=sys.stderr)
        return None
    stats = ReadStats()
    try:
        records = list(read_jsonl(path, tolerate_partial=True, stats=stats))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    if stats.partial_lines:
        print(f"warning: skipped {stats.partial_lines} partial trailing "
              f"line in {path} (truncated export)", file=sys.stderr)
    if not records:
        print(f"error: trace export is empty: {path}", file=sys.stderr)
        return None
    return records


def _trace_stats(args: argparse.Namespace) -> int:
    from collections import Counter

    records = _read_export(args.file)
    if records is None:
        return 1
    kinds: "Counter[str]" = Counter()
    runs = set()
    total = 0
    first_time = last_time = None
    for record in records:
        total += 1
        kinds[record.kind] += 1
        run = record.fields.get("__run__")
        if run is not None:
            runs.add(run)
        if first_time is None or record.time < first_time:
            first_time = record.time
        if last_time is None or record.time > last_time:
            last_time = record.time
    print(f"records : {total}")
    print(f"runs    : {len(runs) or 1}")
    if first_time is not None:
        print(f"time    : {first_time:.3f} .. {last_time:.3f} s")
    print("kinds   :")
    for kind, count in kinds.most_common():
        print(f"  {kind:28s} {count}")
    if args.json_path:
        import json
        import pathlib

        payload = {
            "records": total,
            "runs": len(runs) or 1,
            "first_time": first_time,
            "last_time": last_time,
            "kinds": dict(kinds),
        }
        path = pathlib.Path(args.json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"stats written to {path}")
    return 0


def _trace_check(args: argparse.Namespace) -> int:
    from repro.obs.invariants import check_export
    from repro.obs.schema import DEFAULT_REGISTRY

    records = _read_export(args.file)
    if records is None:
        return 1
    schema_errors = 0
    for record in records:
        fields = {k: v for k, v in record.fields.items() if k != "__run__"}
        probe = type(record)(time=record.time, kind=record.kind, fields=fields)
        for problem in DEFAULT_REGISTRY.errors(probe):
            schema_errors += 1
            print(f"schema: t={record.time:.3f} {problem}")
    violations, runs = check_export(records, theta=args.theta)
    protocol = [v for v in violations if v.category == "protocol"]
    attack = [v for v in violations if v.category == "attack"]
    for violation in violations:
        print(f"{violation.category}: t={violation.time:.3f} "
              f"[{violation.rule}] {violation.message}")
    print(f"checked {len(records)} records across {runs} run(s): "
          f"{schema_errors} schema error(s), {len(protocol)} protocol "
          f"violation(s), {len(attack)} attack observation(s)")
    if schema_errors or protocol:
        return 1
    if args.fail_on_attack and attack:
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    from repro.obs.report import ReportBuilder, build_report

    if args.live and args.file:
        print("error: pass either a trace export or --live, not both",
              file=sys.stderr)
        return 1
    if not args.live and not args.file:
        print("error: need a trace export to report on (or --live to run one)",
              file=sys.stderr)
        return 1
    if args.live:
        config = ScenarioConfig(
            n_nodes=args.nodes,
            duration=args.duration,
            seed=args.seed,
            attack_mode=args.attack,
            n_malicious=args.malicious if args.attack != "none" else 0,
            attack_start=args.attack_start,
            defense=args.defense,
        )
        if args.out is not None:
            import dataclasses

            from repro.obs.config import ObsConfig

            config = dataclasses.replace(config, obs=ObsConfig(trace_path=args.out))
        scenario = build_scenario(config)
        builder = ReportBuilder(theta=args.theta, step=args.step)
        builder.attach(scenario.trace)
        scenario.run()
        report = builder.report()
    else:
        records = _read_export(args.file)
        if records is None:
            return 1
        report = build_report(records, theta=args.theta, step=args.step)
    markdown = report.to_markdown()
    # Status notices go to stderr: stdout may *be* the markdown report,
    # and piping it into a file must not capture bookkeeping lines.
    if args.md_path:
        path = pathlib.Path(args.md_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(markdown)
        print(f"markdown report written to {path}", file=sys.stderr)
    else:
        print(markdown, end="")
    if args.json_path:
        path = pathlib.Path(args.json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report.to_json())
        print(f"JSON payload written to {path}", file=sys.stderr)
    return 0


def _cmd_fig6(_args: argparse.Namespace) -> int:
    params = CoverageParams()
    print("Figure 6(a): N_B vs P(detection)")
    for n_b, p in detection_vs_neighbors(range(4, 41, 2), params):
        print(f"  {n_b:4.0f}  {p:.4f}")
    print("Figure 6(b): N_B vs P(false alarm)")
    for n_b, p in false_alarm_vs_neighbors(range(4, 41, 2), params):
        print(f"  {n_b:4.0f}  {p:.3e}")
    return 0


def _cmd_cost(_args: argparse.Namespace) -> int:
    report = CostModel().report()
    for name, value, unit in report.rows():
        print(f"{name:30s} {value:12.3f} {unit}")
    return 0


def _cmd_taxonomy(_args: argparse.Namespace) -> int:
    for name, count, requirements in taxonomy_table():
        print(f"{name:25s} | min nodes: {count} | requires: {requirements}")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "figure": _cmd_figure,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "campaign": _cmd_campaign,
    "matrix": _cmd_matrix,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "fig6": _cmd_fig6,
    "cost": _cmd_cost,
    "taxonomy": _cmd_taxonomy,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Parse ``argv`` (default: ``sys.argv[1:]``) and run the command."""
    args = build_parser().parse_args(argv)
    command = _COMMANDS[args.command]
    if not args.profile:
        return command(args)
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    exit_code = profiler.runcall(command, args)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative")
    print(f"\n--- cProfile: top {args.profile_top} by cumulative time ---")
    stats.print_stats(args.profile_top)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
