"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``run`` — one scenario with chosen attack/defense, printing the report.
- ``fig8`` / ``fig9`` / ``fig10`` — regenerate a simulation figure
  (``--jobs`` fans replications across processes, ``--no-cache`` skips
  the on-disk result cache).
- ``fig6`` — the analytical coverage curves.
- ``cost`` — the section-5.2 cost table.
- ``taxonomy`` — Table 1.
- ``chaos`` — fault-injection run: guards crash mid-run under a loss
  burst; reports detection survival and false-isolation counts.
- ``bench`` — the microbenchmark suite; writes ``BENCH_*.json``.

The global ``--profile`` flag wraps any command in cProfile and prints
the top cumulative hot spots afterwards.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.cost import CostModel
from repro.analysis.coverage import (
    CoverageParams,
    detection_vs_neighbors,
    false_alarm_vs_neighbors,
)
from repro.attacks.taxonomy import taxonomy_table
from repro.experiments.chaos import ChaosConfig, run_chaos
from repro.experiments.figures import run_fig8, run_fig9, run_fig10
from repro.experiments.scenario import (
    ATTACK_MODES,
    DEFENSES,
    ScenarioConfig,
    build_scenario,
)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LITEWORP reproduction — run scenarios and regenerate the paper's figures",
    )
    parser.add_argument("--profile", action="store_true",
                        help="run the command under cProfile and print hot spots")
    parser.add_argument("--profile-top", type=int, default=20, metavar="N",
                        help="how many cumulative hot spots to print (default 20)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sweep_options(sub_parser: argparse.ArgumentParser) -> None:
        """Options shared by every replication-sweep command."""
        sub_parser.add_argument("--jobs", type=int, default=0, metavar="N",
                                help="worker processes for replications "
                                     "(0/1 serial, -1 one per CPU)")
        sub_parser.add_argument("--no-cache", dest="use_cache", action="store_false",
                                help="do not read or write the on-disk result cache")
        sub_parser.add_argument("--cache-dir", default=".repro-cache",
                                help="result cache directory (default .repro-cache)")

    run_p = sub.add_parser("run", help="run one scenario and print the report")
    run_p.add_argument("--nodes", type=int, default=50)
    run_p.add_argument("--duration", type=float, default=240.0)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--attack", choices=ATTACK_MODES, default="outofband")
    run_p.add_argument("--malicious", type=int, default=2)
    run_p.add_argument("--attack-start", type=float, default=40.0)
    run_p.add_argument("--defense", choices=DEFENSES, default="liteworp")
    run_p.add_argument("--json", dest="json_path", default=None,
                       help="also write the metric report as JSON to this path")

    fig8_p = sub.add_parser("fig8", help="cumulative dropped packets vs time")
    fig8_p.add_argument("--nodes", type=int, default=100)
    fig8_p.add_argument("--duration", type=float, default=300.0)
    fig8_p.add_argument("--runs", type=int, default=1)
    fig8_p.add_argument("--seed", type=int, default=8)
    add_sweep_options(fig8_p)

    fig9_p = sub.add_parser("fig9", help="fractions vs number of compromised nodes")
    fig9_p.add_argument("--nodes", type=int, default=100)
    fig9_p.add_argument("--duration", type=float, default=300.0)
    fig9_p.add_argument("--runs", type=int, default=1)
    fig9_p.add_argument("--seed", type=int, default=8)
    add_sweep_options(fig9_p)

    fig10_p = sub.add_parser("fig10", help="detection probability / latency vs theta")
    fig10_p.add_argument("--nodes", type=int, default=60)
    fig10_p.add_argument("--duration", type=float, default=250.0)
    fig10_p.add_argument("--runs", type=int, default=2)
    fig10_p.add_argument("--seed", type=int, default=8)
    add_sweep_options(fig10_p)

    bench_p = sub.add_parser("bench", help="microbenchmark suite; writes BENCH_*.json")
    bench_p.add_argument("--full", action="store_true",
                         help="paper-scale sizes (default is quick mode)")
    bench_p.add_argument("--jobs", type=int, default=0, metavar="N",
                         help="worker processes for the sweep benchmark")
    bench_p.add_argument("--only", action="append", default=None, metavar="NAME",
                         help="run one benchmark (repeatable): engine, channel, sweep")
    bench_p.add_argument("--output-dir", default="benchmarks/output",
                         help="where BENCH_*.json files land (default benchmarks/output)")

    chaos_p = sub.add_parser(
        "chaos", help="run the wormhole scenario under fault injection"
    )
    chaos_p.add_argument("--nodes", type=int, default=60)
    chaos_p.add_argument("--duration", type=float, default=240.0)
    chaos_p.add_argument("--seed", type=int, default=1)
    chaos_p.add_argument("--crash-fraction", type=float, default=0.2,
                         help="fraction of the guard pool crashed mid-run")
    chaos_p.add_argument("--recover-fraction", type=float, default=0.0,
                         help="fraction of crashed guards that reboot")
    chaos_p.add_argument("--loss", type=float, default=0.10,
                         help="ambient loss probability during the burst")
    chaos_p.add_argument("--no-liveness", dest="liveness", action="store_false",
                         help="ablate the heartbeat failure detector")
    chaos_p.add_argument("--json", dest="json_path", default=None,
                         help="also write the robustness report as JSON to this path")

    sub.add_parser("fig6", help="analytical coverage curves (6a and 6b)")
    sub.add_parser("cost", help="section 5.2 cost table")
    sub.add_parser("taxonomy", help="Table 1: wormhole attack modes")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        n_nodes=args.nodes,
        duration=args.duration,
        seed=args.seed,
        attack_mode=args.attack,
        n_malicious=args.malicious if args.attack != "none" else 0,
        attack_start=args.attack_start,
        defense=args.defense,
    )
    scenario = build_scenario(config)
    report = scenario.run()
    print(f"attack={args.attack} defense={args.defense} "
          f"nodes={args.nodes} duration={args.duration}s seed={args.seed}")
    print(f"malicious nodes       : {scenario.malicious_ids}")
    print(f"data originated       : {report.originated}")
    print(f"data delivered        : {report.delivered} "
          f"({100 * report.delivered / max(1, report.originated):.1f}%)")
    print(f"wormhole drops        : {report.wormhole_drops}")
    print(f"malicious routes      : {report.malicious_routes}/{report.routes_established}")
    print(f"guard detections      : {report.detections}")
    for node in sorted(report.isolation_times):
        print(f"isolated node {node:3d}     : {report.isolation_latency(node):.1f} s latency")
    if args.json_path:
        import json
        import pathlib

        path = pathlib.Path(args.json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"report written to {path}")
    return 0


def _sweep_kwargs(args: argparse.Namespace) -> dict:
    """jobs/cache keyword arguments for the figure runners."""
    cache = None
    if getattr(args, "use_cache", False):
        from repro.experiments.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    return {"jobs": args.jobs or None, "cache": cache}


def _cmd_fig8(args: argparse.Namespace) -> int:
    base = ScenarioConfig(n_nodes=args.nodes, duration=args.duration,
                          seed=args.seed, attack_start=50.0)
    print(run_fig8(base=base, runs=args.runs, **_sweep_kwargs(args)).format())
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    base = ScenarioConfig(n_nodes=args.nodes, duration=args.duration,
                          seed=args.seed, attack_start=50.0)
    print(run_fig9(base=base, runs=args.runs, **_sweep_kwargs(args)).format())
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    base = ScenarioConfig(n_nodes=args.nodes, avg_neighbors=15.0,
                          duration=args.duration, seed=args.seed, attack_start=50.0)
    print(run_fig10(base=base, runs=args.runs, **_sweep_kwargs(args)).format())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_benchmarks

    results = run_benchmarks(
        names=args.only,
        quick=not args.full,
        jobs=args.jobs or None,
        output_dir=args.output_dir,
    )
    for result in results:
        print(result.summary())
    print(f"BENCH_*.json written to {args.output_dir}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    config = ChaosConfig(
        n_nodes=args.nodes,
        duration=args.duration,
        seed=args.seed,
        crash_fraction=args.crash_fraction,
        recover_fraction=args.recover_fraction,
        loss_probability=args.loss,
        liveness=args.liveness,
    )
    result = run_chaos(config)
    print(result.format())
    if args.json_path:
        import json
        import pathlib

        path = pathlib.Path(args.json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result.robustness.to_dict(), indent=2) + "\n")
        print(f"report written to {path}")
    return 0


def _cmd_fig6(_args: argparse.Namespace) -> int:
    params = CoverageParams()
    print("Figure 6(a): N_B vs P(detection)")
    for n_b, p in detection_vs_neighbors(range(4, 41, 2), params):
        print(f"  {n_b:4.0f}  {p:.4f}")
    print("Figure 6(b): N_B vs P(false alarm)")
    for n_b, p in false_alarm_vs_neighbors(range(4, 41, 2), params):
        print(f"  {n_b:4.0f}  {p:.3e}")
    return 0


def _cmd_cost(_args: argparse.Namespace) -> int:
    report = CostModel().report()
    for name, value, unit in report.rows():
        print(f"{name:30s} {value:12.3f} {unit}")
    return 0


def _cmd_taxonomy(_args: argparse.Namespace) -> int:
    for name, count, requirements in taxonomy_table():
        print(f"{name:25s} | min nodes: {count} | requires: {requirements}")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "chaos": _cmd_chaos,
    "fig6": _cmd_fig6,
    "cost": _cmd_cost,
    "taxonomy": _cmd_taxonomy,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Parse ``argv`` (default: ``sys.argv[1:]``) and run the command."""
    args = build_parser().parse_args(argv)
    command = _COMMANDS[args.command]
    if not args.profile:
        return command(args)
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    exit_code = profiler.runcall(command, args)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative")
    print(f"\n--- cProfile: top {args.profile_top} by cumulative time ---")
    stats.print_stats(args.profile_top)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
