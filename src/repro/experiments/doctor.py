"""Audit and repair campaign journals and result caches.

A campaign journal is append-only JSONL, fsynced line by line — but the
world still finds ways to damage it: a writer killed mid-append leaves a
torn tail, a bad disk flips bytes mid-file, an old binary leaves
version-skewed entries, two campaigns accidentally share one path.
:func:`load_journal <repro.experiments.campaign.load_journal>` refuses
to guess about such files; this module is the guessing that *is* safe:

- :func:`audit_journal` classifies every defect with its line number and
  byte offset, without modifying anything;
- :func:`repair_journal` rewrites the journal atomically (temp + fsync +
  rename), keeping every healthy line byte-for-byte and quarantining the
  damaged ones to ``<journal>.quarantine.jsonl`` for post-mortems —
  repair never destroys bytes, it only relocates them;
- :func:`audit_cache` / :func:`repair_cache` do the same for the
  content-addressed :class:`~repro.experiments.cache.ResultCache`
  (corrupt or version-skewed entries are renamed to ``*.quarantine``).

``repro campaign doctor`` is the CLI wrapper; exit status 0 means
healthy (or successfully repaired), 2 means problems were found in
audit-only mode.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.experiments.cache import CACHE_SCHEMA_VERSION
from repro.experiments.campaign import JOURNAL_VERSION, CampaignError
from repro.metrics.collector import MetricsReport
from repro.obs.spans import span

#: Journal events this build understands.
KNOWN_EVENTS = ("begin", "complete", "dead_letter", "interrupt")

#: Problem classification (stable strings; tests and CI grep for them).
PROBLEM_KINDS = (
    "torn_tail",        # unterminated final line (writer died mid-append)
    "corrupt",          # line is not valid JSON
    "bad_version",      # begin entry from a different JOURNAL_VERSION
    "malformed_entry",  # valid JSON but required fields missing/broken
    "unknown_event",    # event tag this build does not know
    "spec_mix",         # journal interleaves two campaign specs
)


@dataclass(frozen=True)
class Problem:
    """One defect found in a journal, pinned to its exact location."""

    lineno: int
    offset: int
    kind: str
    message: str

    def format(self) -> str:
        return f"line {self.lineno} (byte {self.offset}): {self.kind}: {self.message}"


@dataclass
class JournalAudit:
    """Everything :func:`audit_journal` learned about one journal."""

    path: Path
    lines: int = 0
    begins: int = 0
    completes: int = 0
    dead_letters: int = 0
    interrupts: int = 0
    spec_digests: List[str] = field(default_factory=list)
    problems: List[Problem] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return not self.problems

    def format(self) -> str:
        """Stable multi-line report for the CLI."""
        state = "healthy" if self.healthy else f"{len(self.problems)} problem(s)"
        lines = [
            f"journal {self.path}: {state}",
            f"  lines={self.lines} begins={self.begins} "
            f"completes={self.completes} dead_letters={self.dead_letters} "
            f"interrupts={self.interrupts}",
        ]
        for digest in self.spec_digests:
            lines.append(f"  spec {digest[:16]}")
        for problem in self.problems:
            lines.append(f"  {problem.format()}")
        return "\n".join(lines)


def _classify_line(
    payload: Dict[str, Any], lineno: int, offset: int, spec_digests: List[str]
) -> Optional[Problem]:
    event = payload.get("event")
    if event == "begin":
        version = payload.get("version")
        if version != JOURNAL_VERSION:
            return Problem(
                lineno, offset, "bad_version",
                f"journal version {version!r}, this build writes {JOURNAL_VERSION}",
            )
        digest = payload.get("spec")
        if isinstance(digest, str):
            if digest not in spec_digests:
                spec_digests.append(digest)
            if len(spec_digests) > 1:
                return Problem(
                    lineno, offset, "spec_mix",
                    f"begin for spec {digest[:16]} in a journal opened by "
                    f"spec {spec_digests[0][:16]}",
                )
        return None
    if event == "complete":
        try:
            MetricsReport.from_state(payload["report"])
            digest = payload["digest"]
        except (KeyError, TypeError, ValueError) as exc:
            return Problem(
                lineno, offset, "malformed_entry",
                f"completion entry does not decode to a report: {exc}",
            )
        if not isinstance(digest, str):
            return Problem(
                lineno, offset, "malformed_entry",
                f"completion digest is {type(digest).__name__}, not a string",
            )
        return None
    if event == "dead_letter":
        if not isinstance(payload.get("digest"), str):
            return Problem(
                lineno, offset, "malformed_entry",
                "dead_letter entry without a job digest",
            )
        return None
    if event == "interrupt":
        return None
    return Problem(
        lineno, offset, "unknown_event", f"unknown journal event {event!r}"
    )


def _scan(path: Path) -> Tuple[JournalAudit, List[Tuple[bytes, Optional[str], Optional[Problem]]]]:
    """Parse the journal byte-exactly.

    Returns the audit plus one ``(raw_line, spec_digest, problem)`` tuple
    per physical line — ``raw_line`` preserves the original bytes
    (including the torn, newline-less tail) so repair can rewrite the
    file without re-encoding anything, and ``spec_digest`` attributes the
    line to the campaign whose ``begin`` most recently preceded it.
    """
    audit = JournalAudit(path=path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise CampaignError(f"cannot read campaign journal {path}: {exc}") from exc
    records: List[Tuple[bytes, Optional[str], Optional[Problem]]] = []
    offset = 0
    current_spec: Optional[str] = None
    lineno = 0
    while offset < len(data):
        end = data.find(b"\n", offset)
        torn = end < 0
        raw = data[offset:] if torn else data[offset : end + 1]
        line_offset = offset
        offset = len(data) if torn else end + 1
        lineno += 1
        stripped = raw.strip()
        if not stripped:
            records.append((raw, current_spec, None))
            continue
        audit.lines += 1
        if torn:
            problem = Problem(
                lineno, line_offset, "torn_tail",
                f"unterminated final line ({len(raw)} bytes); the writer "
                f"died mid-append",
            )
            audit.problems.append(problem)
            records.append((raw, current_spec, problem))
            continue
        try:
            payload = json.loads(stripped)
            if not isinstance(payload, dict):
                raise ValueError(f"entry is {type(payload).__name__}, not an object")
        except ValueError as exc:
            problem = Problem(lineno, line_offset, "corrupt", str(exc))
            audit.problems.append(problem)
            records.append((raw, current_spec, problem))
            continue
        problem = _classify_line(payload, lineno, line_offset, audit.spec_digests)
        event = payload.get("event")
        if event == "begin" and isinstance(payload.get("spec"), str):
            current_spec = payload["spec"]
            if problem is None:
                audit.begins += 1
        elif problem is None:
            if event == "complete":
                audit.completes += 1
            elif event == "dead_letter":
                audit.dead_letters += 1
            elif event == "interrupt":
                audit.interrupts += 1
        if problem is not None:
            audit.problems.append(problem)
        records.append((raw, current_spec, problem))
    return audit, records


def audit_journal(path: Union[str, Path]) -> JournalAudit:
    """Classify every defect in a journal without touching it."""
    with span("doctor.audit"):
        audit, _records = _scan(Path(path))
        return audit


@dataclass
class RepairResult:
    """Outcome of :func:`repair_journal`."""

    audit: JournalAudit
    kept: int = 0
    quarantined: int = 0
    dropped_foreign: int = 0
    quarantine_path: Optional[Path] = None
    repaired: bool = False

    def format(self) -> str:
        if not self.repaired:
            return f"journal {self.audit.path}: already healthy, nothing to repair"
        lines = [
            f"journal {self.audit.path}: repaired "
            f"(kept {self.kept}, quarantined {self.quarantined}"
            + (f", dropped {self.dropped_foreign} foreign-spec" if self.dropped_foreign else "")
            + ")"
        ]
        if self.quarantine_path is not None:
            lines.append(f"  damaged lines preserved in {self.quarantine_path}")
        return "\n".join(lines)


def repair_journal(
    path: Union[str, Path], spec_digest: Optional[str] = None
) -> RepairResult:
    """Rewrite ``path`` keeping only healthy lines (byte-for-byte).

    Damaged lines are appended verbatim to ``<path>.quarantine.jsonl``
    rather than deleted.  With ``spec_digest``, lines belonging to any
    *other* campaign spec are dropped too (quarantined), resolving
    ``spec_mix`` journals; without it, a mixed journal keeps both specs'
    healthy lines.  The rewrite is atomic (temp file, fsync, rename, and
    a directory fsync), so a crash mid-repair leaves the original file
    intact.
    """
    with span("doctor.repair"):
        path = Path(path)
        audit, records = _scan(path)
        needs_spec_filter = spec_digest is not None and any(
            spec != spec_digest for _raw, spec, _problem in records if spec is not None
        )
        if audit.healthy and not needs_spec_filter:
            return RepairResult(audit=audit)
        keep: List[bytes] = []
        quarantine: List[bytes] = []
        kept = quarantined = dropped_foreign = 0
        for raw, spec, problem in records:
            if not raw.strip():
                continue
            if problem is not None:
                quarantine.append(raw if raw.endswith(b"\n") else raw + b"\n")
                quarantined += 1
            elif spec_digest is not None and spec is not None and spec != spec_digest:
                quarantine.append(raw)
                dropped_foreign += 1
            else:
                keep.append(raw)
                kept += 1
        quarantine_path = None
        if quarantine:
            quarantine_path = path.with_name(path.name + ".quarantine.jsonl")
            with open(quarantine_path, "ab") as handle:
                for raw in quarantine:
                    handle.write(raw)
                handle.flush()
                os.fsync(handle.fileno())
        fd, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".repair")
        try:
            with os.fdopen(fd, "wb") as handle:
                for raw in keep:
                    handle.write(raw)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
            dir_fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return RepairResult(
            audit=audit,
            kept=kept,
            quarantined=quarantined,
            dropped_foreign=dropped_foreign,
            quarantine_path=quarantine_path,
            repaired=True,
        )


# ----------------------------------------------------------------------
# Cache auditing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CacheProblem:
    """One damaged or version-skewed cache entry."""

    path: Path
    kind: str  # corrupt | malformed_entry | bad_version
    message: str

    def format(self) -> str:
        return f"{self.path}: {self.kind}: {self.message}"


def audit_cache(root: Union[str, Path]) -> List[CacheProblem]:
    """Scan every ``<salt>/<digest>.json`` entry under ``root``.

    Entries from a different code salt are *not* problems (the salt
    directory partitions them already); entries that do not parse, do
    not decode to a report, or carry a foreign schema version are.
    """
    with span("doctor.audit"):
        root = Path(root)
        problems: List[CacheProblem] = []
        for entry in sorted(root.glob("*/*.json")):
            try:
                payload = json.loads(entry.read_text(encoding="utf-8"))
                if not isinstance(payload, dict):
                    raise ValueError(
                        f"entry is {type(payload).__name__}, not an object"
                    )
            except (OSError, ValueError) as exc:
                problems.append(CacheProblem(entry, "corrupt", str(exc)))
                continue
            schema = payload.get("schema")
            if schema != CACHE_SCHEMA_VERSION:
                problems.append(
                    CacheProblem(
                        entry, "bad_version",
                        f"schema {schema!r}, this build writes "
                        f"{CACHE_SCHEMA_VERSION}",
                    )
                )
                continue
            try:
                MetricsReport.from_state(payload["report"])
            except (KeyError, TypeError, ValueError) as exc:
                problems.append(
                    CacheProblem(
                        entry, "malformed_entry",
                        f"entry does not decode to a report: {exc}",
                    )
                )
        return problems


def repair_cache(root: Union[str, Path]) -> List[CacheProblem]:
    """Quarantine every damaged cache entry (rename to ``*.quarantine``).

    The cache treats unreadable entries as misses already, so repair is
    about keeping the store auditable: damaged bytes move aside instead
    of being re-read (and re-logged) forever.  Returns the problems that
    were quarantined.
    """
    with span("doctor.repair"):
        problems = audit_cache(root)
        for problem in problems:
            target = problem.path.with_name(problem.path.name + ".quarantine")
            try:
                os.replace(problem.path, target)
            except OSError:
                pass
        return problems


__all__ = [
    "KNOWN_EVENTS",
    "PROBLEM_KINDS",
    "CacheProblem",
    "JournalAudit",
    "Problem",
    "RepairResult",
    "audit_cache",
    "audit_journal",
    "repair_cache",
    "repair_journal",
]
