"""Experiment record persistence.

Long sweeps (the paper-scale 30-run averages take hours) deserve durable,
comparable artifacts.  An :class:`ExperimentRecord` bundles a name, the
scenario parameters that produced it, and the per-run metric reports, and
round-trips through JSON so results survive the process and can be
diffed across code versions.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.experiments.scenario import ScenarioConfig, average_runs
from repro.experiments.stats import Summary, summarize, summarize_optional
from repro.metrics.collector import MetricsReport


def _config_to_dict(config: ScenarioConfig) -> Dict[str, Any]:
    """Flatten a scenario config (nested dataclasses included) to JSON."""
    return dataclasses.asdict(config)


@dataclass
class ExperimentRecord:
    """A named, persisted experiment result."""

    name: str
    config: Dict[str, Any]
    reports: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    @classmethod
    def from_runs(
        cls,
        name: str,
        config: ScenarioConfig,
        reports: Sequence[MetricsReport],
        notes: str = "",
    ) -> "ExperimentRecord":
        """Build a record from live reports."""
        return cls(
            name=name,
            config=_config_to_dict(config),
            reports=[report.to_dict() for report in reports],
            notes=notes,
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def metric(self, key: str) -> Summary:
        """Summary of a numeric per-run metric (e.g. ``wormhole_drops``)."""
        return summarize([report[key] for report in self.reports])

    def isolation_latency_summary(self) -> Summary:
        """Summary over all isolated malicious nodes in all runs."""
        latencies: List[Optional[float]] = []
        for report in self.reports:
            latencies.extend(report.get("isolation_latencies", {}).values())
        return summarize_optional(latencies)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the record as pretty-printed JSON; returns the path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": self.name,
            "config": self.config,
            "reports": self.reports,
            "notes": self.notes,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "ExperimentRecord":
        """Read a record written by :meth:`save`."""
        payload = json.loads(pathlib.Path(path).read_text())
        return cls(
            name=payload["name"],
            config=payload["config"],
            reports=payload["reports"],
            notes=payload.get("notes", ""),
        )


def run_and_record(
    name: str,
    config: ScenarioConfig,
    runs: int,
    path: Optional[Union[str, pathlib.Path]] = None,
    notes: str = "",
) -> ExperimentRecord:
    """Run ``runs`` replications and (optionally) persist the record."""
    reports = average_runs(config, runs)
    record = ExperimentRecord.from_runs(name, config, reports, notes=notes)
    if path is not None:
        record.save(path)
    return record
