"""Chaos experiments: the wormhole defense under fault injection.

The paper evaluates LITEWORP in a benign environment; this runner
measures what happens when the environment itself misbehaves.  A chaos
run takes the standard out-of-band wormhole scenario and layers a
generated :class:`~repro.faults.plan.FaultPlan` on top: a fraction of the
*guard* nodes (honest neighbors of the malicious pair — exactly the nodes
whose testimony the protocol depends on) crash mid-run, some of them
reboot later, and a channel-wide loss burst degrades everyone's hearing
for a while.

Two questions are asked of every run:

1. **Does detection survive?**  The wormhole must still be detected and
   revoked by the surviving guards.
2. **Is silence misread as malice?**  Without the liveness layer a
   crashed guard — which silently stops forwarding — accrues drop MalC at
   its own neighbors and gets falsely revoked.  With heartbeats enabled
   (``ChaosConfig.liveness``) the false-isolation count must be zero.

Everything is deterministic: the fault plan is derived from the
scenario's own seeded RNG registry (stream ``"chaos"``), so the same
:class:`ChaosConfig` always produces the same plan, the same run, and a
byte-identical :meth:`ChaosResult.format`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.config import LiteworpConfig
from repro.experiments.scenario import Scenario, ScenarioConfig, build_scenario
from repro.faults.plan import CrashRecover, CrashStop, Fault, FaultPlan, LossBurst
from repro.metrics.collector import MetricsReport
from repro.metrics.robustness import RobustnessCollector, RobustnessReport
from repro.net.packet import NodeId
from repro.obs.config import ObsConfig
from repro.obs.spans import span
from repro.routing.config import RoutingConfig
from repro.traffic.generator import TrafficConfig


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos experiment: scenario shape + fault intensity knobs.

    ``liveness`` toggles the heartbeat/probe failure detector — the
    ablation arm (``False``) recovers the paper's crash-naive behaviour
    and is expected to falsely isolate crashed honest guards.
    """

    n_nodes: int = 60
    avg_neighbors: float = 10.0
    tx_range: float = 30.0
    duration: float = 240.0
    seed: int = 1
    attack_start: float = 40.0
    n_malicious: int = 2
    # Fault intensity.
    crash_fraction: float = 0.2
    crash_at: float = 60.0
    crash_spacing: float = 2.0
    recover_fraction: float = 0.0
    downtime: float = 60.0
    loss_probability: float = 0.10
    loss_at: float = 80.0
    loss_duration: float = 30.0
    # Traffic / routing pressure.  Long-lived routes keep predecessors
    # pushing data at a silently crashed next hop for longer, which is
    # exactly the stress the ablation arm must expose; ``v_drop`` weights
    # each such unexplained drop.
    data_rate: float = 0.1
    route_timeout: float = 150.0
    v_drop: int = 2
    # Liveness layer (the refinement under test).
    liveness: bool = True
    heartbeat_period: float = 2.0
    alert_retries: int = 2
    # Observability switches (see repro.obs); None = zero overhead.
    obs: Optional["ObsConfig"] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ValueError(
                f"crash_fraction must be in [0, 1], got {self.crash_fraction!r}"
            )
        if not 0.0 <= self.recover_fraction <= 1.0:
            raise ValueError(
                f"recover_fraction must be in [0, 1], got {self.recover_fraction!r}"
            )
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {self.loss_probability!r}"
            )
        if self.crash_at <= self.attack_start:
            raise ValueError("crashes must start after the attack (crash_at > attack_start)")
        if self.crash_at >= self.duration:
            raise ValueError("crash_at must fall inside the run")
        if self.data_rate <= 0:
            raise ValueError(f"data_rate must be positive, got {self.data_rate!r}")
        if self.route_timeout <= 0:
            raise ValueError(
                f"route_timeout must be positive, got {self.route_timeout!r}"
            )
        if self.v_drop < 1:
            raise ValueError(f"v_drop must be at least 1, got {self.v_drop!r}")

    def scenario_config(self) -> ScenarioConfig:
        """The underlying scenario (without the fault plan)."""
        liteworp = LiteworpConfig(
            # Data-forwarding watch: routes keep pushing data at a
            # silently crashed next hop until the route times out, so the
            # crashed node accrues drop MalC at every guard of that link —
            # the failure mode the liveness layer must neutralise.
            # (Honest inability to forward is excused via RouteError,
            # which clears the watch entry.)
            watch_data=True,
            v_drop=self.v_drop,
            heartbeat_period=self.heartbeat_period if self.liveness else None,
            alert_retries=self.alert_retries,
        )
        return ScenarioConfig(
            n_nodes=self.n_nodes,
            avg_neighbors=self.avg_neighbors,
            tx_range=self.tx_range,
            duration=self.duration,
            seed=self.seed,
            attack_start=self.attack_start,
            n_malicious=self.n_malicious,
            attack_mode="outofband",
            liteworp=liteworp,
            routing=RoutingConfig(route_timeout=self.route_timeout),
            traffic=TrafficConfig(data_rate=self.data_rate),
            obs=self.obs,
        )


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    config: ChaosConfig
    plan: FaultPlan
    metrics: MetricsReport
    robustness: RobustnessReport
    malicious_ids: Tuple[NodeId, ...]
    guard_pool: Tuple[NodeId, ...]
    revoked_by: Dict[NodeId, Tuple[NodeId, ...]] = field(default_factory=dict)

    @property
    def wormhole_detected(self) -> bool:
        """Whether any guard detected a genuinely malicious node."""
        return self.robustness.first_detection is not None

    @property
    def wormhole_revoked(self) -> bool:
        """Whether every malicious node was revoked by at least one
        surviving honest node."""
        return all(self.revoked_by.get(m) for m in self.malicious_ids)

    def format(self) -> str:
        """Stable plain-text rendering (byte-identical across reruns of
        the same config)."""
        lines = [
            "chaos run"
            f" nodes={self.config.n_nodes}"
            f" seed={self.config.seed}"
            f" crash_fraction={self.config.crash_fraction:.2f}"
            f" loss={self.config.loss_probability:.2f}"
            f" liveness={'on' if self.config.liveness else 'off'}",
            f"  malicious             {list(self.malicious_ids)}",
            f"  guard pool            {len(self.guard_pool)} nodes",
            f"  faults planned        {len(self.plan)}",
            f"  wormhole detected     {self.wormhole_detected}",
            f"  wormhole revoked      {self.wormhole_revoked}",
        ]
        for node in sorted(self.revoked_by):
            lines.append(
                f"    revokers of {node:3d}      {list(self.revoked_by[node])}"
            )
        lines.append(self.robustness.format())
        return "\n".join(lines)


def guard_pool(scenario: Scenario) -> Tuple[NodeId, ...]:
    """Honest first-hop neighbors of any malicious node — the population
    of potential guards whose crash stresses the protocol most."""
    adjacency = scenario.topology.adjacency()
    malicious = set(scenario.malicious_ids)
    pool = {
        neighbor
        for bad in scenario.malicious_ids
        for neighbor in adjacency[bad]
        if neighbor not in malicious
    }
    return tuple(sorted(pool))


def make_chaos_plan(config: ChaosConfig) -> FaultPlan:
    """Derive the fault plan for ``config``.

    The scenario is built once (cheap: no run) to learn the topology and
    the malicious placement; crash targets are then drawn from the guard
    pool via the scenario's own RNG registry, so the plan is a pure
    function of the config.
    """
    with span("chaos.plan"):
        scenario = build_scenario(config.scenario_config())
        pool = guard_pool(scenario)
        rng = scenario.rng.stream("chaos")
        count = min(len(pool), max(1, round(config.crash_fraction * len(pool))))
        targets = sorted(rng.sample(pool, count)) if count else []
        recovering = round(config.recover_fraction * len(targets))
        faults: List[Fault] = []
        for index, node in enumerate(targets):
            at = config.crash_at + index * config.crash_spacing
            if index < recovering:
                faults.append(CrashRecover(at=at, node=node, downtime=config.downtime))
            else:
                faults.append(CrashStop(at=at, node=node))
        if config.loss_probability > 0.0:
            faults.append(
                LossBurst(
                    at=config.loss_at,
                    probability=config.loss_probability,
                    duration=config.loss_duration,
                )
            )
        return FaultPlan(faults=tuple(faults))


def run_chaos_sweep(configs, jobs=None):
    """Run many chaos configs, fanned across worker processes.

    Each chaos run is a pure function of its :class:`ChaosConfig` (the
    fault plan is derived from the scenario's own seeded RNG), so the
    sweep parallelises exactly like the figure sweeps; results come back
    in input order regardless of worker count.
    """
    from repro.experiments.runner import parallel_map

    return parallel_map(run_chaos, list(configs), jobs=jobs)


def run_chaos(config: ChaosConfig) -> ChaosResult:
    """Build, fault, and run one chaos scenario."""
    plan = make_chaos_plan(config)
    scenario = build_scenario(replace(config.scenario_config(), fault_plan=plan))
    robustness = RobustnessCollector(
        scenario.trace,
        malicious_ids=scenario.malicious_ids,
        crashed_honest=plan.crashed_nodes(),
        attack_start=config.attack_start,
    )
    metrics = scenario.run()
    revoked_by = {
        bad: tuple(sorted(scenario.metrics.revokers_of(bad)))
        for bad in scenario.malicious_ids
    }
    return ChaosResult(
        config=config,
        plan=plan,
        metrics=metrics,
        robustness=robustness.report(duration=config.duration),
        malicious_ids=scenario.malicious_ids,
        guard_pool=guard_pool(scenario),
        revoked_by=revoked_by,
    )
