"""Summary statistics for multi-run experiments.

The paper averages over 30 runs; these helpers carry the spread along
with the mean so the figure outputs can report mean ± std and a normal
confidence interval without pulling in heavyweight dependencies.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple


@dataclass(frozen=True)
class Summary:
    """Mean, standard deviation, and count of a sample."""

    mean: float
    std: float
    count: int

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count <= 0:
            return 0.0
        return self.std / math.sqrt(self.count)

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI (default 95%)."""
        margin = z * self.sem
        return (self.mean - margin, self.mean + margin)

    def format(self, precision: int = 3) -> str:
        """Render as ``mean ± std (n=count)``."""
        return f"{self.mean:.{precision}f} ± {self.std:.{precision}f} (n={self.count})"


def summarize(values: Sequence[float]) -> Summary:
    """Summary of a sample; empty samples yield a zero summary."""
    values = [float(v) for v in values]
    if not values:
        return Summary(mean=0.0, std=0.0, count=0)
    if len(values) == 1:
        return Summary(mean=values[0], std=0.0, count=1)
    return Summary(
        mean=statistics.fmean(values),
        std=statistics.stdev(values),
        count=len(values),
    )


def summarize_optional(values: Sequence[Optional[float]]) -> Summary:
    """Summary ignoring ``None`` entries (e.g. never-isolated latencies)."""
    return summarize([v for v in values if v is not None])
