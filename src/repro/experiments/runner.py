"""Parallel sweep execution over scenario configs.

The paper's evaluation is embarrassingly parallel: every figure averages
~30 independent replications per parameter point, and every replication
is a pure function of its :class:`ScenarioConfig`.  The
:class:`SweepRunner` exploits exactly that structure:

- **Determinism** — replication seeds are derived per-config *before*
  dispatch (:mod:`repro.experiments.seeds`), and each worker builds its
  own simulator from scratch, so a parallel sweep returns byte-identical
  reports to a serial one, in the same order.
- **Parallelism** — misses fan out over a ``ProcessPoolExecutor``
  (``jobs`` workers; ``-1`` means one per CPU).  ``jobs`` of ``None``,
  ``0`` or ``1`` stays fully in-process, which is also the fallback the
  tests rely on for platforms without working multiprocessing.
- **Caching** — with a :class:`~repro.experiments.cache.ResultCache`
  attached, already-computed points are served from disk and only the
  misses are simulated.

``parallel_map`` is the underlying order-preserving primitive; chaos
sweeps and the microbenchmarks reuse it for non-``ScenarioConfig`` work
items (anything picklable mapped through a module-level function).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.experiments.cache import ResultCache
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.experiments.seeds import child_seed
from repro.metrics.collector import MetricsReport
from repro.obs.spans import span

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker-count policy: None/0/1 -> serial, -1 -> all CPUs, n -> n."""
    if jobs is None or jobs == 0 or jobs == 1:
        return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return int(jobs)


def parallel_map(
    fn: Callable[[ItemT], ResultT],
    items: Iterable[ItemT],
    jobs: Optional[int] = None,
    chunksize: int = 1,
) -> List[ResultT]:
    """Order-preserving map, fanned across processes when ``jobs`` > 1.

    ``fn`` must be a module-level callable and ``items`` picklable when a
    pool is used; the serial path has no such constraint.
    """
    work = list(items)
    workers = min(resolve_jobs(jobs), len(work))
    if workers <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, work, chunksize=max(1, chunksize)))


def replication_configs(config: ScenarioConfig, runs: int) -> List[ScenarioConfig]:
    """The ``runs`` child configs of one sweep point (hash-derived seeds)."""
    if runs < 1:
        raise ValueError("runs must be at least 1")
    return [replace(config, seed=child_seed(config.seed, index)) for index in range(runs)]


def run_config(config: ScenarioConfig) -> MetricsReport:
    """Module-level worker body (must be picklable for process pools).

    Shared by :class:`SweepRunner` and the campaign orchestrator's
    ``process`` backend (:mod:`repro.experiments.campaign`), so both fan
    the exact same job function across workers.
    """
    return run_scenario(config)


#: Backward-compat alias for the pre-campaign private name.
_run_config = run_config


class SweepRunner:
    """Executes batches of scenario configs with caching and parallelism.

    Parameters
    ----------
    jobs:
        Worker processes (see :func:`resolve_jobs`).
    cache:
        Optional result cache consulted before, and populated after,
        every simulation.
    """

    def __init__(
        self, jobs: Optional[int] = None, cache: Optional[ResultCache] = None
    ) -> None:
        self.jobs = jobs
        self.cache = cache
        self.computed = 0
        self.cache_hits = 0

    def run_one(self, config: ScenarioConfig) -> MetricsReport:
        """Run (or fetch) a single scenario."""
        return self.run_many([config])[0]

    def run_many(self, configs: Sequence[ScenarioConfig]) -> List[MetricsReport]:
        """Run every config, returning reports in input order.

        Cache hits are resolved up front; only the misses are simulated
        (in parallel when configured), then written back to the cache.
        """
        configs = list(configs)
        results: List[Optional[MetricsReport]] = [None] * len(configs)
        miss_indices: List[int] = []
        if self.cache is not None:
            for position, config in enumerate(configs):
                # A run streaming its trace to disk must actually execute —
                # serving it from the cache would silently leave its records
                # out of the export.  (The result is still written back.)
                exporting = config.obs is not None and config.obs.trace_path is not None
                cached = None if exporting else self.cache.get(config)
                if cached is not None:
                    results[position] = cached
                    self.cache_hits += 1
                else:
                    miss_indices.append(position)
        else:
            miss_indices = list(range(len(configs)))

        if miss_indices:
            missed_configs = [configs[i] for i in miss_indices]
            with span("sweep.fanout"):
                reports = parallel_map(run_config, missed_configs, jobs=self.jobs)
            self.computed += len(reports)
            for position, report in zip(miss_indices, reports):
                results[position] = report
                if self.cache is not None:
                    self.cache.put(configs[position], report)
        return [report for report in results if report is not None]

    def average_runs(self, config: ScenarioConfig, runs: int) -> List[MetricsReport]:
        """The paper's N-replication average for one sweep point."""
        return self.run_many(replication_configs(config, runs))
