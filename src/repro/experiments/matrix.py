"""Cross-defense × cross-attack matrix campaigns.

``repro matrix`` (and :func:`repro.api.matrix`) answers the survey
question the single-defense figures cannot: *which* registered defense
detects *which* wormhole variant, at what isolation latency and what
cost.  A :class:`MatrixSpec` compiles into one
:class:`~repro.experiments.campaign.CampaignSpec` per attack mode — the
malicious-node count co-varies with the mode (tunnel modes need two
colluders, the single-attacker modes exactly one, the control column
none), which is why the attack axis cannot be an ordinary campaign axis —
each with a ``defense`` axis over every requested registry name.

Execution rides the campaign orchestrator unchanged: every per-attack
campaign is journaled (``<name>-<attack>.journal.jsonl`` under the
journal directory), cached, supervised, and resumable, and ``--max-jobs``
/ SIGINT stop the whole matrix with exit 75 exactly like ``repro
campaign run``.  Once every campaign is complete,
:func:`aggregate_matrix` reloads the journals and folds each cell's
replications into detection rate (the *plugin's* :meth:`Defense.detected`
verdict, so schemes that flag without LITEWORP-style isolation still
count), isolation/detection latency, delivery and drop fractions, and
the plugin's own :meth:`Defense.metrics_contribution` surface — rendered
as one markdown + JSON :class:`~repro.obs.report.MatrixReport`.
Aggregation is a pure function of the journaled reports, so a matrix
interrupted and resumed produces byte-identical output to an
uninterrupted one.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.attacks.coordinator import TUNNEL_MODES
from repro.defenses import available_defenses, get_defense
from repro.experiments.cache import ResultCache
from repro.experiments.campaign import (
    CampaignError,
    CampaignResult,
    CampaignSpec,
    ExecutionBackend,
    RetryPolicy,
    SupervisionPolicy,
    compile_campaign,
    load_journal,
    run_campaign,
)
from repro.experiments.scenario import ATTACK_MODES, ScenarioConfig
from repro.metrics.collector import MetricsReport
from repro.obs.progress import CampaignProgress
from repro.obs.report import MatrixReport
from repro.obs.spans import span
from repro.sim.trace import TraceLog

#: Attack columns the CLI sweeps by default: one tunnel variant plus both
#: physical-layer variants, so every built-in defense has at least one
#: column it catches and one it provably cannot (see docs/DEFENSES.md).
DEFAULT_MATRIX_ATTACKS: Tuple[str, ...] = ("outofband", "highpower", "relay")


def attack_malicious(mode: str, colluders: int = 2) -> int:
    """The malicious-node count ``mode`` requires.

    Tunnel modes need at least two colluding endpoints, the
    single-attacker modes exactly one, and the ``none`` control column
    zero — which is why the attack axis compiles to separate campaigns
    instead of a plain config axis.
    """
    if mode == "none":
        return 0
    if mode in TUNNEL_MODES:
        return max(2, colluders)
    return 1


@dataclass(frozen=True)
class MatrixSpec:
    """A declarative defense × attack matrix.

    Parameters
    ----------
    name:
        Matrix name; per-attack campaigns are ``<name>-<attack>`` and
        their journals ``<name>-<attack>.journal.jsonl``.
    base:
        Scenario template every cell is built from.  ``attack_mode``,
        ``n_malicious`` and ``defense`` are overwritten per cell; all
        other knobs (size, duration, seed, per-defense config blocks)
        carry through unchanged.
    defenses:
        Registry names forming the rows; empty means *every* defense
        registered at construction time.
    attacks:
        Attack modes forming the columns.
    runs:
        Replications per cell (hash-derived seeds, exactly like any
        campaign).
    colluders:
        Colluding endpoints for tunnel-mode columns (min 2).
    """

    name: str = "matrix"
    base: ScenarioConfig = field(default_factory=ScenarioConfig)
    defenses: Tuple[str, ...] = ()
    attacks: Tuple[str, ...] = DEFAULT_MATRIX_ATTACKS
    runs: int = 1
    colluders: int = 2

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("matrix needs a non-empty name")
        if self.runs < 1:
            raise CampaignError(f"runs must be at least 1, got {self.runs!r}")
        if self.colluders < 2:
            raise CampaignError(
                f"tunnel modes need at least 2 colluders, got {self.colluders!r}"
            )
        attacks = tuple(self.attacks)
        if not attacks:
            raise CampaignError("matrix needs at least one attack mode")
        for attack in attacks:
            if attack not in ATTACK_MODES:
                raise CampaignError(
                    f"unknown attack mode {attack!r}; choose from {ATTACK_MODES}"
                )
        if len(set(attacks)) != len(attacks):
            raise CampaignError("duplicate attack modes in matrix spec")
        defenses = tuple(self.defenses) or available_defenses()
        for defense in defenses:
            if defense not in available_defenses():
                raise CampaignError(
                    f"unknown defense {defense!r}; available: "
                    f"{', '.join(available_defenses())}"
                )
        if len(set(defenses)) != len(defenses):
            raise CampaignError("duplicate defenses in matrix spec")
        object.__setattr__(self, "attacks", attacks)
        object.__setattr__(self, "defenses", defenses)

    def campaign_for(self, attack: str) -> CampaignSpec:
        """The per-attack campaign: base with the mode (and its required
        malicious count) pinned, swept over the defense axis."""
        if attack not in self.attacks:
            raise CampaignError(f"attack {attack!r} is not part of this matrix")
        base = dataclasses.replace(
            self.base,
            attack_mode=attack,
            n_malicious=attack_malicious(attack, self.colluders),
        )
        return CampaignSpec(
            name=f"{self.name}-{attack}",
            base=base,
            axes=(("defense", self.defenses),),
            runs=self.runs,
        )

    def campaigns(self) -> List[CampaignSpec]:
        """Every per-attack campaign, in attack order."""
        return [self.campaign_for(attack) for attack in self.attacks]

    def journal_for(self, attack: str, journal_dir: Union[str, Path]) -> Path:
        """Journal path of the per-attack campaign."""
        return Path(journal_dir) / f"{self.name}-{attack}.journal.jsonl"

    def total_jobs(self) -> int:
        """Cells × replications across the whole matrix."""
        return len(self.attacks) * len(self.defenses) * self.runs


# ----------------------------------------------------------------------
# Aggregation: journals -> MatrixReport
# ----------------------------------------------------------------------
def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def _cell_metrics(defense: str, reports: List[MetricsReport]) -> Dict[str, Any]:
    """Fold one cell's replications into its headline numbers.

    Detection is the *plugin's* verdict — :meth:`Defense.detected` — not
    a raw ``detections > 0`` test, so schemes with their own evidence
    surface (SND's unverified-link counters) are judged on their own
    terms.  The plugin's :meth:`Defense.metrics_contribution` keys are
    averaged into the ``contribution`` block.
    """
    plugin = get_defense(defense)
    config = plugin.resolve_config(None)
    contribution: Dict[str, List[float]] = {}
    for report in reports:
        for key, value in plugin.metrics_contribution(report, config).items():
            contribution.setdefault(key, []).append(float(value))
    return {
        "runs": len(reports),
        "detection_rate": _mean(
            [1.0 if plugin.detected(r) else 0.0 for r in reports]
        ),
        "detections": _mean([float(r.detections) for r in reports]),
        "isolations": _mean([float(r.isolations) for r in reports]),
        "false_isolations": _mean(
            [float(sum(r.false_isolations.values())) for r in reports]
        ),
        "mean_isolation_latency": _mean(
            [v for v in (r.mean_isolation_latency() for r in reports) if v is not None]
        ),
        "mean_detection_latency": _mean(
            [v for v in (r.mean_detection_latency() for r in reports) if v is not None]
        ),
        "delivery_fraction": _mean(
            [r.delivered / max(1, r.originated) for r in reports]
        ),
        "wormhole_drop_fraction": _mean(
            [r.fraction_wormhole_dropped for r in reports]
        ),
        "contribution": {
            key: _mean(values) for key, values in sorted(contribution.items())
        },
    }


def aggregate_matrix(
    spec: MatrixSpec, journal_dir: Union[str, Path]
) -> MatrixReport:
    """Reload every per-attack journal and fold the cells into one
    :class:`~repro.obs.report.MatrixReport`.

    Raises :class:`~repro.experiments.campaign.CampaignError` when any
    cell's replications are missing from its journal — run the matrix to
    completion (``--resume`` after an interruption) first.
    """
    with span("matrix.aggregate"):
        cells: List[Dict[str, Any]] = []
        for attack in spec.attacks:
            campaign = spec.campaign_for(attack)
            journal = spec.journal_for(attack, journal_dir)
            try:
                state = load_journal(journal, tolerate_partial=True)
            except CampaignError as exc:
                raise CampaignError(
                    f"matrix {spec.name!r} has no complete journal for "
                    f"attack {attack!r}: {exc}"
                ) from exc
            by_defense: Dict[str, List[MetricsReport]] = {}
            for job in compile_campaign(campaign):
                report = state.reports.get(job.digest)
                if report is None:
                    raise CampaignError(
                        f"journal {journal} is missing job {job.label()}; "
                        f"run the matrix to completion (--resume) first"
                    )
                defense = dict(job.point)["defense"]
                by_defense.setdefault(defense, []).append(report)
            for defense in spec.defenses:
                cells.append(
                    {
                        "attack": attack,
                        "defense": defense,
                        "metrics": _cell_metrics(defense, by_defense[defense]),
                    }
                )
        return MatrixReport(
            payload={
                "matrix": spec.name,
                "attacks": list(spec.attacks),
                "defenses": list(spec.defenses),
                "runs": spec.runs,
                "base": {
                    "n_nodes": spec.base.n_nodes,
                    "duration": spec.base.duration,
                    "seed": spec.base.seed,
                    "attack_start": spec.base.attack_start,
                },
                "cells": cells,
            }
        )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@dataclass
class MatrixResult:
    """Outcome of one :func:`run_matrix` invocation."""

    spec: MatrixSpec
    campaigns: Dict[str, CampaignResult]
    complete: bool
    report: Optional[MatrixReport] = None

    @property
    def executed(self) -> int:
        return sum(r.executed for r in self.campaigns.values())

    @property
    def completed_jobs(self) -> int:
        return sum(r.completed_jobs for r in self.campaigns.values())

    @property
    def interrupted(self) -> Optional[str]:
        for result in self.campaigns.values():
            if result.interrupted is not None:
                return result.interrupted
        return None

    def format(self) -> str:
        """Stable one-screen execution summary (the report renders the
        matrix itself)."""
        lines = [
            f"matrix {self.spec.name}"
            f" cells={len(self.spec.attacks) * len(self.spec.defenses)}"
            f" jobs={self.spec.total_jobs()}"
            f" completed={self.completed_jobs}"
            f" complete={'yes' if self.complete else 'no'}"
        ]
        for attack in self.spec.attacks:
            result = self.campaigns.get(attack)
            if result is None:
                lines.append(f"  {attack:<14s} not started")
            else:
                lines.append(
                    f"  {attack:<14s} executed={result.executed}"
                    f" cache={result.from_cache}"
                    f" journal={result.from_journal}"
                    f" complete={'yes' if result.complete else 'no'}"
                )
        return "\n".join(lines)


def run_matrix(
    spec: MatrixSpec,
    *,
    journal_dir: Union[str, Path],
    backend: Union[str, ExecutionBackend] = "inline",
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    resume: bool = False,
    retry: RetryPolicy = RetryPolicy(),
    supervision: SupervisionPolicy = SupervisionPolicy(),
    progress: Optional[CampaignProgress] = None,
    trace: Optional[TraceLog] = None,
    max_jobs: Optional[int] = None,
    stop: Optional[Callable[[], bool]] = None,
    fsync: bool = True,
) -> MatrixResult:
    """Run (or resume) every per-attack campaign, then aggregate.

    The journal directory is mandatory: the aggregation reloads the
    journals, so an unjournaled matrix could never render its report.
    ``max_jobs`` budgets *new* jobs across the whole matrix; when the
    budget runs out (or ``stop`` fires) the result comes back incomplete
    and a later ``resume=True`` call picks up where it stopped,
    producing a byte-identical report to an uninterrupted run.
    """
    campaigns: Dict[str, CampaignResult] = {}
    complete = True
    remaining = max_jobs
    with span("matrix.run"):
        for attack in spec.attacks:
            if stop is not None and stop():
                complete = False
                break
            if remaining is not None and remaining <= 0:
                complete = False
                break
            result = run_campaign(
                spec.campaign_for(attack),
                backend=backend,
                jobs=jobs,
                cache=cache,
                journal=spec.journal_for(attack, journal_dir),
                resume=resume,
                retry=retry,
                supervision=supervision,
                progress=progress,
                trace=trace,
                max_jobs=remaining,
                stop=stop,
                fsync=fsync,
            )
            campaigns[attack] = result
            if remaining is not None:
                remaining -= result.executed
            if not result.complete:
                complete = False
                break
    report = aggregate_matrix(spec, journal_dir) if complete else None
    return MatrixResult(
        spec=spec, campaigns=campaigns, complete=complete, report=report
    )


__all__ = [
    "DEFAULT_MATRIX_ATTACKS",
    "MatrixResult",
    "MatrixSpec",
    "aggregate_matrix",
    "attack_malicious",
    "run_matrix",
]
