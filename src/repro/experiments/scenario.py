"""Scenario assembly: one simulated deployment end to end.

``build_scenario`` wires together everything a run needs — topology,
network, crypto, LITEWORP agents on honest nodes, attack agents on
malicious nodes, traffic, and metrics — and ``run_scenario`` executes it
and returns the report.  The defaults reproduce the paper's Table 2 setup
with the out-of-band wormhole.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.attacks.agents import (
    HighPowerRouting,
    RelayAttacker,
    RushingRouting,
    TunnelRouting,
)
from repro.attacks.coordinator import TUNNEL_MODES, WormholeCoordinator
from repro.baselines.leashes import LeashAgent, LeashConfig
from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.crypto.keys import PairwiseKeyManager
from repro.faults.controller import FaultController
from repro.faults.plan import FaultPlan
from repro.metrics.collector import MetricsCollector, MetricsReport
from repro.net.network import Network, NetworkConfig
from repro.obs.config import ObsConfig
from repro.obs.spans import span
from repro.net.packet import NodeId
from repro.net.topology import Topology, choose_separated_nodes, generate_connected_topology
from repro.routing.config import RoutingConfig
from repro.routing.ondemand import OnDemandRouting
from repro.sim.engine import Simulator, make_simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog
from repro.traffic.generator import TrafficConfig, TrafficGenerator

ATTACK_MODES = ("none", "outofband", "encapsulation", "highpower", "relay", "rushing")
DEFENSES = ("auto", "liteworp", "geo_leash", "temporal_leash", "none")


def _default_leash_config() -> LeashConfig:
    return LeashConfig()


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything that defines one simulated run.

    ``defense`` selects the protection scheme: ``"liteworp"`` (this
    paper), ``"geo_leash"`` / ``"temporal_leash"`` (the packet-leash
    baseline from the paper's related work), or ``"none"``.  The default
    ``"auto"`` resolves to ``"liteworp"`` unless the deprecated
    ``liteworp_enabled`` flag is explicitly set, in which case the legacy
    boolean still wins (with a :class:`DeprecationWarning`).
    """

    n_nodes: int = 100
    tx_range: float = 30.0
    avg_neighbors: float = 8.0
    seed: int = 1
    duration: float = 300.0
    # Deprecated: pass defense="liteworp" / "none" instead.  None means
    # "not set"; an explicit bool keeps working through effective_defense
    # but warns at construction.
    liteworp_enabled: Optional[bool] = None
    defense: str = "auto"
    liteworp: LiteworpConfig = field(default_factory=LiteworpConfig)
    leash: "LeashConfig" = field(default_factory=lambda: _default_leash_config())
    oracle_neighbors: bool = True
    routing: RoutingConfig = field(default_factory=RoutingConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    n_malicious: int = 2
    attack_mode: str = "outofband"
    attack_start: float = 50.0
    malicious_min_separation: int = 2
    fake_prev_strategy: str = "smart"
    encap_hop_delay: float = 0.02
    highpower_multiplier: float = 3.0
    fault_plan: Optional[FaultPlan] = None
    # Observability switches (JSONL export / strict schema / ring buffer);
    # None keeps the zero-overhead default.  See repro.obs.
    obs: Optional[ObsConfig] = None

    def __post_init__(self) -> None:
        # Eager validation: a malformed config must fail at construction
        # with a clear message, not minutes into a run (or, worse, produce
        # a silently empty report).
        if self.liteworp_enabled is not None:
            warnings.warn(
                "ScenarioConfig.liteworp_enabled is deprecated; pass "
                "defense='liteworp' or defense='none' instead",
                DeprecationWarning,
                stacklevel=3,
            )
        if self.n_nodes < 4:
            raise ValueError(f"need at least 4 nodes, got {self.n_nodes!r}")
        if self.tx_range <= 0:
            raise ValueError(f"tx_range must be positive, got {self.tx_range!r}")
        if self.avg_neighbors <= 0:
            raise ValueError(f"avg_neighbors must be positive, got {self.avg_neighbors!r}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration!r}")
        if self.attack_start < 0:
            raise ValueError(f"attack_start must be non-negative, got {self.attack_start!r}")
        if self.malicious_min_separation < 0:
            raise ValueError(
                "malicious_min_separation must be non-negative, "
                f"got {self.malicious_min_separation!r}"
            )
        if self.encap_hop_delay < 0:
            raise ValueError(
                f"encap_hop_delay must be non-negative, got {self.encap_hop_delay!r}"
            )
        if self.highpower_multiplier <= 0:
            raise ValueError(
                f"highpower_multiplier must be positive, got {self.highpower_multiplier!r}"
            )
        if self.attack_mode not in ATTACK_MODES:
            raise ValueError(f"attack_mode must be one of {ATTACK_MODES}")
        if self.defense not in DEFENSES:
            raise ValueError(f"defense must be one of {DEFENSES}")
        if self.n_malicious < 0:
            raise ValueError("n_malicious must be non-negative")
        if self.attack_mode in TUNNEL_MODES and 0 < self.n_malicious < 2:
            raise ValueError("tunnel modes need at least two colluders")
        if self.attack_mode in ("highpower", "relay", "rushing") and self.n_malicious > 1:
            raise ValueError(f"{self.attack_mode} uses exactly one malicious node")
        if self.duration <= self.attack_start and self.attack_mode != "none" and self.n_malicious:
            raise ValueError("duration must extend past attack_start")

    def effective_defense(self) -> str:
        """Resolve ``"auto"`` (honouring the deprecated boolean shim)."""
        if self.defense != "auto":
            return self.defense
        if self.liteworp_enabled is None:
            return "liteworp"
        return "liteworp" if self.liteworp_enabled else "none"

    def effective_malicious(self) -> int:
        """Malicious node count after mode constraints (0 disables attack)."""
        if self.attack_mode == "none":
            return 0
        if self.attack_mode in TUNNEL_MODES and self.n_malicious < 2:
            return 0
        return self.n_malicious


@dataclass
class Scenario:
    """A built (but not yet run) deployment with all live objects exposed."""

    config: ScenarioConfig
    sim: Simulator
    rng: RngRegistry
    trace: TraceLog
    topology: Topology
    network: Network
    routers: Dict[NodeId, OnDemandRouting]
    agents: Dict[NodeId, LiteworpAgent]
    traffic: TrafficGenerator
    metrics: MetricsCollector
    malicious_ids: Tuple[NodeId, ...]
    coordinator: Optional[WormholeCoordinator] = None
    relay_attacker: Optional[RelayAttacker] = None
    leash_agents: Dict[NodeId, LeashAgent] = field(default_factory=dict)
    fault_controller: Optional[FaultController] = None

    @property
    def honest_ids(self) -> Tuple[NodeId, ...]:
        """Node ids not under attacker control."""
        bad = set(self.malicious_ids)
        return tuple(n for n in self.network.node_ids() if n not in bad)

    def run(self) -> MetricsReport:
        """Execute to the configured horizon and return the metrics."""
        from repro.obs.counters import snapshot_counters

        with span("scenario.run"):
            self.traffic.start()
            try:
                self.sim.run(until=self.config.duration)
            finally:
                # Flush streamed trace exports even when a strict-mode schema
                # violation (or any other error) aborts the run mid-flight.
                self.trace.close_sinks()
        with span("metrics.collect"):
            return self.metrics.report(
                duration=self.config.duration,
                node_counters=snapshot_counters(self.agents),
            )


def build_scenario(config: ScenarioConfig) -> Scenario:
    """Assemble a deployment per ``config`` (deterministic given the seed)."""
    with span("scenario.build"):
        return _build_scenario(config)


def _build_scenario(config: ScenarioConfig) -> Scenario:
    rng = RngRegistry(seed=config.seed)
    sim = make_simulator()
    trace = _build_trace(config)
    topology = generate_connected_topology(
        config.n_nodes,
        config.tx_range,
        config.avg_neighbors,
        rng.stream("topology"),
        min_degree=2,
    )
    network = Network(sim, topology, rng, trace=trace, config=config.network)
    keys = PairwiseKeyManager()

    malicious_ids = _choose_malicious(config, topology, rng.stream("attack-placement"))
    malicious_set = frozenset(malicious_ids)

    coordinator: Optional[WormholeCoordinator] = None
    if config.attack_mode in TUNNEL_MODES and malicious_ids:
        coordinator = WormholeCoordinator(
            sim,
            network,
            trace,
            mode=config.attack_mode,
            encap_hop_delay=config.encap_hop_delay,
            rng=rng.stream("attack"),
        )

    routers: Dict[NodeId, OnDemandRouting] = {}
    agents: Dict[NodeId, LiteworpAgent] = {}
    leash_agents: Dict[NodeId, LeashAgent] = {}
    relay_attacker: Optional[RelayAttacker] = None
    adjacency = topology.adjacency()
    defense = config.effective_defense()
    leash_config = replace(
        config.leash,
        kind="geographic" if defense == "geo_leash" else config.leash.kind,
        comm_range=config.tx_range,
        bandwidth_bps=config.network.bandwidth_bps,
    )
    if defense == "temporal_leash":
        leash_config = replace(leash_config, kind="temporal")

    for node_id in network.node_ids():
        node = network.node(node_id)
        node_rng = rng.stream(f"routing:{node_id}")
        if node_id in malicious_set:
            router = _build_malicious_router(
                config, sim, node, trace, node_rng, network, coordinator
            )
            if defense == "liteworp" and not config.oracle_neighbors:
                # Insider nodes are compromised only after the compromise
                # threshold time T_CT: during discovery they participate
                # like everyone else (reply to HELLOs, broadcast their
                # neighbor list) so honest tables include them.
                from repro.core.discovery import NeighborDiscovery
                from repro.core.tables import NeighborTable

                NeighborDiscovery(
                    sim,
                    node,
                    NeighborTable(node_id),
                    keys.enroll(node_id),
                    config.liteworp,
                    trace,
                    rng.stream(f"liteworp:{node_id}"),
                ).start()
            if config.attack_mode == "relay":
                relay_attacker = _build_relay_attacker(config, sim, node, topology, trace, rng)
            if defense in ("geo_leash", "temporal_leash"):
                # Insider attackers run the leash protocol too: leashing
                # their own transmissions truthfully is exactly how they
                # evade the scheme.
                # Attackers stamp but never reject (a filter would only
                # protect them, and their behaviour stays unconstrained).
                insider = LeashAgent(
                    sim, node, network.radio, leash_config, trace,
                    verify_incoming=False,
                )
                network.channel.set_frame_stamper(node_id, insider.stamp)
        else:
            if defense == "liteworp":
                agent = LiteworpAgent(
                    sim,
                    node,
                    keys.enroll(node_id),
                    config.liteworp,
                    trace,
                    rng=rng.stream(f"liteworp:{node_id}"),
                )
                agents[node_id] = agent
                network.channel.attach_loss_handler(
                    node_id, agent.monitor.note_reception_loss
                )
            elif defense in ("geo_leash", "temporal_leash"):
                leash_agent = LeashAgent(
                    sim, node, network.radio, leash_config, trace
                )
                leash_agents[node_id] = leash_agent
                network.channel.set_frame_stamper(node_id, leash_agent.stamp)
            router = OnDemandRouting(sim, node, config.routing, trace, node_rng)
            if defense == "liteworp":
                agents[node_id].attach_router(router)
        routers[node_id] = router

    if defense == "liteworp":
        for node_id, agent in agents.items():
            if config.oracle_neighbors:
                agent.install_oracle(adjacency)
            else:
                agent.start_discovery()

    activation_time = config.attack_start
    if coordinator is not None:
        coordinator.activate_at(activation_time)
    else:
        for node_id in malicious_ids:
            router = routers[node_id]
            if hasattr(router, "activate"):
                sim.schedule_at(activation_time, router.activate)
        if relay_attacker is not None:
            sim.schedule_at(activation_time, relay_attacker.activate)

    honest = [n for n in network.node_ids() if n not in malicious_set]
    traffic = TrafficGenerator(sim, routers, honest, rng, config=config.traffic)

    honest_neighbors = {
        m: frozenset(n for n in adjacency[m] if n not in malicious_set)
        for m in malicious_ids
    }
    metrics = MetricsCollector(
        trace,
        malicious_ids=malicious_ids,
        honest_neighbors=honest_neighbors,
    )
    metrics.attach_network(network)

    fault_controller: Optional[FaultController] = None
    if config.fault_plan is not None and len(config.fault_plan):
        fault_controller = FaultController(network)
        fault_controller.apply(config.fault_plan)

    return Scenario(
        config=config,
        sim=sim,
        rng=rng,
        trace=trace,
        topology=topology,
        network=network,
        routers=routers,
        agents=agents,
        traffic=traffic,
        metrics=metrics,
        malicious_ids=tuple(malicious_ids),
        coordinator=coordinator,
        relay_attacker=relay_attacker,
        leash_agents=leash_agents,
        fault_controller=fault_controller,
    )


def run_scenario(config: ScenarioConfig) -> MetricsReport:
    """Build and run one scenario; convenience for sweeps."""
    return build_scenario(config).run()


def average_runs(
    config: ScenarioConfig,
    runs: int,
    jobs: Optional[int] = None,
    cache: Optional[object] = None,
) -> List[MetricsReport]:
    """Run ``runs`` independent replications (the paper averages 30).

    Replication seeds are hash-derived (:mod:`repro.experiments.seeds`):
    index 0 is the base seed itself, higher indices are SHA-256 children —
    the historical ``seed + 1000 * index`` scheme collided across sweep
    points and survives only as ``seeds.legacy_child_seed``.

    ``jobs``/``cache`` fan the replications across worker processes and
    consult a :class:`~repro.experiments.cache.ResultCache`; both default
    to the serial, uncached behaviour.
    """
    # Imported lazily: the runner imports this module for run_scenario.
    from repro.experiments.runner import SweepRunner, replication_configs

    return SweepRunner(jobs=jobs, cache=cache).run_many(
        replication_configs(config, runs)
    )


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _build_trace(config: ScenarioConfig) -> TraceLog:
    """A trace log with the configured observability wiring installed."""
    obs = config.obs
    if obs is None:
        return TraceLog()
    trace = TraceLog(capacity=obs.ring_capacity)
    if obs.strict:
        from repro.obs.schema import install_strict

        install_strict(trace)
    if obs.trace_path is not None:
        from repro.experiments.cache import config_digest
        from repro.obs.sinks import JsonlSink

        # Tagged so multi-run exports into one file can be regrouped per
        # run downstream.  The seed alone is not unique — sweep points
        # share replication seeds — so the tag carries the config digest.
        # Digested with obs stripped: the tag identifies the simulation,
        # not where its trace happens to be written.
        run_tag = f"{config.seed}:{config_digest(replace(config, obs=None))[:12]}"
        trace.attach_sink(JsonlSink(obs.trace_path, append=True, run=run_tag))
    return trace


def _choose_malicious(
    config: ScenarioConfig, topology: Topology, rng: random.Random
) -> List[NodeId]:
    count = config.effective_malicious()
    if count == 0:
        return []
    if config.attack_mode == "relay":
        node = _find_relay_position(topology, rng)
        return [node]
    return choose_separated_nodes(
        topology, count, config.malicious_min_separation, rng
    )


def _find_relay_position(topology: Topology, rng: random.Random) -> NodeId:
    """A node with two neighbors that are not each other's neighbors."""
    adjacency = topology.adjacency()
    candidates = list(topology.node_ids)
    rng.shuffle(candidates)
    for node in candidates:
        if _relay_victims(adjacency, node) is not None:
            return node
    raise RuntimeError("no suitable relay position in this topology")


def _relay_victims(adjacency, node: NodeId) -> Optional[Tuple[NodeId, NodeId]]:
    neighbors = adjacency[node]
    for i, a in enumerate(neighbors):
        near_a = set(adjacency[a])
        for b in neighbors[i + 1:]:
            if b not in near_a:
                return (a, b)
    return None


def _build_malicious_router(
    config: ScenarioConfig,
    sim: Simulator,
    node,
    trace: TraceLog,
    node_rng: random.Random,
    network: Network,
    coordinator: Optional[WormholeCoordinator],
) -> OnDemandRouting:
    if config.attack_mode in TUNNEL_MODES:
        assert coordinator is not None
        return TunnelRouting(
            sim, node, config.routing, trace, node_rng,
            coordinator=coordinator,
            network=network,
            fake_prev_strategy=config.fake_prev_strategy,
        )
    if config.attack_mode == "highpower":
        return HighPowerRouting(
            sim, node, config.routing, trace, node_rng,
            network=network,
            range_multiplier=config.highpower_multiplier,
        )
    if config.attack_mode == "rushing":
        return RushingRouting(sim, node, config.routing, trace, node_rng)
    # relay: the attacker runs plain routing; the relay sits below it.
    return OnDemandRouting(sim, node, config.routing, trace, node_rng)


def _build_relay_attacker(
    config: ScenarioConfig,
    sim: Simulator,
    node,
    topology: Topology,
    trace: TraceLog,
    rng: RngRegistry,
) -> RelayAttacker:
    victims = _relay_victims(topology.adjacency(), node.node_id)
    if victims is None:  # pragma: no cover - placement guarantees a pair
        raise RuntimeError("relay node lost its victim pair")
    return RelayAttacker(sim, node, victims, trace)
