"""Scenario assembly: one simulated deployment end to end.

``build_scenario`` wires together everything a run needs — topology,
network, crypto, LITEWORP agents on honest nodes, attack agents on
malicious nodes, traffic, and metrics — and ``run_scenario`` executes it
and returns the report.  The defaults reproduce the paper's Table 2 setup
with the out-of-band wormhole.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.attacks.agents import (
    HighPowerRouting,
    RelayAttacker,
    RushingRouting,
    TunnelRouting,
)
from repro.attacks.coordinator import TUNNEL_MODES, WormholeCoordinator
from repro.baselines.leashes import LeashAgent, LeashConfig
from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.crypto.keys import PairwiseKeyManager
from repro.defenses import (
    Defense,
    DefenseContext,
    DefenseSpec,
    available_defenses,
    get_defense,
)
from repro.faults.controller import FaultController
from repro.faults.plan import FaultPlan
from repro.metrics.collector import MetricsCollector, MetricsReport
from repro.net.network import Network, NetworkConfig
from repro.obs.config import ObsConfig
from repro.obs.spans import span
from repro.net.packet import NodeId
from repro.net.topology import Topology, choose_separated_nodes, generate_connected_topology
from repro.routing.config import RoutingConfig
from repro.routing.ondemand import OnDemandRouting
from repro.sim.engine import Simulator, make_simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog
from repro.traffic.generator import TrafficConfig, TrafficGenerator

ATTACK_MODES = ("none", "outofband", "encapsulation", "highpower", "relay", "rushing")
#: The selectable ``defense=`` vocabulary at import time.  Validation is
#: dynamic — plugins registered later become selectable immediately —
#: but this snapshot is what the CLI offers as choices.
DEFENSES = ("auto",) + available_defenses()


def _default_leash_config() -> LeashConfig:
    return LeashConfig()


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything that defines one simulated run.

    ``defense`` selects the protection scheme by registry name — any
    value from :func:`repro.defenses.available_defenses` (the built-ins:
    ``"liteworp"``, ``"geo_leash"``, ``"temporal_leash"``, ``"rtt"``,
    ``"snd"``, ``"none"``), a :class:`~repro.defenses.DefenseSpec`, or a
    ``{"name", "config"}`` mapping carrying a per-defense config block.
    The default ``"auto"`` resolves to ``"liteworp"``.  Whatever form is
    passed, the field is normalised to a ``DefenseSpec`` with the config
    block resolved through the plugin at construction, so a malformed
    block fails here and two spellings of the same run digest alike.
    """

    n_nodes: int = 100
    tx_range: float = 30.0
    avg_neighbors: float = 8.0
    seed: int = 1
    duration: float = 300.0
    # Removed: the pre-registry boolean.  Kept as a field only so the
    # old spelling fails with a pointed ValueError instead of an opaque
    # TypeError.
    liteworp_enabled: Optional[bool] = None
    defense: Any = "auto"
    liteworp: LiteworpConfig = field(default_factory=LiteworpConfig)
    leash: "LeashConfig" = field(default_factory=lambda: _default_leash_config())
    oracle_neighbors: bool = True
    routing: RoutingConfig = field(default_factory=RoutingConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    n_malicious: int = 2
    attack_mode: str = "outofband"
    attack_start: float = 50.0
    malicious_min_separation: int = 2
    fake_prev_strategy: str = "smart"
    encap_hop_delay: float = 0.02
    highpower_multiplier: float = 3.0
    fault_plan: Optional[FaultPlan] = None
    # Observability switches (JSONL export / strict schema / ring buffer);
    # None keeps the zero-overhead default.  See repro.obs.
    obs: Optional[ObsConfig] = None

    def __post_init__(self) -> None:
        # Eager validation: a malformed config must fail at construction
        # with a clear message, not minutes into a run (or, worse, produce
        # a silently empty report).
        if self.liteworp_enabled is not None:
            raise ValueError(
                "ScenarioConfig.liteworp_enabled was removed; pass "
                "defense='liteworp' or defense='none' instead"
            )
        if self.n_nodes < 4:
            raise ValueError(f"need at least 4 nodes, got {self.n_nodes!r}")
        if self.tx_range <= 0:
            raise ValueError(f"tx_range must be positive, got {self.tx_range!r}")
        if self.avg_neighbors <= 0:
            raise ValueError(f"avg_neighbors must be positive, got {self.avg_neighbors!r}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration!r}")
        if self.attack_start < 0:
            raise ValueError(f"attack_start must be non-negative, got {self.attack_start!r}")
        if self.malicious_min_separation < 0:
            raise ValueError(
                "malicious_min_separation must be non-negative, "
                f"got {self.malicious_min_separation!r}"
            )
        if self.encap_hop_delay < 0:
            raise ValueError(
                f"encap_hop_delay must be non-negative, got {self.encap_hop_delay!r}"
            )
        if self.highpower_multiplier <= 0:
            raise ValueError(
                f"highpower_multiplier must be positive, got {self.highpower_multiplier!r}"
            )
        if self.attack_mode not in ATTACK_MODES:
            raise ValueError(f"attack_mode must be one of {ATTACK_MODES}")
        spec = DefenseSpec.coerce(self.defense)
        plugin_name = "liteworp" if spec.name == "auto" else spec.name
        if plugin_name not in available_defenses():
            raise ValueError(
                f"defense must be one of {('auto',) + available_defenses()}, "
                f"got {spec.name!r}"
            )
        # Resolve the config block eagerly: a malformed block fails at
        # construction, and equivalent spellings (mapping vs dataclass vs
        # omitted default) normalise to one canonical spec — so the cache
        # digest cannot split or collide on spelling.
        resolved = get_defense(plugin_name).resolve_config(spec.config)
        if resolved is not spec.config:
            spec = DefenseSpec(name=spec.name, config=resolved)
        object.__setattr__(self, "defense", spec)
        if self.n_malicious < 0:
            raise ValueError("n_malicious must be non-negative")
        if self.attack_mode in TUNNEL_MODES and 0 < self.n_malicious < 2:
            raise ValueError("tunnel modes need at least two colluders")
        if self.attack_mode in ("highpower", "relay", "rushing") and self.n_malicious > 1:
            raise ValueError(f"{self.attack_mode} uses exactly one malicious node")
        if self.duration <= self.attack_start and self.attack_mode != "none" and self.n_malicious:
            raise ValueError("duration must extend past attack_start")

    def defense_spec(self) -> DefenseSpec:
        """The normalised spec with ``"auto"`` resolved to its default."""
        spec = self.defense
        if spec.name == "auto":
            return DefenseSpec(name="liteworp", config=spec.config)
        return spec

    def effective_defense(self) -> str:
        """The registry name of the defense this run will use."""
        return self.defense_spec().name

    def effective_malicious(self) -> int:
        """Malicious node count after mode constraints (0 disables attack)."""
        if self.attack_mode == "none":
            return 0
        if self.attack_mode in TUNNEL_MODES and self.n_malicious < 2:
            return 0
        return self.n_malicious


@dataclass
class Scenario:
    """A built (but not yet run) deployment with all live objects exposed."""

    config: ScenarioConfig
    sim: Simulator
    rng: RngRegistry
    trace: TraceLog
    topology: Topology
    network: Network
    routers: Dict[NodeId, OnDemandRouting]
    agents: Dict[NodeId, LiteworpAgent]
    traffic: TrafficGenerator
    metrics: MetricsCollector
    malicious_ids: Tuple[NodeId, ...]
    coordinator: Optional[WormholeCoordinator] = None
    relay_attacker: Optional[RelayAttacker] = None
    leash_agents: Dict[NodeId, LeashAgent] = field(default_factory=dict)
    fault_controller: Optional[FaultController] = None
    defense: Optional[Defense] = None
    defense_ctx: Optional[DefenseContext] = None

    @property
    def honest_ids(self) -> Tuple[NodeId, ...]:
        """Node ids not under attacker control."""
        bad = set(self.malicious_ids)
        return tuple(n for n in self.network.node_ids() if n not in bad)

    def run(self) -> MetricsReport:
        """Execute to the configured horizon and return the metrics."""
        from repro.obs.counters import snapshot_counters

        with span("scenario.run"):
            self.traffic.start()
            try:
                self.sim.run(until=self.config.duration)
            finally:
                # Flush streamed trace exports even when a strict-mode schema
                # violation (or any other error) aborts the run mid-flight.
                self.trace.close_sinks()
        with span("metrics.collect"):
            if self.defense is not None and self.defense_ctx is not None:
                counters = self.defense.node_counters(self.defense_ctx)
            else:  # hand-assembled Scenario without a plugin
                counters = snapshot_counters(self.agents)
            return self.metrics.report(
                duration=self.config.duration,
                node_counters=counters,
            )


def build_scenario(config: ScenarioConfig) -> Scenario:
    """Assemble a deployment per ``config`` (deterministic given the seed)."""
    with span("scenario.build"):
        return _build_scenario(config)


def _build_scenario(config: ScenarioConfig) -> Scenario:
    rng = RngRegistry(seed=config.seed)
    sim = make_simulator()
    trace = _build_trace(config)
    topology = generate_connected_topology(
        config.n_nodes,
        config.tx_range,
        config.avg_neighbors,
        rng.stream("topology"),
        min_degree=2,
    )
    network = Network(sim, topology, rng, trace=trace, config=config.network)
    keys = PairwiseKeyManager()

    malicious_ids = _choose_malicious(config, topology, rng.stream("attack-placement"))
    malicious_set = frozenset(malicious_ids)

    coordinator: Optional[WormholeCoordinator] = None
    if config.attack_mode in TUNNEL_MODES and malicious_ids:
        coordinator = WormholeCoordinator(
            sim,
            network,
            trace,
            mode=config.attack_mode,
            encap_hop_delay=config.encap_hop_delay,
            rng=rng.stream("attack"),
        )

    routers: Dict[NodeId, OnDemandRouting] = {}
    relay_attacker: Optional[RelayAttacker] = None
    adjacency = topology.adjacency()

    spec = config.defense_spec()
    defense = get_defense(spec.name)
    ctx = DefenseContext(
        config=config,
        spec=spec,
        plugin_config=defense.resolve_config(spec.config),
        sim=sim,
        network=network,
        topology=topology,
        adjacency=adjacency,
        trace=trace,
        rng=rng,
        keys=keys,
        malicious=malicious_set,
    )
    defense.prepare(ctx)

    for node_id in network.node_ids():
        node = network.node(node_id)
        node_rng = rng.stream(f"routing:{node_id}")
        if node_id in malicious_set:
            router = _build_malicious_router(
                config, sim, node, trace, node_rng, network, coordinator
            )
            defense.attach_insider(node, sim, ctx)
            if config.attack_mode == "relay":
                relay_attacker = _build_relay_attacker(config, sim, node, topology, trace, rng)
        else:
            defense.attach_honest(node, sim, ctx)
            router = OnDemandRouting(sim, node, config.routing, trace, node_rng)
            defense.attach_router(node_id, router, ctx)
        routers[node_id] = router

    defense.finalize(ctx)

    activation_time = config.attack_start
    if coordinator is not None:
        coordinator.activate_at(activation_time)
    else:
        for node_id in malicious_ids:
            router = routers[node_id]
            if hasattr(router, "activate"):
                sim.schedule_at(activation_time, router.activate)
        if relay_attacker is not None:
            sim.schedule_at(activation_time, relay_attacker.activate)

    honest = [n for n in network.node_ids() if n not in malicious_set]
    traffic = TrafficGenerator(sim, routers, honest, rng, config=config.traffic)

    honest_neighbors = {
        m: frozenset(n for n in adjacency[m] if n not in malicious_set)
        for m in malicious_ids
    }
    metrics = MetricsCollector(
        trace,
        malicious_ids=malicious_ids,
        honest_neighbors=honest_neighbors,
    )
    metrics.attach_network(network)

    fault_controller: Optional[FaultController] = None
    if config.fault_plan is not None and len(config.fault_plan):
        fault_controller = FaultController(network)
        fault_controller.apply(config.fault_plan)

    return Scenario(
        config=config,
        sim=sim,
        rng=rng,
        trace=trace,
        topology=topology,
        network=network,
        routers=routers,
        agents=ctx.agents,
        traffic=traffic,
        metrics=metrics,
        malicious_ids=tuple(malicious_ids),
        coordinator=coordinator,
        relay_attacker=relay_attacker,
        leash_agents=ctx.leash_agents,
        fault_controller=fault_controller,
        defense=defense,
        defense_ctx=ctx,
    )


def run_scenario(config: ScenarioConfig) -> MetricsReport:
    """Build and run one scenario; convenience for sweeps."""
    return build_scenario(config).run()


def average_runs(
    config: ScenarioConfig,
    runs: int,
    jobs: Optional[int] = None,
    cache: Optional[object] = None,
) -> List[MetricsReport]:
    """Run ``runs`` independent replications (the paper averages 30).

    Replication seeds are hash-derived (:mod:`repro.experiments.seeds`):
    index 0 is the base seed itself, higher indices are SHA-256 children —
    the historical ``seed + 1000 * index`` scheme collided across sweep
    points and survives only as ``seeds.legacy_child_seed``.

    ``jobs``/``cache`` fan the replications across worker processes and
    consult a :class:`~repro.experiments.cache.ResultCache`; both default
    to the serial, uncached behaviour.
    """
    # Imported lazily: the runner imports this module for run_scenario.
    from repro.experiments.runner import SweepRunner, replication_configs

    return SweepRunner(jobs=jobs, cache=cache).run_many(
        replication_configs(config, runs)
    )


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _build_trace(config: ScenarioConfig) -> TraceLog:
    """A trace log with the configured observability wiring installed."""
    obs = config.obs
    if obs is None:
        return TraceLog()
    trace = TraceLog(capacity=obs.ring_capacity)
    if obs.strict:
        from repro.obs.schema import install_strict

        install_strict(trace)
    if obs.trace_path is not None:
        from repro.experiments.cache import config_digest
        from repro.obs.sinks import JsonlSink

        # Tagged so multi-run exports into one file can be regrouped per
        # run downstream.  The seed alone is not unique — sweep points
        # share replication seeds — so the tag carries the config digest.
        # Digested with obs stripped: the tag identifies the simulation,
        # not where its trace happens to be written.
        run_tag = f"{config.seed}:{config_digest(replace(config, obs=None))[:12]}"
        trace.attach_sink(JsonlSink(obs.trace_path, append=True, run=run_tag))
    return trace


def _choose_malicious(
    config: ScenarioConfig, topology: Topology, rng: random.Random
) -> List[NodeId]:
    count = config.effective_malicious()
    if count == 0:
        return []
    if config.attack_mode == "relay":
        node = _find_relay_position(topology, rng)
        return [node]
    return choose_separated_nodes(
        topology, count, config.malicious_min_separation, rng
    )


def _find_relay_position(topology: Topology, rng: random.Random) -> NodeId:
    """A node with two neighbors that are not each other's neighbors."""
    adjacency = topology.adjacency()
    candidates = list(topology.node_ids)
    rng.shuffle(candidates)
    for node in candidates:
        if _relay_victims(adjacency, node) is not None:
            return node
    raise RuntimeError("no suitable relay position in this topology")


def _relay_victims(adjacency, node: NodeId) -> Optional[Tuple[NodeId, NodeId]]:
    neighbors = adjacency[node]
    for i, a in enumerate(neighbors):
        near_a = set(adjacency[a])
        for b in neighbors[i + 1:]:
            if b not in near_a:
                return (a, b)
    return None


def _build_malicious_router(
    config: ScenarioConfig,
    sim: Simulator,
    node,
    trace: TraceLog,
    node_rng: random.Random,
    network: Network,
    coordinator: Optional[WormholeCoordinator],
) -> OnDemandRouting:
    if config.attack_mode in TUNNEL_MODES:
        assert coordinator is not None
        return TunnelRouting(
            sim, node, config.routing, trace, node_rng,
            coordinator=coordinator,
            network=network,
            fake_prev_strategy=config.fake_prev_strategy,
        )
    if config.attack_mode == "highpower":
        return HighPowerRouting(
            sim, node, config.routing, trace, node_rng,
            network=network,
            range_multiplier=config.highpower_multiplier,
        )
    if config.attack_mode == "rushing":
        return RushingRouting(sim, node, config.routing, trace, node_rng)
    # relay: the attacker runs plain routing; the relay sits below it.
    return OnDemandRouting(sim, node, config.routing, trace, node_rng)


def _build_relay_attacker(
    config: ScenarioConfig,
    sim: Simulator,
    node,
    topology: Topology,
    trace: TraceLog,
    rng: RngRegistry,
) -> RelayAttacker:
    victims = _relay_victims(topology.adjacency(), node.node_id)
    if victims is None:  # pragma: no cover - placement guarantees a pair
        raise RuntimeError("relay node lost its victim pair")
    return RelayAttacker(sim, node, victims, trace)
