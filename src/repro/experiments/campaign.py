"""Campaign orchestration: resumable, journaled batches of scenario sweeps.

A *campaign* is a declarative description of a whole study — a base
:class:`~repro.experiments.scenario.ScenarioConfig`, a grid of field
overrides (``axes``), and a replication count — compiled into a flat job
list and executed through a pluggable :class:`ExecutionBackend`.  Where a
figure runner is one in-process ``parallel_map`` call that forgets
everything on interruption, a campaign is built to be killed:

- **Content-addressed jobs** — every job is keyed by the existing
  :func:`~repro.experiments.cache.config_digest` of its concrete config,
  so "is this job done?" is a pure function of the spec, independent of
  process, host, or ordering.
- **Append-only journal** — each completed job is appended to a JSONL
  journal (one atomic line per job, like
  :class:`~repro.obs.sinks.JsonlSink`) together with its full-fidelity
  report state.  Resuming loads the journal, skips every recorded job,
  and produces byte-identical aggregates to an uninterrupted run.
- **Pluggable execution** — ``inline`` (serial, in-process), ``process``
  (the :mod:`~repro.experiments.runner` worker-pool machinery), and
  ``thread`` (for IO-bound trace-exporting jobs) backends share one
  retry/backoff loop: a crashed worker fails only its own job, which is
  re-dispatched up to :class:`RetryPolicy.retries` times.

Specs load from TOML or JSON (:func:`load_spec`) or are built in Python;
``repro campaign {run,plan,status}`` is the CLI surface and
:func:`repro.api.campaign` the stable programmatic entry point.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import time
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.cache import ResultCache, config_digest
from repro.experiments.runner import replication_configs, resolve_jobs, run_config
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.stats import summarize, summarize_optional
from repro.metrics.collector import MetricsReport
from repro.obs.progress import CampaignProgress
from repro.obs.spans import span
from repro.sim.trace import TraceLog

#: Journal line format version (bump on shape changes; old journals are
#: rejected with a clear error rather than misread).
JOURNAL_VERSION = 1


class CampaignError(RuntimeError):
    """A campaign could not be compiled, resumed, or completed."""


# ----------------------------------------------------------------------
# Spec: the declarative description of a campaign
# ----------------------------------------------------------------------
def apply_overrides(config: ScenarioConfig, overrides: Mapping[str, Any]) -> ScenarioConfig:
    """Return ``config`` with dotted-path field overrides applied.

    ``{"n_malicious": 2}`` replaces a top-level field;
    ``{"liteworp.theta": 4}`` recurses into the nested dataclass.  Unknown
    field names raise :class:`CampaignError` naming the offender.
    """
    # Group dotted paths by head so sibling overrides of one nested config
    # (liteworp.theta + liteworp.gamma) collapse into a single replace.
    flat: Dict[str, Any] = {}
    nested: Dict[str, Dict[str, Any]] = {}
    for name in sorted(overrides):
        value = overrides[name]
        if "." in name:
            head, rest = name.split(".", 1)
            nested.setdefault(head, {})[rest] = value
        else:
            flat[name] = value
    field_names = {f.name for f in dataclasses.fields(config)}
    for name in itertools.chain(flat, nested):
        if name not in field_names:
            raise CampaignError(
                f"unknown {type(config).__name__} field {name!r} in campaign overrides"
            )
    for head, sub in nested.items():
        inner = getattr(config, head)
        if not dataclasses.is_dataclass(inner):
            raise CampaignError(
                f"cannot apply dotted override to non-dataclass field {head!r}"
            )
        flat[head] = apply_overrides(inner, sub)
    return dataclasses.replace(config, **flat)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative campaign: base config × axis grid × replications.

    ``axes`` maps a (possibly dotted) :class:`ScenarioConfig` field path
    to the sequence of values to sweep; the campaign is the cartesian
    product over all axes in sorted-name order, each point replicated
    ``runs`` times with hash-derived seeds.
    """

    name: str
    base: ScenarioConfig = field(default_factory=ScenarioConfig)
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    runs: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign needs a non-empty name")
        if self.runs < 1:
            raise CampaignError(f"runs must be at least 1, got {self.runs!r}")
        normalized = tuple(
            (str(axis), tuple(values)) for axis, values in sorted(self.axes)
        )
        for axis, values in normalized:
            if not values:
                raise CampaignError(f"axis {axis!r} has no values")
        object.__setattr__(self, "axes", normalized)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        """Build a spec from the TOML/JSON document shape::

            {"name": ..., "runs": 2,
             "base": {"n_nodes": 30, "liteworp.theta": 4, ...},
             "axes": {"n_malicious": [0, 2], "defense": ["none", "liteworp"]}}

        ``base`` accepts dotted paths for nested configs exactly like the
        axes do.
        """
        payload = dict(payload)
        unknown = set(payload) - {"name", "base", "axes", "runs"}
        if unknown:
            raise CampaignError(f"unknown campaign spec key(s) {sorted(unknown)}")
        if "name" not in payload:
            raise CampaignError("campaign spec needs a 'name'")
        try:
            base = apply_overrides(ScenarioConfig(), dict(payload.get("base", {})))
        except (TypeError, ValueError) as exc:
            raise CampaignError(f"bad campaign base config: {exc}") from exc
        axes_raw = payload.get("axes", {})
        axes = tuple((name, tuple(values)) for name, values in axes_raw.items())
        return cls(
            name=str(payload["name"]),
            base=base,
            axes=axes,
            runs=int(payload.get("runs", 1)),
        )

    def axes_dict(self) -> Dict[str, Tuple[Any, ...]]:
        """The axis grid as a plain mapping (sorted by axis name)."""
        return dict(self.axes)

    def points(self) -> List[Tuple[Tuple[str, Any], ...]]:
        """Every sweep point as a tuple of ``(axis, value)`` pairs, in
        deterministic grid order (axes sorted by name, values as given)."""
        if not self.axes:
            return [()]
        names = [axis for axis, _ in self.axes]
        grids = [values for _, values in self.axes]
        return [
            tuple(zip(names, combo)) for combo in itertools.product(*grids)
        ]

    def digest(self) -> str:
        """Stable identity of this spec (guards journal/resume mismatches)."""
        return config_digest(
            {
                "campaign": self.name,
                "base": self.base,
                "axes": {axis: list(values) for axis, values in self.axes},
                "runs": self.runs,
            }
        )


def load_spec(path: Union[str, Path]) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CampaignError(f"cannot read campaign spec {path}: {exc}") from exc
    if path.suffix.lower() == ".toml":
        import tomllib

        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise CampaignError(f"{path}: invalid TOML: {exc}") from exc
    else:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise CampaignError(f"{path}: campaign spec must be a table/object")
    return CampaignSpec.from_dict(payload)


# ----------------------------------------------------------------------
# Compilation: spec -> content-addressed job list
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignJob:
    """One concrete simulation of the campaign, keyed by config digest."""

    index: int
    point: Tuple[Tuple[str, Any], ...]
    replication: int
    config: ScenarioConfig
    digest: str

    def label(self) -> str:
        """Human-readable ``axis=value,... #rep`` tag."""
        point = ",".join(f"{axis}={value}" for axis, value in self.point) or "-"
        return f"{point} #{self.replication}"


def compile_campaign(spec: CampaignSpec) -> List[CampaignJob]:
    """Expand ``spec`` into its flat, deterministic job list.

    Point order is the sorted-axis cartesian product; within a point,
    replications use the hash-derived child seeds of
    :func:`~repro.experiments.runner.replication_configs`.
    """
    with span("campaign.compile"):
        jobs: List[CampaignJob] = []
        for point in spec.points():
            try:
                point_config = apply_overrides(spec.base, dict(point))
            except (TypeError, ValueError) as exc:
                raise CampaignError(
                    f"invalid sweep point {dict(point)!r}: {exc}"
                ) from exc
            for replication, config in enumerate(
                replication_configs(point_config, spec.runs)
            ):
                jobs.append(
                    CampaignJob(
                        index=len(jobs),
                        point=point,
                        replication=replication,
                        config=config,
                        digest=config_digest(config),
                    )
                )
        return jobs


# ----------------------------------------------------------------------
# Journal: append-only completion log
# ----------------------------------------------------------------------
@dataclass
class JournalState:
    """Parsed journal contents (see :func:`load_journal`)."""

    spec_digest: Optional[str] = None
    total_jobs: Optional[int] = None
    reports: Dict[str, MetricsReport] = field(default_factory=dict)
    partial_lines: int = 0

    def __len__(self) -> int:
        return len(self.reports)


class CampaignJournal:
    """Append-only JSONL journal of completed campaign jobs.

    Opened lazily in line-buffered append mode, so every entry is one
    atomic ``O_APPEND`` write — a campaign killed mid-append leaves at
    worst a truncated final line, which :func:`load_journal` tolerates.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None
        self.entries_written = 0

    def _append(self, payload: Dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", buffering=1, encoding="utf-8")
        self._handle.write(json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n")
        self.entries_written += 1

    def begin(self, spec: CampaignSpec, total_jobs: int) -> None:
        """Record a (re)start: spec identity + compiled job count."""
        with span("campaign.journal"):
            self._append(
                {
                    "event": "begin",
                    "version": JOURNAL_VERSION,
                    "campaign": spec.name,
                    "spec": spec.digest(),
                    "jobs": total_jobs,
                }
            )

    def record(self, job: CampaignJob, report: MetricsReport) -> None:
        """Record one completed job with its full-fidelity report state."""
        with span("campaign.journal"):
            self._append(
                {
                    "event": "complete",
                    "digest": job.digest,
                    "index": job.index,
                    "point": {axis: value for axis, value in job.point},
                    "replication": job.replication,
                    "seed": job.config.seed,
                    "report": report.to_state(),
                }
            )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def load_journal(
    path: Union[str, Path], tolerate_partial: bool = True
) -> JournalState:
    """Parse a campaign journal back into completed-job reports.

    A truncated *final* line (the writer was killed mid-append) is
    skipped and counted when ``tolerate_partial`` is set; mid-file
    corruption and version/spec mismatches raise :class:`CampaignError`.
    """
    path = Path(path)
    state = JournalState()
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise CampaignError(f"cannot read campaign journal {path}: {exc}") from exc
    with handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                payload = json.loads(stripped)
            except json.JSONDecodeError as exc:
                if tolerate_partial and not handle.read().strip():
                    state.partial_lines += 1
                    break
                raise CampaignError(
                    f"{path}:{lineno}: corrupt journal line: {exc}"
                ) from exc
            event = payload.get("event")
            if event == "begin":
                version = payload.get("version")
                if version != JOURNAL_VERSION:
                    raise CampaignError(
                        f"{path}:{lineno}: journal version {version!r} "
                        f"(this build writes {JOURNAL_VERSION})"
                    )
                spec_digest = payload.get("spec")
                if state.spec_digest is not None and spec_digest != state.spec_digest:
                    raise CampaignError(
                        f"{path}:{lineno}: journal mixes two campaign specs"
                    )
                state.spec_digest = spec_digest
                state.total_jobs = payload.get("jobs")
            elif event == "complete":
                try:
                    report = MetricsReport.from_state(payload["report"])
                    digest = payload["digest"]
                except (KeyError, TypeError, ValueError) as exc:
                    raise CampaignError(
                        f"{path}:{lineno}: malformed completion entry: {exc}"
                    ) from exc
                state.reports[digest] = report
            else:
                raise CampaignError(
                    f"{path}:{lineno}: unknown journal event {event!r}"
                )
    return state


# ----------------------------------------------------------------------
# Execution backends
# ----------------------------------------------------------------------
#: Worker signature: one concrete config in, its report out.
JobFn = Callable[[ScenarioConfig], MetricsReport]


class ExecutionBackend:
    """How one wave of campaign jobs is executed.

    ``run_batch`` maps ``fn`` over ``(key, config)`` items and *never
    raises for a job failure*: it returns per-key results and per-key
    exceptions so the campaign's retry loop can re-dispatch exactly the
    failed jobs.
    """

    name = "abstract"

    def run_batch(
        self, fn: JobFn, items: Sequence[Tuple[int, ScenarioConfig]]
    ) -> Tuple[Dict[int, MetricsReport], Dict[int, BaseException]]:
        raise NotImplementedError


class InlineBackend(ExecutionBackend):
    """Serial in-process execution — the deterministic reference backend."""

    name = "inline"

    def run_batch(self, fn, items):
        results: Dict[int, MetricsReport] = {}
        failures: Dict[int, BaseException] = {}
        for key, config in items:
            try:
                results[key] = fn(config)
            except Exception as exc:  # noqa: BLE001 - collected for retry
                failures[key] = exc
        return results, failures


class _PoolBackend(ExecutionBackend):
    """Shared future-juggling for the executor-based backends."""

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs

    def _make_executor(self, workers: int) -> Executor:
        raise NotImplementedError

    def run_batch(self, fn, items):
        results: Dict[int, MetricsReport] = {}
        failures: Dict[int, BaseException] = {}
        if not items:
            return results, failures
        workers = min(resolve_jobs(self.jobs), len(items))
        executor = self._make_executor(max(1, workers))
        try:
            futures = {executor.submit(fn, config): key for key, config in items}
            pending = set(futures)
            while pending:
                try:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                except BaseException:
                    # The pool itself died (e.g. BrokenProcessPool while
                    # waiting): everything unfinished becomes a failure.
                    break
                for future in done:
                    key = futures[future]
                    try:
                        results[key] = future.result()
                    except Exception as exc:  # noqa: BLE001 - collected for retry
                        failures[key] = exc
            for future, key in futures.items():
                if key not in results and key not in failures:
                    exc = future.exception() if future.done() else None
                    failures[key] = exc or CampaignError(
                        "worker pool broke before the job finished"
                    )
        finally:
            # A broken pool is discarded wholesale; the next wave gets a
            # fresh one.
            executor.shutdown(wait=False, cancel_futures=True)
        return results, failures


class ProcessBackend(_PoolBackend):
    """Process-pool execution via the sweep runner's worker machinery.

    Jobs are dispatched to :func:`repro.experiments.runner.run_config`
    (the same picklable worker body ``SweepRunner`` fans out over), one
    future per job so a crashed worker fails only its own job.
    """

    name = "process"

    def _make_executor(self, workers: int) -> Executor:
        return ProcessPoolExecutor(max_workers=workers)


class ThreadBackend(_PoolBackend):
    """Thread-pool execution for IO-bound jobs (e.g. trace-exporting
    configs whose wall clock is dominated by JSONL appends)."""

    name = "thread"

    def _make_executor(self, workers: int) -> Executor:
        return ThreadPoolExecutor(max_workers=workers)


BACKENDS: Dict[str, Callable[..., ExecutionBackend]] = {
    "inline": lambda jobs=None: InlineBackend(),
    "process": ProcessBackend,
    "thread": ThreadBackend,
}


def make_backend(name: str, jobs: Optional[int] = None) -> ExecutionBackend:
    """Instantiate a backend by name (``inline``, ``process``, ``thread``)."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise CampaignError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return factory(jobs=jobs)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-job retry with exponential backoff between waves."""

    retries: int = 2
    backoff: float = 0.1
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative, got {self.retries!r}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be non-negative, got {self.backoff!r}")

    def delay(self, attempt: int) -> float:
        """Sleep before retry wave ``attempt`` (1-based)."""
        return self.backoff * (self.multiplier ** max(0, attempt - 1))


# ----------------------------------------------------------------------
# Aggregation + result
# ----------------------------------------------------------------------
def _summary_dict(summary) -> Dict[str, object]:
    return {"mean": summary.mean, "std": summary.std, "count": summary.count}


def aggregate_campaign(
    spec: CampaignSpec, jobs: Sequence[CampaignJob], reports: Mapping[int, MetricsReport]
) -> Dict[str, object]:
    """Per-point metric summaries over every replication.

    Pure function of the reports: running the same campaign twice — or
    interrupting and resuming it — yields byte-identical JSON.
    """
    points: List[Dict[str, object]] = []
    by_point: Dict[Tuple[Tuple[str, Any], ...], List[MetricsReport]] = {}
    order: List[Tuple[Tuple[str, Any], ...]] = []
    for job in jobs:
        if job.point not in by_point:
            by_point[job.point] = []
            order.append(job.point)
        by_point[job.point].append(reports[job.index])
    for point in order:
        group = by_point[point]
        metrics = {
            "originated": _summary_dict(summarize([r.originated for r in group])),
            "delivered": _summary_dict(summarize([r.delivered for r in group])),
            "wormhole_drops": _summary_dict(summarize([r.wormhole_drops for r in group])),
            "fraction_wormhole_dropped": _summary_dict(
                summarize([r.fraction_wormhole_dropped for r in group])
            ),
            "fraction_malicious_routes": _summary_dict(
                summarize([r.fraction_malicious_routes for r in group])
            ),
            "detections": _summary_dict(summarize([r.detections for r in group])),
            "isolations": _summary_dict(summarize([r.isolations for r in group])),
            "mean_isolation_latency": _summary_dict(
                summarize_optional([r.mean_isolation_latency() for r in group])
            ),
            "mean_detection_latency": _summary_dict(
                summarize_optional([r.mean_detection_latency() for r in group])
            ),
        }
        points.append(
            {
                "point": {axis: value for axis, value in point},
                "jobs": len(group),
                "metrics": metrics,
            }
        )
    return {
        "campaign": spec.name,
        "spec": spec.digest(),
        "runs": spec.runs,
        "points": points,
    }


@dataclass
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` invocation."""

    spec: CampaignSpec
    total_jobs: int
    executed: int
    from_cache: int
    from_journal: int
    retried: int
    complete: bool
    aggregate: Optional[Dict[str, object]] = None

    @property
    def completed_jobs(self) -> int:
        return self.executed + self.from_cache + self.from_journal

    def to_json(self) -> str:
        """Deterministic aggregate JSON (the campaign's published output)."""
        if self.aggregate is None:
            raise CampaignError("campaign is incomplete; no aggregate to render")
        return json.dumps(self.aggregate, indent=2, sort_keys=True) + "\n"

    def format(self) -> str:
        """Stable one-screen text summary."""
        lines = [
            f"campaign {self.spec.name}"
            f" jobs={self.total_jobs}"
            f" executed={self.executed}"
            f" cache={self.from_cache}"
            f" journal={self.from_journal}"
            f" retried={self.retried}"
            f" complete={'yes' if self.complete else 'no'}",
        ]
        if self.aggregate is not None:
            for entry in self.aggregate["points"]:
                point = ",".join(f"{k}={v}" for k, v in entry["point"].items()) or "-"
                drops = entry["metrics"]["fraction_wormhole_dropped"]["mean"]
                routes = entry["metrics"]["fraction_malicious_routes"]["mean"]
                lines.append(
                    f"  {point:<40s} drop={drops:.4f} malroutes={routes:.4f}"
                    f" (n={entry['jobs']})"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The orchestrator
# ----------------------------------------------------------------------
class CampaignRunner:
    """Compiles and executes a campaign with journaling, caching, and retry.

    Parameters
    ----------
    spec:
        The campaign to run.
    backend:
        An :class:`ExecutionBackend` instance (default: inline).
    cache:
        Optional :class:`~repro.experiments.cache.ResultCache`; consulted
        before dispatch and populated after every executed job.  Jobs that
        stream a trace export bypass cache reads (their records must hit
        the sink), matching ``SweepRunner`` semantics.
    journal_path:
        Where to append the completion journal; None disables journaling
        (and therefore resume).
    resume:
        Load the journal first and skip every job it records.  The
        journal's spec digest must match ``spec``.
    retry:
        Per-job :class:`RetryPolicy` for worker crashes.
    progress:
        Optional :class:`~repro.obs.progress.CampaignProgress` receiving
        live counter updates.
    trace:
        Optional :class:`~repro.sim.trace.TraceLog`; one ``campaign_job``
        record is emitted per completion (wall-clock seconds since start),
        so attached sinks stream live progress.
    max_jobs:
        Execute at most this many *new* jobs, then stop (journal intact,
        result marked incomplete).  The deterministic interruption hook
        used by the resume tests and the CI smoke job.
    worker:
        Job body override (tests inject flaky workers); defaults to
        :func:`repro.experiments.runner.run_config`.
    sleep:
        Backoff sleep override for tests.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        backend: Optional[ExecutionBackend] = None,
        *,
        cache: Optional[ResultCache] = None,
        journal_path: Optional[Union[str, Path]] = None,
        resume: bool = False,
        retry: RetryPolicy = RetryPolicy(),
        progress: Optional[CampaignProgress] = None,
        trace: Optional[TraceLog] = None,
        max_jobs: Optional[int] = None,
        worker: JobFn = run_config,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if resume and journal_path is None:
            raise CampaignError("--resume needs a journal path")
        self.spec = spec
        self.backend = backend or InlineBackend()
        self.cache = cache
        self.journal_path = Path(journal_path) if journal_path is not None else None
        self.resume = resume
        self.retry = retry
        self.progress = progress
        self.trace = trace
        self.max_jobs = max_jobs
        self.worker = worker
        self.sleep = sleep

    # -- helpers -------------------------------------------------------
    def _note(self, job: CampaignJob, source: str, started: float) -> None:
        if self.progress is not None:
            self.progress.job_done(source)
        if self.trace is not None:
            self.trace.emit(
                time.perf_counter() - started,
                "campaign_job",
                job=job.index,
                digest=job.digest[:12],
                source=source,
                replication=job.replication,
            )

    # -- the run -------------------------------------------------------
    def run(self) -> CampaignResult:
        started = time.perf_counter()
        jobs = compile_campaign(self.spec)
        if self.progress is not None:
            self.progress.start(total=len(jobs), name=self.spec.name)
        reports: Dict[int, MetricsReport] = {}
        from_journal = from_cache = executed = retried = 0

        if self.resume and self.journal_path is not None and self.journal_path.exists():
            with span("campaign.resume"):
                state = load_journal(self.journal_path, tolerate_partial=True)
            if state.spec_digest is not None and state.spec_digest != self.spec.digest():
                raise CampaignError(
                    f"journal {self.journal_path} records a different campaign "
                    f"spec ({state.spec_digest[:12]} != {self.spec.digest()[:12]})"
                )
            for job in jobs:
                report = state.reports.get(job.digest)
                if report is not None:
                    reports[job.index] = report
                    from_journal += 1
                    self._note(job, "journal", started)

        journal = (
            CampaignJournal(self.journal_path) if self.journal_path is not None else None
        )
        try:
            if journal is not None:
                journal.begin(self.spec, total_jobs=len(jobs))

            pending = [job for job in jobs if job.index not in reports]
            if self.cache is not None:
                with span("campaign.cache"):
                    still: List[CampaignJob] = []
                    for job in pending:
                        exporting = (
                            job.config.obs is not None
                            and job.config.obs.trace_path is not None
                        )
                        cached = None if exporting else self.cache.get(job.config)
                        if cached is not None:
                            reports[job.index] = cached
                            from_cache += 1
                            if journal is not None:
                                journal.record(job, cached)
                            self._note(job, "cache", started)
                        else:
                            still.append(job)
                    pending = still

            truncated = False
            if self.max_jobs is not None and len(pending) > self.max_jobs:
                pending = pending[: self.max_jobs]
                truncated = True

            by_index = {job.index: job for job in jobs}
            batch = [(job.index, job.config) for job in pending]
            attempt = 0
            with span("campaign.execute"):
                while batch:
                    results, failures = self.backend.run_batch(self.worker, batch)
                    for index in sorted(results):
                        job = by_index[index]
                        report = results[index]
                        reports[index] = report
                        executed += 1
                        if journal is not None:
                            journal.record(job, report)
                        if self.cache is not None:
                            self.cache.put(job.config, report)
                        self._note(job, "run", started)
                    if not failures:
                        break
                    attempt += 1
                    if attempt > self.retry.retries:
                        failed = sorted(failures)
                        causes = "; ".join(
                            f"{by_index[i].label()}: {failures[i]}" for i in failed[:3]
                        )
                        raise CampaignError(
                            f"{len(failed)} job(s) failed after "
                            f"{self.retry.retries} retr(ies): {causes}"
                        )
                    if self.progress is not None:
                        self.progress.retry(len(failures))
                    retried += len(failures)
                    delay = self.retry.delay(attempt)
                    if delay > 0:
                        self.sleep(delay)
                    batch = [(index, by_index[index].config) for index in sorted(failures)]
        finally:
            if journal is not None:
                journal.close()

        complete = len(reports) == len(jobs) and not truncated
        aggregate = None
        if complete:
            with span("campaign.aggregate"):
                aggregate = aggregate_campaign(self.spec, jobs, reports)
        return CampaignResult(
            spec=self.spec,
            total_jobs=len(jobs),
            executed=executed,
            from_cache=from_cache,
            from_journal=from_journal,
            retried=retried,
            complete=complete,
            aggregate=aggregate,
        )


def run_campaign(
    spec: Union[CampaignSpec, Mapping[str, Any], str, Path],
    *,
    backend: Union[str, ExecutionBackend] = "inline",
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    retry: RetryPolicy = RetryPolicy(),
    progress: Optional[CampaignProgress] = None,
    trace: Optional[TraceLog] = None,
    max_jobs: Optional[int] = None,
) -> CampaignResult:
    """One-call campaign execution (the :mod:`repro.api` entry point).

    ``spec`` may be a :class:`CampaignSpec`, a dict in the
    :meth:`CampaignSpec.from_dict` shape, or a path to a TOML/JSON spec
    file.  ``backend`` is a name (``inline``/``process``/``thread``) or a
    ready :class:`ExecutionBackend` instance.
    """
    if isinstance(spec, (str, Path)):
        spec = load_spec(spec)
    elif isinstance(spec, Mapping):
        spec = CampaignSpec.from_dict(spec)
    if isinstance(backend, str):
        backend = make_backend(backend, jobs=jobs)
    runner = CampaignRunner(
        spec,
        backend,
        cache=cache,
        journal_path=journal,
        resume=resume,
        retry=retry,
        progress=progress,
        trace=trace,
        max_jobs=max_jobs,
    )
    return runner.run()


__all__ = [
    "BACKENDS",
    "CampaignError",
    "CampaignJob",
    "CampaignJournal",
    "CampaignProgress",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "ExecutionBackend",
    "InlineBackend",
    "JournalState",
    "ProcessBackend",
    "RetryPolicy",
    "ThreadBackend",
    "aggregate_campaign",
    "apply_overrides",
    "compile_campaign",
    "load_journal",
    "load_spec",
    "make_backend",
    "run_campaign",
]
