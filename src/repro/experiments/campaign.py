"""Campaign orchestration: resumable, journaled batches of scenario sweeps.

A *campaign* is a declarative description of a whole study — a base
:class:`~repro.experiments.scenario.ScenarioConfig`, a grid of field
overrides (``axes``), and a replication count — compiled into a flat job
list and executed through a pluggable :class:`ExecutionBackend`.  Where a
figure runner is one in-process ``parallel_map`` call that forgets
everything on interruption, a campaign is built to be killed:

- **Content-addressed jobs** — every job is keyed by the existing
  :func:`~repro.experiments.cache.config_digest` of its concrete config,
  so "is this job done?" is a pure function of the spec, independent of
  process, host, or ordering.
- **Append-only journal** — each completed job is appended to a JSONL
  journal (one atomic line per job, like
  :class:`~repro.obs.sinks.JsonlSink`) together with its full-fidelity
  report state.  Appends are fsynced by default, and a journal whose
  previous writer died mid-append is self-healed on reopen (the
  unterminated tail fragment is truncated before new lines land).
  Resuming loads the journal, skips every recorded job, and produces
  byte-identical aggregates to an uninterrupted run.
- **Pluggable execution** — ``inline`` (serial, in-process), ``process``
  (the :mod:`~repro.experiments.runner` worker-pool machinery), and
  ``thread`` (for IO-bound trace-exporting jobs) backends share one
  retry/backoff loop: a crashed worker fails only its own job, which is
  re-dispatched up to :class:`RetryPolicy.retries` times.
- **Supervision** — a :class:`SupervisionPolicy` adds per-job wall-clock
  timeouts (hung workers are preempted and their pool torn down), result
  payload validation, and poison-job quarantine: a job that keeps
  killing its worker is dead-lettered to the journal with its traceback
  instead of wedging the campaign.  Crash-suspect jobs are re-dispatched
  in *isolation* (one fresh single-worker pool each) so a poison job
  cannot take innocent neighbours down with it twice.
- **Interruptibility** — a ``stop`` callable (the CLI wires SIGINT /
  SIGTERM to it) halts dispatch between jobs, flushes a final
  ``interrupt`` journal line, and reports the partial result; the CLI
  exits 75 exactly like ``--max-jobs``.

Every one of those failure paths is reproducible through
:mod:`repro.faults.harness`: a :class:`HarnessFaultController` injects
worker crashes, hangs, corrupt payloads, and torn journal writes, and a
campaign resumed after injected churn must produce byte-identical
aggregates to a fault-free run (see tests/test_campaign_supervision.py
and the ``campaign-chaos`` CI job).  ``repro campaign doctor``
(:mod:`repro.experiments.doctor`) audits and repairs damaged journals.

Specs load from TOML or JSON (:func:`load_spec`) or are built in Python;
``repro campaign {run,plan,status,doctor}`` is the CLI surface and
:func:`repro.api.campaign` the stable programmatic entry point.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import time
import traceback as traceback_module
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.cache import ResultCache, config_digest
from repro.experiments.runner import replication_configs, resolve_jobs, run_config
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.stats import summarize, summarize_optional
from repro.faults.harness import HarnessFaultController, HarnessInterrupt
from repro.metrics.collector import MetricsReport
from repro.obs.progress import CampaignProgress
from repro.obs.spans import span
from repro.sim.trace import TraceLog

#: Journal line format version (bump on shape changes; old journals are
#: rejected with a clear error rather than misread).
JOURNAL_VERSION = 1


class CampaignError(RuntimeError):
    """A campaign could not be compiled, resumed, or completed."""


class JobTimeoutError(CampaignError):
    """A job exceeded the supervision wall-clock timeout."""


class WorkerLostError(CampaignError):
    """A worker (or its whole pool) died before the job finished."""


class CorruptResultError(CampaignError):
    """A worker completed but returned a payload that is not a report."""


class WorkerPreempted(CampaignError):
    """A job was torn down through no fault of its own (its pool was
    killed because a *neighbour* hung or crashed).  Collateral failures
    are always re-dispatched and never count toward dead-lettering."""

    collateral = True


# ----------------------------------------------------------------------
# Spec: the declarative description of a campaign
# ----------------------------------------------------------------------
def apply_overrides(config: ScenarioConfig, overrides: Mapping[str, Any]) -> ScenarioConfig:
    """Return ``config`` with dotted-path field overrides applied.

    ``{"n_malicious": 2}`` replaces a top-level field;
    ``{"liteworp.theta": 4}`` recurses into the nested dataclass.  Unknown
    field names raise :class:`CampaignError` naming the offender.
    """
    # Group dotted paths by head so sibling overrides of one nested config
    # (liteworp.theta + liteworp.gamma) collapse into a single replace.
    flat: Dict[str, Any] = {}
    nested: Dict[str, Dict[str, Any]] = {}
    for name in sorted(overrides):
        value = overrides[name]
        if "." in name:
            head, rest = name.split(".", 1)
            nested.setdefault(head, {})[rest] = value
        else:
            flat[name] = value
    field_names = {f.name for f in dataclasses.fields(config)}
    for name in itertools.chain(flat, nested):
        if name not in field_names:
            raise CampaignError(
                f"unknown {type(config).__name__} field {name!r} in campaign overrides"
            )
    for head, sub in nested.items():
        inner = getattr(config, head)
        if not dataclasses.is_dataclass(inner):
            raise CampaignError(
                f"cannot apply dotted override to non-dataclass field {head!r}"
            )
        flat[head] = apply_overrides(inner, sub)
    return dataclasses.replace(config, **flat)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative campaign: base config × axis grid × replications.

    ``axes`` maps a (possibly dotted) :class:`ScenarioConfig` field path
    to the sequence of values to sweep; the campaign is the cartesian
    product over all axes in sorted-name order, each point replicated
    ``runs`` times with hash-derived seeds.
    """

    name: str
    base: ScenarioConfig = field(default_factory=ScenarioConfig)
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    runs: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign needs a non-empty name")
        if self.runs < 1:
            raise CampaignError(f"runs must be at least 1, got {self.runs!r}")
        normalized = tuple(
            (str(axis), tuple(values)) for axis, values in sorted(self.axes)
        )
        for axis, values in normalized:
            if not values:
                raise CampaignError(f"axis {axis!r} has no values")
        object.__setattr__(self, "axes", normalized)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        """Build a spec from the TOML/JSON document shape::

            {"name": ..., "runs": 2,
             "base": {"n_nodes": 30, "liteworp.theta": 4, ...},
             "axes": {"n_malicious": [0, 2], "defense": ["none", "liteworp"]}}

        ``base`` accepts dotted paths for nested configs exactly like the
        axes do.
        """
        payload = dict(payload)
        unknown = set(payload) - {"name", "base", "axes", "runs"}
        if unknown:
            raise CampaignError(f"unknown campaign spec key(s) {sorted(unknown)}")
        if "name" not in payload:
            raise CampaignError("campaign spec needs a 'name'")
        try:
            base = apply_overrides(ScenarioConfig(), dict(payload.get("base", {})))
        except (TypeError, ValueError) as exc:
            raise CampaignError(f"bad campaign base config: {exc}") from exc
        axes_raw = payload.get("axes", {})
        axes = tuple((name, tuple(values)) for name, values in axes_raw.items())
        return cls(
            name=str(payload["name"]),
            base=base,
            axes=axes,
            runs=int(payload.get("runs", 1)),
        )

    def axes_dict(self) -> Dict[str, Tuple[Any, ...]]:
        """The axis grid as a plain mapping (sorted by axis name)."""
        return dict(self.axes)

    def points(self) -> List[Tuple[Tuple[str, Any], ...]]:
        """Every sweep point as a tuple of ``(axis, value)`` pairs, in
        deterministic grid order (axes sorted by name, values as given)."""
        if not self.axes:
            return [()]
        names = [axis for axis, _ in self.axes]
        grids = [values for _, values in self.axes]
        return [
            tuple(zip(names, combo)) for combo in itertools.product(*grids)
        ]

    def digest(self) -> str:
        """Stable identity of this spec (guards journal/resume mismatches)."""
        return config_digest(
            {
                "campaign": self.name,
                "base": self.base,
                "axes": {axis: list(values) for axis, values in self.axes},
                "runs": self.runs,
            }
        )


def load_spec(path: Union[str, Path]) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CampaignError(f"cannot read campaign spec {path}: {exc}") from exc
    if path.suffix.lower() == ".toml":
        import tomllib

        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise CampaignError(f"{path}: invalid TOML: {exc}") from exc
    else:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise CampaignError(f"{path}: campaign spec must be a table/object")
    return CampaignSpec.from_dict(payload)


# ----------------------------------------------------------------------
# Compilation: spec -> content-addressed job list
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignJob:
    """One concrete simulation of the campaign, keyed by config digest."""

    index: int
    point: Tuple[Tuple[str, Any], ...]
    replication: int
    config: ScenarioConfig
    digest: str

    def label(self) -> str:
        """Human-readable ``axis=value,... #rep`` tag."""
        point = ",".join(f"{axis}={value}" for axis, value in self.point) or "-"
        return f"{point} #{self.replication}"


def compile_campaign(spec: CampaignSpec) -> List[CampaignJob]:
    """Expand ``spec`` into its flat, deterministic job list.

    Point order is the sorted-axis cartesian product; within a point,
    replications use the hash-derived child seeds of
    :func:`~repro.experiments.runner.replication_configs`.
    """
    with span("campaign.compile"):
        jobs: List[CampaignJob] = []
        for point in spec.points():
            try:
                point_config = apply_overrides(spec.base, dict(point))
            except (TypeError, ValueError) as exc:
                raise CampaignError(
                    f"invalid sweep point {dict(point)!r}: {exc}"
                ) from exc
            for replication, config in enumerate(
                replication_configs(point_config, spec.runs)
            ):
                jobs.append(
                    CampaignJob(
                        index=len(jobs),
                        point=point,
                        replication=replication,
                        config=config,
                        digest=config_digest(config),
                    )
                )
        return jobs


# ----------------------------------------------------------------------
# Journal: append-only completion log
# ----------------------------------------------------------------------
@dataclass
class JournalState:
    """Parsed journal contents (see :func:`load_journal`)."""

    spec_digest: Optional[str] = None
    total_jobs: Optional[int] = None
    reports: Dict[str, MetricsReport] = field(default_factory=dict)
    partial_lines: int = 0
    interrupts: int = 0
    dead_letters: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.reports)


class CampaignJournal:
    """Append-only JSONL journal of completed campaign jobs.

    Crash-consistency discipline:

    - every entry is one line-buffered ``O_APPEND`` write, fsynced by
      default (``fsync=False`` trades durability for speed — the bench
      measures the difference);
    - reopening a journal whose previous writer died mid-append
      truncates the unterminated tail fragment first (the bytes are
      unrecoverable; the job simply re-runs on resume), so a fresh
      ``begin`` line can never be glued onto a torn one;
    - with a :class:`~repro.faults.harness.HarnessFaultController`
      attached, planned :class:`~repro.faults.harness.TornJournalWrite`
      faults cut a completion append short and raise
      :class:`~repro.faults.harness.HarnessInterrupt` — the reproducible
      stand-in for dying at the worst possible byte.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fsync: bool = True,
        faults: Optional[HarnessFaultController] = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.faults = faults
        self._handle = None
        self.entries_written = 0
        self.completions = 0
        self.torn = False
        self.repaired_tail_bytes = 0

    def _repair_tail(self) -> None:
        # A writer killed mid-append leaves an unterminated final line;
        # appending after it would glue two entries into one corrupt
        # mid-file line.  Truncate back to the last newline instead.
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size == 0:
            return
        with open(self.path, "rb+") as handle:
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            last_newline = -1
            position = size
            while position > 0 and last_newline < 0:
                start = max(0, position - 4096)
                handle.seek(start)
                chunk = handle.read(position - start)
                found = chunk.rfind(b"\n")
                if found >= 0:
                    last_newline = start + found
                position = start
            handle.truncate(last_newline + 1)
            if self.fsync:
                handle.flush()
                os.fsync(handle.fileno())
        self.repaired_tail_bytes = size - (last_newline + 1)

    def _write_raw(self, text: str) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._repair_tail()
            self._handle = open(self.path, "a", buffering=1, encoding="utf-8")
        self._handle.write(text)
        if self.fsync:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def _append(self, payload: Dict[str, Any]) -> None:
        self._write_raw(json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n")
        self.entries_written += 1

    def begin(self, spec: CampaignSpec, total_jobs: int) -> None:
        """Record a (re)start: spec identity + compiled job count."""
        with span("campaign.journal"):
            self._append(
                {
                    "event": "begin",
                    "version": JOURNAL_VERSION,
                    "campaign": spec.name,
                    "spec": spec.digest(),
                    "jobs": total_jobs,
                }
            )

    def record(self, job: CampaignJob, report: MetricsReport) -> None:
        """Record one completed job with its full-fidelity report state.

        Raises :class:`~repro.faults.harness.HarnessInterrupt` when an
        injected torn write fires on this completion entry — the partial
        line is on disk, nothing else is, and the caller must stop as if
        the process died.
        """
        with span("campaign.journal"):
            payload = {
                "event": "complete",
                "digest": job.digest,
                "index": job.index,
                "point": {axis: value for axis, value in job.point},
                "replication": job.replication,
                "seed": job.config.seed,
                "report": report.to_state(),
            }
            entry = self.completions
            self.completions += 1
            if self.faults is not None:
                fault = self.faults.claim_torn_write(entry)
                if fault is not None:
                    line = (
                        json.dumps(payload, separators=(",", ":"), sort_keys=True)
                        + "\n"
                    )
                    keep = max(1, int(len(line) * fault.fraction))
                    self._write_raw(line[:keep])
                    self.torn = True
                    raise HarnessInterrupt(
                        f"injected torn journal write at completion entry {entry}"
                    )
            self._append(payload)

    def dead_letter(
        self, job: CampaignJob, error: BaseException, attempts: int
    ) -> None:
        """Quarantine a poison job: record its identity and traceback so
        the campaign can continue (and a human can post-mortem)."""
        with span("campaign.journal"):
            self._append(
                {
                    "event": "dead_letter",
                    "digest": job.digest,
                    "index": job.index,
                    "point": {axis: value for axis, value in job.point},
                    "replication": job.replication,
                    "attempts": attempts,
                    "error": f"{type(error).__name__}: {error}",
                    "traceback": "".join(
                        traceback_module.format_exception(
                            type(error), error, error.__traceback__
                        )
                    ),
                }
            )

    def interrupt(self, reason: str, completed: int) -> None:
        """Record a graceful stop (signal / --max-jobs) as the final
        journal line, so post-mortems can tell a clean interrupt from a
        crash."""
        if self.torn:
            # The previous append was deliberately left unterminated;
            # writing after it would corrupt the torn line further.
            return
        with span("campaign.journal"):
            self._append(
                {"event": "interrupt", "reason": reason, "completed": completed}
            )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def load_journal(
    path: Union[str, Path], tolerate_partial: bool = True
) -> JournalState:
    """Parse a campaign journal back into completed-job reports.

    A truncated *final* line (the writer was killed mid-append) is
    skipped and counted when ``tolerate_partial`` is set; mid-file
    corruption and version/spec mismatches raise :class:`CampaignError`
    naming the line, its byte offset, and the ``repro campaign doctor``
    invocation that can repair the file.
    """
    path = Path(path)
    state = JournalState()
    try:
        handle = open(path, "rb")
    except OSError as exc:
        raise CampaignError(f"cannot read campaign journal {path}: {exc}") from exc
    offset = 0
    with handle:
        # Binary iteration keeps byte offsets exact even when the damage
        # is invalid UTF-8 (a diagnostic must never crash on the very
        # bytes it is diagnosing).
        for lineno, line in enumerate(handle, start=1):
            line_offset = offset
            offset += len(line)
            stripped = line.strip()
            if not stripped:
                continue
            try:
                payload = json.loads(stripped)
                if not isinstance(payload, dict):
                    raise ValueError(
                        f"entry is {type(payload).__name__}, not an object"
                    )
            except ValueError as exc:  # JSON or UTF-8 decode failure
                if tolerate_partial and not handle.read().strip():
                    state.partial_lines += 1
                    break
                raise CampaignError(
                    f"{path}:{lineno}: corrupt journal line at byte offset "
                    f"{line_offset}: {exc}; run 'repro campaign doctor "
                    f"{path} --repair' to quarantine it"
                ) from exc
            event = payload.get("event")
            if event == "begin":
                version = payload.get("version")
                if version != JOURNAL_VERSION:
                    raise CampaignError(
                        f"{path}:{lineno}: journal version {version!r} "
                        f"(this build writes {JOURNAL_VERSION}); run "
                        f"'repro campaign doctor {path}' to audit it"
                    )
                spec_digest = payload.get("spec")
                if state.spec_digest is not None and spec_digest != state.spec_digest:
                    raise CampaignError(
                        f"{path}:{lineno}: journal mixes two campaign specs"
                    )
                state.spec_digest = spec_digest
                state.total_jobs = payload.get("jobs")
            elif event == "complete":
                try:
                    report = MetricsReport.from_state(payload["report"])
                    digest = payload["digest"]
                except (KeyError, TypeError, ValueError) as exc:
                    raise CampaignError(
                        f"{path}:{lineno}: malformed completion entry at byte "
                        f"offset {line_offset}: {exc}; run 'repro campaign "
                        f"doctor {path} --repair' to quarantine it"
                    ) from exc
                state.reports[digest] = report
            elif event == "dead_letter":
                digest = payload.get("digest")
                if digest is not None:
                    state.dead_letters[digest] = payload
            elif event == "interrupt":
                state.interrupts += 1
            else:
                raise CampaignError(
                    f"{path}:{lineno}: unknown journal event {event!r}"
                )
    return state


# ----------------------------------------------------------------------
# Execution backends
# ----------------------------------------------------------------------
#: Worker signature: one concrete config in, its report out.
JobFn = Callable[[ScenarioConfig], MetricsReport]


class ExecutionBackend:
    """How one wave of campaign jobs is executed.

    ``run_batch`` maps ``fn`` over ``(key, config)`` items and *never
    raises for a job failure*: it returns per-key results and per-key
    exceptions so the campaign's retry loop can re-dispatch exactly the
    failed jobs.  Supervision hooks:

    - ``timeout`` — per-job wall-clock seconds; overdue jobs fail with
      :class:`JobTimeoutError` (pool backends preempt the hung worker by
      tearing the pool down; inline enforces post-hoc).
    - ``should_stop`` — polled between jobs/completions; when it turns
      true the backend returns early, leaving undispatched items in
      *neither* dict.
    - ``isolate`` — run each item in its own fresh single-worker pool so
      a crash is attributed to exactly one job (the poison-job probe).
    """

    name = "abstract"

    def run_batch(
        self,
        fn: JobFn,
        items: Sequence[Tuple[int, ScenarioConfig]],
        *,
        timeout: Optional[float] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        isolate: bool = False,
    ) -> Tuple[Dict[int, MetricsReport], Dict[int, BaseException]]:
        raise NotImplementedError


class InlineBackend(ExecutionBackend):
    """Serial in-process execution — the deterministic reference backend.

    A single thread cannot preempt a hung job, so ``timeout`` is
    enforced post-hoc: a job that ran past the deadline still finished,
    but its result is discarded and recorded as a
    :class:`JobTimeoutError` (deadline semantics stay uniform across
    backends)."""

    name = "inline"

    def run_batch(self, fn, items, *, timeout=None, should_stop=None, isolate=False):
        results: Dict[int, MetricsReport] = {}
        failures: Dict[int, BaseException] = {}
        for key, config in items:
            if should_stop is not None and should_stop():
                break
            started = time.monotonic()
            try:
                result = fn(config)
            except Exception as exc:  # noqa: BLE001 - collected for retry
                failures[key] = exc
                continue
            elapsed = time.monotonic() - started
            if timeout is not None and elapsed > timeout:
                failures[key] = JobTimeoutError(
                    f"job took {elapsed:.3f}s, past the {timeout:g}s wall-clock timeout"
                )
            else:
                results[key] = result
        return results, failures


def _future_error(future: Any) -> Optional[BaseException]:
    """The future's exception, with cancellation reported as an error
    rather than raised (``Future.exception()`` raises on cancelled)."""
    try:
        return future.exception()
    except BaseException as exc:  # noqa: BLE001 - CancelledError
        return exc


class _PoolBackend(ExecutionBackend):
    """Shared future-juggling for the executor-based backends."""

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs

    def _make_executor(self, workers: int) -> Executor:
        raise NotImplementedError

    def _kill(self, executor: Executor) -> None:
        """Tear an executor down without waiting for hung workers.

        ``ProcessPoolExecutor`` offers no per-future kill, so preemption
        is wholesale: terminate the worker processes (if the executor
        has any), then discard the pool.  Thread pools cannot be killed
        — their stuck threads are abandoned (documented limitation)."""
        processes = getattr(executor, "_processes", None)
        if processes:
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:  # noqa: BLE001 - already-dead workers
                    pass
        executor.shutdown(wait=False, cancel_futures=True)

    def run_batch(self, fn, items, *, timeout=None, should_stop=None, isolate=False):
        results: Dict[int, MetricsReport] = {}
        failures: Dict[int, BaseException] = {}
        if not items:
            return results, failures
        if isolate:
            # Poison-probe mode: one fresh single-worker pool per job, so
            # a pool-killing crash is attributed to exactly that job.
            for key, config in items:
                if should_stop is not None and should_stop():
                    break
                sub_results, sub_failures = self._run_window(
                    fn, [(key, config)], 1, timeout, should_stop
                )
                results.update(sub_results)
                failures.update(sub_failures)
            return results, failures
        workers = min(resolve_jobs(self.jobs), len(items))
        return self._run_window(fn, list(items), max(1, workers), timeout, should_stop)

    def _run_window(self, fn, queue, workers, timeout, should_stop):
        results: Dict[int, MetricsReport] = {}
        failures: Dict[int, BaseException] = {}
        executor = self._make_executor(workers)
        inflight: Dict[Any, Tuple[int, float]] = {}
        broken = False
        if timeout is not None:
            poll = max(0.01, min(0.1, timeout / 4.0))
        elif should_stop is not None:
            poll = 0.1
        else:
            poll = None
        try:
            while queue or inflight:
                # Keep at most ``workers`` jobs in flight so a job's
                # wall clock starts at dispatch, not at batch submission
                # (a queued job must not "time out" while waiting).
                while queue and len(inflight) < workers:
                    key, config = queue.pop(0)
                    try:
                        future = executor.submit(fn, config)
                    except BaseException as exc:  # noqa: BLE001 - pool already broken
                        failures[key] = exc
                        broken = True
                        break
                    inflight[future] = (key, time.monotonic())
                if broken:
                    break
                if not inflight:
                    continue
                try:
                    done, _ = wait(
                        set(inflight), timeout=poll, return_when=FIRST_COMPLETED
                    )
                except BaseException:  # noqa: BLE001 - pool died under wait
                    broken = True
                    break
                for future in done:
                    key, _started = inflight.pop(future)
                    try:
                        results[key] = future.result()
                    except Exception as exc:  # noqa: BLE001 - collected for retry
                        failures[key] = exc
                        if isinstance(exc, BrokenExecutor):
                            broken = True
                if broken:
                    break
                if should_stop is not None and should_stop():
                    # Graceful stop: abandon in-flight work silently (the
                    # runner sees the missing keys and records the
                    # interruption); nothing is marked failed.
                    self._kill(executor)
                    inflight.clear()
                    queue.clear()
                    return results, failures
                if timeout is not None:
                    now = time.monotonic()
                    overdue = [
                        future
                        for future, (_key, started) in inflight.items()
                        if now - started > timeout
                    ]
                    if overdue:
                        for future in overdue:
                            key, started = inflight.pop(future)
                            failures[key] = JobTimeoutError(
                                f"job exceeded the {timeout:g}s wall-clock "
                                f"timeout ({now - started:.3f}s elapsed)"
                            )
                        # No per-worker kill exists, so preempt wholesale:
                        # the pool dies, innocents come back as collateral.
                        self._kill(executor)
                        for future, (key, _started) in inflight.items():
                            if future.done() and _future_error(future) is None:
                                results[key] = future.result()
                            else:
                                failures[key] = WorkerPreempted(
                                    "pool torn down while a neighbour job hung"
                                )
                        inflight.clear()
                        for key, _config in queue:
                            failures[key] = WorkerPreempted(
                                "pool torn down before dispatch"
                            )
                        queue.clear()
                        return results, failures
            if broken:
                # The pool itself died: in-flight jobs are crash suspects
                # (counted failures); never-dispatched ones are collateral.
                for future, (key, _started) in list(inflight.items()):
                    if key in results or key in failures:
                        continue
                    exc = _future_error(future) if future.done() else None
                    failures[key] = exc if exc is not None else WorkerLostError(
                        "worker pool broke before the job finished"
                    )
                for key, _config in queue:
                    failures[key] = WorkerPreempted("pool broke before dispatch")
        finally:
            # A broken pool is discarded wholesale; the next wave gets a
            # fresh one.
            executor.shutdown(wait=False, cancel_futures=True)
        return results, failures


def _reset_worker_signals() -> None:
    """Restore default signal dispositions in pool worker processes.

    Fork-started workers inherit whatever SIGINT/SIGTERM handlers the
    parent CLI installed, which would make them *survive* the
    ``terminate()`` used to preempt hung jobs (the inherited handler
    merely sets the parent's stop flag).  Workers must die on SIGTERM
    and leave Ctrl-C handling to the supervising parent.
    """
    import signal as signal_module

    try:
        signal_module.signal(signal_module.SIGTERM, signal_module.SIG_DFL)
        signal_module.signal(signal_module.SIGINT, signal_module.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass


class ProcessBackend(_PoolBackend):
    """Process-pool execution via the sweep runner's worker machinery.

    Jobs are dispatched to :func:`repro.experiments.runner.run_config`
    (the same picklable worker body ``SweepRunner`` fans out over), one
    future per job so a crashed worker fails only its own job.
    """

    name = "process"

    def _make_executor(self, workers: int) -> Executor:
        return ProcessPoolExecutor(
            max_workers=workers, initializer=_reset_worker_signals
        )


class ThreadBackend(_PoolBackend):
    """Thread-pool execution for IO-bound jobs (e.g. trace-exporting
    configs whose wall clock is dominated by JSONL appends).

    Threads cannot be killed: a hung job is *recorded* as timed out and
    its executor abandoned, but the stuck thread itself lingers until it
    returns — prefer the process backend when jobs may wedge."""

    name = "thread"

    def _make_executor(self, workers: int) -> Executor:
        return ThreadPoolExecutor(max_workers=workers)


BACKENDS: Dict[str, Callable[..., ExecutionBackend]] = {
    "inline": lambda jobs=None: InlineBackend(),
    "process": ProcessBackend,
    "thread": ThreadBackend,
}


def make_backend(name: str, jobs: Optional[int] = None) -> ExecutionBackend:
    """Instantiate a backend by name (``inline``, ``process``, ``thread``)."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise CampaignError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return factory(jobs=jobs)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-job retry with exponential backoff between waves."""

    retries: int = 2
    backoff: float = 0.1
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative, got {self.retries!r}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be non-negative, got {self.backoff!r}")

    def delay(self, attempt: int) -> float:
        """Sleep before retry wave ``attempt`` (1-based)."""
        return self.backoff * (self.multiplier ** max(0, attempt - 1))


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the campaign watches its workers.

    Parameters
    ----------
    timeout:
        Per-job wall-clock seconds before a worker counts as hung and is
        preempted (None disables deadline enforcement).
    quarantine:
        When a job exhausts its :class:`RetryPolicy` budget, dead-letter
        it to the journal (error + traceback) and keep going, instead of
        raising :class:`CampaignError` and abandoning every other job.
    """

    timeout: Optional[float] = None
    quarantine: bool = True

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"timeout must be positive or None, got {self.timeout!r}"
            )


# ----------------------------------------------------------------------
# Aggregation + result
# ----------------------------------------------------------------------
def _summary_dict(summary) -> Dict[str, object]:
    return {"mean": summary.mean, "std": summary.std, "count": summary.count}


def aggregate_campaign(
    spec: CampaignSpec, jobs: Sequence[CampaignJob], reports: Mapping[int, MetricsReport]
) -> Dict[str, object]:
    """Per-point metric summaries over every replication.

    Pure function of the reports: running the same campaign twice — or
    interrupting and resuming it — yields byte-identical JSON.
    """
    points: List[Dict[str, object]] = []
    by_point: Dict[Tuple[Tuple[str, Any], ...], List[MetricsReport]] = {}
    order: List[Tuple[Tuple[str, Any], ...]] = []
    for job in jobs:
        if job.point not in by_point:
            by_point[job.point] = []
            order.append(job.point)
        by_point[job.point].append(reports[job.index])
    for point in order:
        group = by_point[point]
        metrics = {
            "originated": _summary_dict(summarize([r.originated for r in group])),
            "delivered": _summary_dict(summarize([r.delivered for r in group])),
            "wormhole_drops": _summary_dict(summarize([r.wormhole_drops for r in group])),
            "fraction_wormhole_dropped": _summary_dict(
                summarize([r.fraction_wormhole_dropped for r in group])
            ),
            "fraction_malicious_routes": _summary_dict(
                summarize([r.fraction_malicious_routes for r in group])
            ),
            "detections": _summary_dict(summarize([r.detections for r in group])),
            "isolations": _summary_dict(summarize([r.isolations for r in group])),
            "mean_isolation_latency": _summary_dict(
                summarize_optional([r.mean_isolation_latency() for r in group])
            ),
            "mean_detection_latency": _summary_dict(
                summarize_optional([r.mean_detection_latency() for r in group])
            ),
        }
        points.append(
            {
                "point": {axis: value for axis, value in point},
                "jobs": len(group),
                "metrics": metrics,
            }
        )
    return {
        "campaign": spec.name,
        "spec": spec.digest(),
        "runs": spec.runs,
        "points": points,
    }


@dataclass
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` invocation."""

    spec: CampaignSpec
    total_jobs: int
    executed: int
    from_cache: int
    from_journal: int
    retried: int
    complete: bool
    aggregate: Optional[Dict[str, object]] = None
    timeouts: int = 0
    dead_lettered: int = 0
    interrupted: Optional[str] = None

    @property
    def completed_jobs(self) -> int:
        return self.executed + self.from_cache + self.from_journal

    def to_json(self) -> str:
        """Deterministic aggregate JSON (the campaign's published output)."""
        if self.aggregate is None:
            raise CampaignError("campaign is incomplete; no aggregate to render")
        return json.dumps(self.aggregate, indent=2, sort_keys=True) + "\n"

    def format(self) -> str:
        """Stable one-screen text summary."""
        header = (
            f"campaign {self.spec.name}"
            f" jobs={self.total_jobs}"
            f" executed={self.executed}"
            f" cache={self.from_cache}"
            f" journal={self.from_journal}"
            f" retried={self.retried}"
            f" complete={'yes' if self.complete else 'no'}"
        )
        if self.timeouts:
            header += f" timeouts={self.timeouts}"
        if self.dead_lettered:
            header += f" dead_lettered={self.dead_lettered}"
        if self.interrupted is not None:
            header += f" interrupted={self.interrupted}"
        lines = [header]
        if self.aggregate is not None:
            for entry in self.aggregate["points"]:
                point = ",".join(f"{k}={v}" for k, v in entry["point"].items()) or "-"
                drops = entry["metrics"]["fraction_wormhole_dropped"]["mean"]
                routes = entry["metrics"]["fraction_malicious_routes"]["mean"]
                lines.append(
                    f"  {point:<40s} drop={drops:.4f} malroutes={routes:.4f}"
                    f" (n={entry['jobs']})"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The orchestrator
# ----------------------------------------------------------------------
class CampaignRunner:
    """Compiles and executes a campaign with journaling, caching, retry,
    and worker supervision.

    Parameters
    ----------
    spec:
        The campaign to run.
    backend:
        An :class:`ExecutionBackend` instance (default: inline).
    cache:
        Optional :class:`~repro.experiments.cache.ResultCache`; consulted
        before dispatch and populated after every executed job.  Jobs that
        stream a trace export bypass cache reads (their records must hit
        the sink), matching ``SweepRunner`` semantics.
    journal_path:
        Where to append the completion journal; None disables journaling
        (and therefore resume).
    resume:
        Load the journal first and skip every job it records.  The
        journal's spec digest must match ``spec``.  Dead-lettered jobs
        are *not* skipped — a resume gives every poison job a fresh
        chance.
    retry:
        Per-job :class:`RetryPolicy` for worker crashes.
    supervision:
        :class:`SupervisionPolicy` — per-job timeout and poison-job
        quarantine.  The default enables quarantine with no timeout.
    progress:
        Optional :class:`~repro.obs.progress.CampaignProgress` receiving
        live counter updates.
    trace:
        Optional :class:`~repro.sim.trace.TraceLog`; ``campaign_job``,
        ``worker_timeout``, ``campaign_retry``, ``campaign_dead_letter``
        and ``campaign_interrupted`` records are emitted (wall-clock
        seconds since start), so attached sinks stream live.
    max_jobs:
        Execute at most this many *new* jobs, then stop (journal intact,
        result marked incomplete).  The deterministic interruption hook
        used by the resume tests and the CI smoke job.
    stop:
        Zero-argument callable polled between jobs and waves; returning
        True stops dispatch gracefully (journal flushed, result marked
        ``interrupted="signal"``).  The CLI wires SIGINT/SIGTERM here.
    fsync:
        fsync every journal append (default True; see
        :class:`CampaignJournal`).
    harness_faults:
        Optional :class:`~repro.faults.harness.HarnessFaultController`
        injecting worker/journal faults for chaos testing.
    worker:
        Job body override (tests inject flaky workers); defaults to
        :func:`repro.experiments.runner.run_config`.
    sleep:
        Backoff sleep override for tests.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        backend: Optional[ExecutionBackend] = None,
        *,
        cache: Optional[ResultCache] = None,
        journal_path: Optional[Union[str, Path]] = None,
        resume: bool = False,
        retry: RetryPolicy = RetryPolicy(),
        supervision: SupervisionPolicy = SupervisionPolicy(),
        progress: Optional[CampaignProgress] = None,
        trace: Optional[TraceLog] = None,
        max_jobs: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
        fsync: bool = True,
        harness_faults: Optional[HarnessFaultController] = None,
        worker: JobFn = run_config,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if resume and journal_path is None:
            raise CampaignError("--resume needs a journal path")
        self.spec = spec
        self.backend = backend or InlineBackend()
        self.cache = cache
        self.journal_path = Path(journal_path) if journal_path is not None else None
        self.resume = resume
        self.retry = retry
        self.supervision = supervision
        self.progress = progress
        self.trace = trace
        self.max_jobs = max_jobs
        self.stop = stop
        self.fsync = fsync
        self.harness_faults = harness_faults
        self.worker = worker
        self.sleep = sleep

    # -- helpers -------------------------------------------------------
    def _should_stop(self) -> bool:
        return self.stop is not None and bool(self.stop())

    def _note(self, job: CampaignJob, source: str, started: float) -> None:
        if self.progress is not None:
            self.progress.job_done(source)
        if self.trace is not None:
            self.trace.emit(
                time.perf_counter() - started,
                "campaign_job",
                job=job.index,
                digest=job.digest[:12],
                source=source,
                replication=job.replication,
            )

    def _emit(self, started: float, kind: str, **fields: Any) -> None:
        if self.trace is not None:
            self.trace.emit(time.perf_counter() - started, kind, **fields)

    # -- the run -------------------------------------------------------
    def run(self) -> CampaignResult:
        started = time.perf_counter()
        jobs = compile_campaign(self.spec)
        if self.progress is not None:
            self.progress.start(total=len(jobs), name=self.spec.name)
        reports: Dict[int, MetricsReport] = {}
        from_journal = from_cache = executed = retried = 0
        timeouts = 0
        dead_lettered: List[int] = []
        interrupted: Optional[str] = None

        if self.resume and self.journal_path is not None and self.journal_path.exists():
            with span("campaign.resume"):
                state = load_journal(self.journal_path, tolerate_partial=True)
            if state.spec_digest is not None and state.spec_digest != self.spec.digest():
                raise CampaignError(
                    f"journal {self.journal_path} records a different campaign "
                    f"spec ({state.spec_digest[:12]} != {self.spec.digest()[:12]})"
                )
            for job in jobs:
                report = state.reports.get(job.digest)
                if report is not None:
                    reports[job.index] = report
                    from_journal += 1
                    self._note(job, "journal", started)

        journal = (
            CampaignJournal(
                self.journal_path, fsync=self.fsync, faults=self.harness_faults
            )
            if self.journal_path is not None
            else None
        )
        truncated = False
        try:
            if journal is not None:
                journal.begin(self.spec, total_jobs=len(jobs))

            pending = [job for job in jobs if job.index not in reports]
            if self.cache is not None:
                with span("campaign.cache"):
                    still: List[CampaignJob] = []
                    for job in pending:
                        exporting = (
                            job.config.obs is not None
                            and job.config.obs.trace_path is not None
                        )
                        cached = None if exporting else self.cache.get(job.config)
                        if cached is not None:
                            try:
                                if journal is not None:
                                    journal.record(job, cached)
                            except HarnessInterrupt:
                                interrupted = "torn_write"
                                break
                            reports[job.index] = cached
                            from_cache += 1
                            self._note(job, "cache", started)
                        else:
                            still.append(job)
                    pending = still

            if self.max_jobs is not None and len(pending) > self.max_jobs:
                pending = pending[: self.max_jobs]
                truncated = True

            by_index = {job.index: job for job in jobs}
            worker = self.worker
            if self.harness_faults is not None:
                worker = self.harness_faults.wrap_worker(
                    worker, {job.digest: job.index for job in jobs}
                )
            batch = [(job.index, job.config) for job in pending]
            fail_counts: Dict[int, int] = {}
            wave = 0
            isolate = False
            # Progress guard: every productive wave either completes,
            # dead-letters, or burns a retry; anything past this bound is
            # supervision spinning its wheels.
            max_waves = self.retry.retries + len(batch) + 3
            with span("campaign.execute"):
                while batch and interrupted is None:
                    if self._should_stop():
                        interrupted = "signal"
                        break
                    wave += 1
                    if wave > max_waves:
                        raise CampaignError(
                            f"supervision made no progress after {wave - 1} "
                            f"dispatch waves; aborting"
                        )
                    results, failures = self.backend.run_batch(
                        worker,
                        batch,
                        timeout=self.supervision.timeout,
                        should_stop=self.stop,
                        isolate=isolate,
                    )
                    isolate = False
                    # A worker can finish yet hand back garbage (injected
                    # payload corruption, a broken custom worker): validate
                    # before anything touches the journal or cache.
                    for index in sorted(results):
                        if not isinstance(results[index], MetricsReport):
                            failures[index] = CorruptResultError(
                                f"worker returned "
                                f"{type(results[index]).__name__!r}, "
                                f"not a MetricsReport"
                            )
                    torn = False
                    for index in sorted(results):
                        if index in failures:
                            continue
                        job = by_index[index]
                        report = results[index]
                        try:
                            if journal is not None:
                                journal.record(job, report)
                        except HarnessInterrupt:
                            # The torn line never became durable: the job
                            # is *not* complete; resume re-runs it.
                            interrupted = "torn_write"
                            torn = True
                            break
                        reports[index] = report
                        executed += 1
                        if self.cache is not None:
                            self.cache.put(job.config, report)
                        self._note(job, "run", started)
                    if torn:
                        break

                    retry_keys: List[int] = []
                    dead_now: List[int] = []
                    for index in sorted(failures):
                        exc = failures[index]
                        if isinstance(exc, JobTimeoutError):
                            timeouts += 1
                            if self.progress is not None:
                                self.progress.timeout(1)
                            self._emit(
                                started,
                                "worker_timeout",
                                job=index,
                                digest=by_index[index].digest[:12],
                                seconds=self.supervision.timeout,
                            )
                        if getattr(exc, "collateral", False):
                            retry_keys.append(index)
                            continue
                        fail_counts[index] = fail_counts.get(index, 0) + 1
                        if fail_counts[index] > self.retry.retries:
                            dead_now.append(index)
                        else:
                            retry_keys.append(index)

                    if dead_now and not self.supervision.quarantine:
                        causes = "; ".join(
                            f"{by_index[i].label()}: {failures[i]}"
                            for i in dead_now[:3]
                        )
                        raise CampaignError(
                            f"{len(dead_now)} job(s) failed after "
                            f"{self.retry.retries} retr(ies): {causes}"
                        )
                    for index in dead_now:
                        job = by_index[index]
                        if journal is not None:
                            journal.dead_letter(
                                job, failures[index], attempts=fail_counts[index]
                            )
                        dead_lettered.append(index)
                        if self.progress is not None:
                            self.progress.dead_letter(1)
                        self._emit(
                            started,
                            "campaign_dead_letter",
                            job=index,
                            digest=job.digest[:12],
                            error=f"{type(failures[index]).__name__}: "
                            f"{failures[index]}",
                            attempts=fail_counts[index],
                        )

                    # Jobs the backend returned in neither dict were never
                    # dispatched — that only happens on a graceful stop.
                    missing = [
                        key
                        for key, _config in batch
                        if key not in results and key not in failures
                    ]
                    if missing:
                        if self._should_stop():
                            interrupted = "signal"
                            break
                        retry_keys.extend(missing)

                    if not retry_keys:
                        break
                    # If any failure this wave broke its whole pool, probe
                    # the suspects one-per-pool next wave so the poison job
                    # is identified instead of dragging innocents down.
                    isolate = any(
                        isinstance(failures.get(index), (BrokenExecutor, WorkerLostError))
                        for index in retry_keys
                    )
                    retried += len(retry_keys)
                    if self.progress is not None:
                        self.progress.retry(len(retry_keys))
                    self._emit(
                        started, "campaign_retry", count=len(retry_keys), wave=wave
                    )
                    delay = self.retry.delay(wave)
                    if delay > 0:
                        self.sleep(delay)
                    batch = [
                        (index, by_index[index].config)
                        for index in sorted(retry_keys)
                    ]

            if journal is not None:
                if interrupted is not None:
                    journal.interrupt(reason=interrupted, completed=len(reports))
                elif truncated:
                    journal.interrupt(reason="max_jobs", completed=len(reports))
        finally:
            if journal is not None:
                journal.close()

        if interrupted is not None:
            if self.progress is not None:
                self.progress.interrupt(interrupted)
            self._emit(
                started, "campaign_interrupted",
                reason=interrupted, completed=len(reports),
            )
        complete = (
            len(reports) == len(jobs)
            and not truncated
            and interrupted is None
            and not dead_lettered
        )
        aggregate = None
        if complete:
            with span("campaign.aggregate"):
                aggregate = aggregate_campaign(self.spec, jobs, reports)
        return CampaignResult(
            spec=self.spec,
            total_jobs=len(jobs),
            executed=executed,
            from_cache=from_cache,
            from_journal=from_journal,
            retried=retried,
            complete=complete,
            aggregate=aggregate,
            timeouts=timeouts,
            dead_lettered=len(dead_lettered),
            interrupted=interrupted,
        )


def run_campaign(
    spec: Union[CampaignSpec, Mapping[str, Any], str, Path],
    *,
    backend: Union[str, ExecutionBackend] = "inline",
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    retry: RetryPolicy = RetryPolicy(),
    supervision: SupervisionPolicy = SupervisionPolicy(),
    progress: Optional[CampaignProgress] = None,
    trace: Optional[TraceLog] = None,
    max_jobs: Optional[int] = None,
    stop: Optional[Callable[[], bool]] = None,
    fsync: bool = True,
    harness_faults: Optional[HarnessFaultController] = None,
) -> CampaignResult:
    """One-call campaign execution (the :mod:`repro.api` entry point).

    ``spec`` may be a :class:`CampaignSpec`, a dict in the
    :meth:`CampaignSpec.from_dict` shape, or a path to a TOML/JSON spec
    file.  ``backend`` is a name (``inline``/``process``/``thread``) or a
    ready :class:`ExecutionBackend` instance.
    """
    if isinstance(spec, (str, Path)):
        spec = load_spec(spec)
    elif isinstance(spec, Mapping):
        spec = CampaignSpec.from_dict(spec)
    if isinstance(backend, str):
        backend = make_backend(backend, jobs=jobs)
    runner = CampaignRunner(
        spec,
        backend,
        cache=cache,
        journal_path=journal,
        resume=resume,
        retry=retry,
        supervision=supervision,
        progress=progress,
        trace=trace,
        max_jobs=max_jobs,
        stop=stop,
        fsync=fsync,
        harness_faults=harness_faults,
    )
    return runner.run()


__all__ = [
    "BACKENDS",
    "CampaignError",
    "CampaignJob",
    "CampaignJournal",
    "CampaignProgress",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CorruptResultError",
    "ExecutionBackend",
    "InlineBackend",
    "JobTimeoutError",
    "JournalState",
    "ProcessBackend",
    "RetryPolicy",
    "SupervisionPolicy",
    "ThreadBackend",
    "WorkerLostError",
    "WorkerPreempted",
    "aggregate_campaign",
    "apply_overrides",
    "compile_campaign",
    "load_journal",
    "load_spec",
    "make_backend",
    "run_campaign",
]
