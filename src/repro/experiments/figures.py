"""Figure and table regenerators (paper section 6).

Each ``run_figN`` function executes the simulation sweep behind the
corresponding figure and returns a structured result whose ``rows()`` /
``format()`` methods print the same series the paper plots.  Defaults are
scaled down from the paper (duration and replication count) so the
benchmark suite completes in minutes; pass ``duration=2000, runs=30`` for
full paper fidelity.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.analysis.coverage import CoverageParams, detection_vs_theta
from repro.experiments.cache import ResultCache
from repro.experiments.runner import SweepRunner, replication_configs
from repro.experiments.scenario import ScenarioConfig
from repro.metrics.collector import MetricsReport
from repro.obs.config import ObsConfig
from repro.obs.spans import span


def _mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return statistics.fmean(values)


def _sweep_reports(
    point_configs: Dict[Hashable, ScenarioConfig],
    runs: int,
    jobs: Optional[int],
    cache: Optional[ResultCache],
) -> Dict[Hashable, List[MetricsReport]]:
    """Replication reports for every sweep point, keyed like the input.

    All points' replications are flattened into one batch so a parallel
    runner keeps every worker busy across the whole figure, not just
    within one parameter point.
    """
    flat: List[ScenarioConfig] = []
    for config in point_configs.values():
        flat.extend(replication_configs(config, runs))
    with span("figure.sweep"):
        reports = SweepRunner(jobs=jobs, cache=cache).run_many(flat)
    grouped: Dict[Hashable, List[MetricsReport]] = {}
    for offset, key in enumerate(point_configs):
        grouped[key] = reports[offset * runs:(offset + 1) * runs]
    return grouped


# ----------------------------------------------------------------------
# Figure 8 — cumulative dropped packets over time
# ----------------------------------------------------------------------
@dataclass
class Fig8Result:
    """Cumulative wormhole-dropped packets vs. time, per configuration."""

    times: Tuple[float, ...]
    series: Dict[Tuple[int, bool], Tuple[float, ...]]  # (M, liteworp) -> counts

    def final_drops(self, n_malicious: int, liteworp: bool) -> float:
        """Cumulative drops at the horizon for one configuration."""
        return self.series[(n_malicious, liteworp)][-1]

    def format(self) -> str:
        """Human-readable table of the four curves."""
        lines = ["time     " + "".join(
            f"M={m} {'LW' if lw else 'base':4s}  " for (m, lw) in sorted(self.series)
        )]
        for i, t in enumerate(self.times):
            row = f"{t:7.1f}  "
            for key in sorted(self.series):
                row += f"{self.series[key][i]:9.1f}  "
            lines.append(row)
        return "\n".join(lines)


def run_fig8(
    base: Optional[ScenarioConfig] = None,
    malicious_counts: Sequence[int] = (2, 4),
    runs: int = 2,
    sample_interval: float = 25.0,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    obs: Optional["ObsConfig"] = None,
) -> Fig8Result:
    """Figure 8: cumulative dropped packets with and without LITEWORP."""
    config = base if base is not None else ScenarioConfig(n_nodes=100, duration=300.0)
    if obs is not None:
        config = replace(config, obs=obs)
    times = tuple(
        config.attack_start * 0 + t
        for t in _sample_times(config.duration, sample_interval)
    )
    point_configs: Dict[Hashable, ScenarioConfig] = {
        (m, liteworp): replace(
            config, n_malicious=m, defense="liteworp" if liteworp else "none"
        )
        for m in malicious_counts
        for liteworp in (False, True)
    }
    grouped = _sweep_reports(point_configs, runs, jobs, cache)
    series: Dict[Tuple[int, bool], Tuple[float, ...]] = {}
    for key, reports in grouped.items():
        stacked = [report.drop_series(times) for report in reports]
        series[key] = tuple(
            _mean(run[i] for run in stacked) for i in range(len(times))
        )
    return Fig8Result(times=times, series=series)


def _sample_times(duration: float, interval: float) -> List[float]:
    times = []
    t = interval
    while t <= duration:
        times.append(t)
        t += interval
    if not times or times[-1] < duration:
        times.append(duration)
    return times


# ----------------------------------------------------------------------
# Figure 9 — fractions vs. number of compromised nodes
# ----------------------------------------------------------------------
@dataclass
class Fig9Result:
    """Dropped-packet and malicious-route fractions vs. M."""

    malicious_counts: Tuple[int, ...]
    fraction_dropped: Dict[Tuple[int, bool], float]
    fraction_malicious_routes: Dict[Tuple[int, bool], float]

    def rows(self) -> List[Tuple[int, float, float, float, float]]:
        """(M, dropped_base, mal_routes_base, dropped_lw, mal_routes_lw)."""
        out = []
        for m in self.malicious_counts:
            out.append(
                (
                    m,
                    self.fraction_dropped[(m, False)],
                    self.fraction_malicious_routes[(m, False)],
                    self.fraction_dropped[(m, True)],
                    self.fraction_malicious_routes[(m, True)],
                )
            )
        return out

    def format(self) -> str:
        lines = ["M   drop(base)  malroutes(base)  drop(LW)  malroutes(LW)"]
        for m, db, rb, dl, rl in self.rows():
            lines.append(f"{m}   {db:10.4f}  {rb:15.4f}  {dl:8.4f}  {rl:13.4f}")
        return "\n".join(lines)


def run_fig9(
    base: Optional[ScenarioConfig] = None,
    malicious_counts: Sequence[int] = (0, 1, 2, 3, 4),
    runs: int = 2,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    obs: Optional["ObsConfig"] = None,
) -> Fig9Result:
    """Figure 9: snapshot fractions for M = 0..4, with/without LITEWORP."""
    config = base if base is not None else ScenarioConfig(n_nodes=100, duration=300.0)
    if obs is not None:
        config = replace(config, obs=obs)
    point_configs: Dict[Hashable, ScenarioConfig] = {}
    for m in malicious_counts:
        for liteworp in (False, True):
            mode = config.attack_mode if m >= 2 or config.attack_mode == "none" else "none"
            effective_m = m if mode != "none" else 0
            if m == 1 and config.attack_mode in ("outofband", "encapsulation"):
                # One colluder cannot form a tunnel: equivalent to no attack.
                mode, effective_m = "none", 0
            point_configs[(m, liteworp)] = replace(
                config,
                n_malicious=effective_m,
                attack_mode=mode,
                defense="liteworp" if liteworp else "none",
            )
    grouped = _sweep_reports(point_configs, runs, jobs, cache)
    dropped: Dict[Tuple[int, bool], float] = {}
    mal_routes: Dict[Tuple[int, bool], float] = {}
    for key, reports in grouped.items():
        dropped[key] = _mean(r.fraction_wormhole_dropped for r in reports)
        mal_routes[key] = _mean(r.fraction_malicious_routes for r in reports)
    return Fig9Result(
        malicious_counts=tuple(malicious_counts),
        fraction_dropped=dropped,
        fraction_malicious_routes=mal_routes,
    )


# ----------------------------------------------------------------------
# Figure 10 — detection probability and isolation latency vs. theta
# ----------------------------------------------------------------------
@dataclass
class Fig10Result:
    """Detection probability (simulated + analytical) and isolation latency
    as the detection confidence index θ varies."""

    thetas: Tuple[int, ...]
    sim_detection: Dict[int, float]
    sim_latency: Dict[int, Optional[float]]
    analytical_detection: Dict[int, float] = field(default_factory=dict)

    def rows(self) -> List[Tuple[int, float, float, Optional[float]]]:
        """(θ, P_detect sim, P_detect analytical, isolation latency)."""
        return [
            (
                theta,
                self.sim_detection[theta],
                self.analytical_detection.get(theta, float("nan")),
                self.sim_latency[theta],
            )
            for theta in self.thetas
        ]

    def format(self) -> str:
        lines = ["theta  P(det) sim  P(det) ana  isolation latency (s)"]
        for theta, sim_p, ana_p, latency in self.rows():
            latency_text = f"{latency:8.2f}" if latency is not None else "     n/a"
            lines.append(f"{theta:5d}  {sim_p:10.3f}  {ana_p:10.3f}  {latency_text}")
        return "\n".join(lines)


def run_fig10(
    base: Optional[ScenarioConfig] = None,
    thetas: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    runs: int = 3,
    coverage: Optional[CoverageParams] = None,
    analytical_neighbors: float = 15.0,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    obs: Optional["ObsConfig"] = None,
) -> Fig10Result:
    """Figure 10: sweep θ at N_B = 15 with M = 2 colluders."""
    config = base if base is not None else ScenarioConfig(
        n_nodes=60, avg_neighbors=15.0, duration=220.0, n_malicious=2
    )
    if obs is not None:
        config = replace(config, obs=obs)
    point_configs: Dict[Hashable, ScenarioConfig] = {
        int(theta): replace(
            config,
            liteworp=replace(config.liteworp, theta=int(theta)),
            defense="liteworp",
        )
        for theta in thetas
    }
    grouped = _sweep_reports(point_configs, runs, jobs, cache)
    sim_detection: Dict[int, float] = {}
    sim_latency: Dict[int, Optional[float]] = {}
    for theta, reports in grouped.items():
        detected: List[float] = []
        latencies: List[float] = []
        for report in reports:
            attacked = [m for m in report.first_activity]
            if not attacked:
                continue
            isolated = [m for m in attacked if report.isolation_latency(m) is not None]
            detected.append(len(isolated) / len(attacked))
            latencies.extend(
                report.isolation_latency(m) for m in isolated  # type: ignore[misc]
            )
        sim_detection[int(theta)] = _mean(detected)
        sim_latency[int(theta)] = _mean(latencies) if latencies else None
    params = coverage or CoverageParams()
    analytical = dict(detection_vs_theta(list(thetas), analytical_neighbors, params))
    return Fig10Result(
        thetas=tuple(int(t) for t in thetas),
        sim_detection=sim_detection,
        sim_latency=sim_latency,
        analytical_detection=analytical,
    )
