"""Experiment harness: scenario assembly and per-figure runners.

- :mod:`repro.experiments.parameters` — the paper's Table 2 inputs.
- :mod:`repro.experiments.scenario` — build and run one simulated
  deployment (topology, network, LITEWORP agents, attack, traffic,
  metrics).
- :mod:`repro.experiments.figures` — the figure/table regenerators used by
  the benchmark suite (figures 8, 9, 10 from simulation; figure 6 and the
  cost table from the analysis module).
- :mod:`repro.experiments.campaign` — declarative, journaled, resumable
  campaign batches over the scenario grid.

Downstream code should prefer the stable :mod:`repro.api` facade over
importing from these modules directly.
"""

from repro.experiments.campaign import (
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    compile_campaign,
    load_spec,
    run_campaign,
)
from repro.experiments.chaos import (
    ChaosConfig,
    ChaosResult,
    make_chaos_plan,
    run_chaos,
)
from repro.experiments.parameters import TABLE2, Table2Parameters
from repro.experiments.records import ExperimentRecord, run_and_record
from repro.experiments.scenario import (
    Scenario,
    ScenarioConfig,
    average_runs,
    build_scenario,
    run_scenario,
)
from repro.experiments.stats import Summary, summarize, summarize_optional
from repro.experiments.figures import (
    Fig8Result,
    Fig9Result,
    Fig10Result,
    run_fig8,
    run_fig9,
    run_fig10,
)

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "ChaosConfig",
    "ChaosResult",
    "ExperimentRecord",
    "Fig10Result",
    "Fig8Result",
    "Fig9Result",
    "Scenario",
    "ScenarioConfig",
    "Summary",
    "TABLE2",
    "Table2Parameters",
    "average_runs",
    "build_scenario",
    "compile_campaign",
    "load_spec",
    "make_chaos_plan",
    "run_campaign",
    "run_and_record",
    "run_chaos",
    "run_fig10",
    "run_fig8",
    "run_fig9",
    "run_scenario",
    "summarize",
    "summarize_optional",
]
