"""The paper's simulation inputs (Table 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Table2Parameters:
    """Input parameter values for the LITEWORP simulations (Table 2).

    Symbols follow the paper: r (transmit range), λ (data rate), μ
    (destination change rate), N (node counts), N_B (average neighbors),
    M (compromised node counts), θ (detection confidence index range),
    δ (watch deadline), T (MalC window).
    """

    tx_range_m: float = 30.0
    theta_range: Tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8)
    node_counts: Tuple[int, ...] = (20, 50, 100, 150)
    avg_neighbors: int = 8
    data_rate: float = 1.0 / 10.0
    dest_change_rate: float = 1.0 / 200.0
    route_timeout: float = 50.0
    malicious_counts: Tuple[int, ...] = (0, 1, 2, 3, 4)
    channel_bandwidth_bps: float = 40_000.0
    delta: float = 0.5
    malc_window: float = 200.0

    def rows(self) -> List[Tuple[str, str]]:
        """Render the table as (parameter, value) rows."""
        return [
            ("Tx Range (r)", f"{self.tx_range_m:g} m"),
            ("theta", f"{self.theta_range[0]}-{self.theta_range[-1]}"),
            ("Total # nodes (N)", ",".join(str(n) for n in self.node_counts)),
            ("N_B", str(self.avg_neighbors)),
            ("lambda", f"1/{1.0 / self.data_rate:g} sec"),
            ("mu", f"1/{1.0 / self.dest_change_rate:g} sec"),
            ("TOut_Route", f"{self.route_timeout:g} sec"),
            ("M", f"{self.malicious_counts[0]}-{self.malicious_counts[-1]}"),
            ("Channel BW", f"{self.channel_bandwidth_bps / 1000:g} kbps"),
            ("delta", f"{self.delta:g} sec"),
            ("T", f"{self.malc_window:g}"),
        ]


TABLE2 = Table2Parameters()
