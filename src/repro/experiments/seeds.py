"""Replication seed derivation.

The paper averages every data point over ~30 independent replications.
Each replication needs its own root seed, derived from the sweep point's
base seed.  The seed scheme is part of the experiment's identity: the
result cache keys on the derived configs, and parallel execution must
derive exactly the same children as serial execution.

Two schemes live here:

- :func:`child_seed` — the current scheme.  Index 0 maps to the base seed
  itself (so a single replication is literally ``run_scenario(config)``),
  and indices >= 1 hash ``(base_seed, index)`` through SHA-256.  Unlike
  Python's builtin ``hash()`` the digest is stable across processes and
  interpreter versions, so a parallel worker pool derives byte-identical
  children.
- :func:`legacy_child_seed` — the historical ``seed + 1000 * index``
  scheme, kept as a documented compat shim.  It collides across sweep
  points whose base seeds differ by a multiple of 1000 (e.g. replication
  1 of seed 4 and replication 0 of seed 1004 were the *same* run), which
  silently correlates supposedly independent sweep points.
"""

from __future__ import annotations

import hashlib

# Domain-separation prefix: bump the suffix if the derivation ever needs
# to change again, so old and new schemes cannot collide by construction.
_DOMAIN = b"repro.experiments.child-seed.v1"

# Seeds stay inside the non-negative 63-bit range: comfortably big enough
# for independence, and representable exactly everywhere (JSON included).
_SEED_MASK = (1 << 63) - 1


def legacy_child_seed(base_seed: int, index: int) -> int:
    """The pre-hash scheme (``seed + 1000 * index``).  Compat shim only."""
    return int(base_seed) + 1000 * int(index)


def child_seed(base_seed: int, index: int) -> int:
    """Root seed for replication ``index`` of a sweep point.

    ``index`` 0 returns ``base_seed`` unchanged; higher indices derive an
    independent seed via SHA-256 over ``(base_seed, index)``.
    """
    if index < 0:
        raise ValueError(f"replication index must be non-negative, got {index!r}")
    base_seed = int(base_seed)
    if index == 0:
        return base_seed
    payload = b"%s:%d:%d" % (_DOMAIN, base_seed, index)
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK
