"""Content-addressed on-disk cache for scenario results.

Every figure and benchmark in this repository is a pure function of its
:class:`~repro.experiments.scenario.ScenarioConfig`: the simulation is
deterministic given the config (which includes the seed), so a finished
:class:`~repro.metrics.collector.MetricsReport` can be stored once and
replayed forever.  The cache keys each report by

1. a **config digest** — SHA-256 over a canonical, type-tagged rendering
   of the (frozen, recursively dataclass-valued) config, independent of
   field declaration order and stable across processes; and
2. a **code salt** — SHA-256 over the source bytes of the whole ``repro``
   package plus a schema version constant.  Any code change invalidates
   the entire cache wholesale, which is the only safe policy for a
   simulator whose every module can shift results.

Layout::

    <root>/<salt[:16]>/<digest>.json

Each entry stores the full-fidelity report state plus a small header with
the config's repr for humans spelunking the cache directory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Dict, Optional, Union

from repro.metrics.collector import MetricsReport
from repro.obs.spans import span

#: Bump when the on-disk entry format (not the simulator) changes shape.
#: 2: MetricsReport grew per-node protocol counters (node_counters).
#: 3: MetricsReport grew causal latency stages (latency_stages); version-2
#:    entries still load (the field defaults to empty on read).
#: 4: ScenarioConfig.defense became a DefenseSpec (name + per-plugin
#:    config block participate in the digest, so two defenses with
#:    otherwise-identical base configs can never collide).
CACHE_SCHEMA_VERSION = 4


# ----------------------------------------------------------------------
# Config hashing
# ----------------------------------------------------------------------
def canonical_value(obj: Any) -> Any:
    """Reduce ``obj`` to nested JSON-safe primitives with type tags.

    Dataclasses carry their qualified class name so two config types whose
    field dicts happen to coincide still hash differently; tuples/lists
    and dicts recurse; everything else must already be JSON-representable.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonical_value(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__type__": type(obj).__qualname__, "__fields__": fields}
    if isinstance(obj, dict):
        return {str(k): canonical_value(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [canonical_value(item) for item in obj]
    if isinstance(obj, frozenset):
        return sorted(canonical_value(item) for item in obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalise {type(obj).__name__!r} for hashing: {obj!r}")


def config_digest(config: Any) -> str:
    """Stable SHA-256 hex digest of a (dataclass) config."""
    rendered = json.dumps(
        canonical_value(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


def code_salt() -> str:
    """Digest of the installed ``repro`` package's source, computed once.

    Hashes every ``.py`` file under the package root in sorted relative-
    path order, so any code edit — engine, channel, protocol, metrics —
    retires all previously cached results.
    """
    global _CODE_SALT
    if _CODE_SALT is None:
        package_root = pathlib.Path(__file__).resolve().parent.parent
        hasher = hashlib.sha256()
        hasher.update(b"schema:%d" % CACHE_SCHEMA_VERSION)
        for path in sorted(package_root.rglob("*.py")):
            hasher.update(str(path.relative_to(package_root)).encode("utf-8"))
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
            hasher.update(b"\0")
        _CODE_SALT = hasher.hexdigest()
    return _CODE_SALT


_CODE_SALT: Optional[str] = None


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed store of finished scenario reports.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).
    salt:
        Override for the code-version salt; defaults to :func:`code_salt`.
        Tests use explicit salts to exercise invalidation without editing
        source files.
    fsync:
        fsync entries (and their directory) before the atomic rename
        publishes them, so a machine crash cannot leave a renamed-but-
        empty entry.  Default True; benchmarks can turn it off.
    """

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        salt: Optional[str] = None,
        fsync: bool = True,
    ) -> None:
        self.root = pathlib.Path(root)
        self.salt = salt if salt is not None else code_salt()
        self.fsync = fsync
        self.hits = 0
        self.misses = 0

    def path_for(self, config: Any) -> pathlib.Path:
        """Entry path for ``config`` under the current salt."""
        return self.root / self.salt[:16] / f"{config_digest(config)}.json"

    def get(self, config: Any) -> Optional[MetricsReport]:
        """The cached report for ``config``, or None.  Corrupt or
        foreign-format entries count as misses (and are left in place for
        post-mortems rather than deleted)."""
        with span("cache.lookup"):
            path = self.path_for(config)
            try:
                payload = json.loads(path.read_text())
                report = MetricsReport.from_state(payload["report"])
            except (OSError, ValueError, KeyError, TypeError):
                self.misses += 1
                return None
            self.hits += 1
            return report

    def put(self, config: Any, report: MetricsReport) -> pathlib.Path:
        """Store ``report`` under ``config``'s digest (atomic rename, so a
        parallel worker crashing mid-write never leaves a torn entry)."""
        with span("cache.store"):
            path = self.path_for(config)
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = {
                "schema": CACHE_SCHEMA_VERSION,
                "config": repr(config),
                "report": report.to_state(),
            }
            text = json.dumps(payload, sort_keys=True, indent=1) + "\n"
            fd, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                    if self.fsync:
                        # Durability order matters: entry bytes first,
                        # then the rename, then the directory entry — a
                        # crash at any point leaves either the old state
                        # or the complete new one, never a torn entry.
                        handle.flush()
                        os.fsync(handle.fileno())
                os.replace(temp_name, path)
                if self.fsync:
                    dir_fd = os.open(path.parent, os.O_RDONLY)
                    try:
                        os.fsync(dir_fd)
                    finally:
                        os.close(dir_fd)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
            return path

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters since construction."""
        return {"hits": self.hits, "misses": self.misses}
