"""Harness-level fault injection for the campaign orchestrator.

:mod:`repro.faults.plan` breaks the *simulated* network; this module
breaks the *experiment harness itself* — the workers, journal, and trace
sinks that ROADMAP-scale campaigns depend on.  A
:class:`HarnessFaultPlan` is pure data (JSON round-trip, seeded
construction) describing which campaign jobs crash, hang, slow down, or
return corrupt payloads, which journal appends are torn mid-write, and
which sink writes fail with an IO error.  The
:class:`HarnessFaultController` arms a plan against a live
:class:`~repro.experiments.campaign.CampaignRunner`.

Determinism across processes
----------------------------
Campaign workers may run in separate processes, so "fire this fault
``times`` times and never again" cannot be an in-memory counter.  The
controller claims firing slots through **marker files** created with
``O_CREAT | O_EXCL`` in a state directory: each successful create is one
atomic, cross-process claim.  The same state directory shared between an
interrupted run and its resume therefore guarantees a fault injected
before the interruption is not re-injected afterwards — which is exactly
what the resume byte-identity proof needs.

Fault taxonomy
--------------
``WorkerCrash``
    The worker executing the target job dies: ``hard`` crashes call
    ``os._exit`` (killing the pool process — the poison-job path),
    otherwise an :class:`InjectedWorkerCrash` is raised (a clean per-job
    failure).
``WorkerHang``
    The worker sleeps ``seconds`` before running the job — set it past
    the supervision timeout to simulate a wedged worker.
``WorkerSlowdown``
    As above but meant to stay *under* the timeout (latency, not death).
``CorruptResult``
    The worker completes but returns a non-``MetricsReport`` payload;
    the runner's result validation must catch it.
``TornJournalWrite``
    The Nth journal completion append writes only a prefix of its line
    and then raises :class:`HarnessInterrupt` — a crash at the worst
    possible byte.
``SinkIOError``
    The Nth write on a wrapped trace sink raises ``OSError`` (ENOSPC by
    default); the trace layer must degrade, not abort.
"""

from __future__ import annotations

import errno
import json
import os
import random
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Type, Union


class HarnessFaultError(ValueError):
    """A harness fault plan is malformed."""


class InjectedWorkerCrash(RuntimeError):
    """A planned (soft) worker crash fired."""


class HarnessInterrupt(RuntimeError):
    """A planned fault simulated a process death mid-operation; the
    campaign must stop as if killed (journal consistent up to the torn
    byte) and be resumable."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise HarnessFaultError(message)


# ----------------------------------------------------------------------
# Fault types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HarnessFault:
    """Base class: one planned harness misbehaviour.

    ``times`` bounds how often the fault fires over the *whole campaign
    lifetime* (including resumes sharing the state directory).
    """

    times: int = 1

    kind = "harness_fault"

    def validate(self) -> None:
        _require(self.times >= 1, f"{self.kind}: times must be >= 1, got {self.times!r}")

    def fault_id(self) -> str:
        """Stable identity used for marker files and trace records."""
        fields = ",".join(
            f"{k}={v}" for k, v in sorted(asdict(self).items()) if k != "times"
        )
        return f"{self.kind}({fields})"


@dataclass(frozen=True)
class _JobFault(HarnessFault):
    """A fault targeting one compiled campaign job by index."""

    job: int = 0

    def validate(self) -> None:
        super().validate()
        _require(self.job >= 0, f"{self.kind}: job index must be >= 0, got {self.job!r}")


@dataclass(frozen=True)
class WorkerCrash(_JobFault):
    """The worker running ``job`` dies before producing a result."""

    hard: bool = False
    kind = "worker_crash"


@dataclass(frozen=True)
class WorkerHang(_JobFault):
    """The worker running ``job`` wedges for ``seconds`` before working."""

    seconds: float = 3600.0
    kind = "worker_hang"

    def validate(self) -> None:
        super().validate()
        _require(self.seconds > 0, f"{self.kind}: seconds must be positive, got {self.seconds!r}")


@dataclass(frozen=True)
class WorkerSlowdown(_JobFault):
    """The worker running ``job`` stalls ``seconds`` but still finishes."""

    seconds: float = 0.25
    kind = "worker_slowdown"

    def validate(self) -> None:
        super().validate()
        _require(self.seconds > 0, f"{self.kind}: seconds must be positive, got {self.seconds!r}")


@dataclass(frozen=True)
class CorruptResult(_JobFault):
    """The worker running ``job`` returns garbage instead of a report."""

    kind = "corrupt_result"


@dataclass(frozen=True)
class TornJournalWrite(HarnessFault):
    """The ``entry``-th completion append (0-based, per campaign
    lifetime) writes only ``fraction`` of its line, then the process
    "dies" (:class:`HarnessInterrupt`)."""

    entry: int = 0
    fraction: float = 0.5
    kind = "torn_journal_write"

    def validate(self) -> None:
        super().validate()
        _require(self.entry >= 0, f"{self.kind}: entry must be >= 0, got {self.entry!r}")
        _require(
            0.0 < self.fraction < 1.0,
            f"{self.kind}: fraction must be in (0, 1), got {self.fraction!r}",
        )


@dataclass(frozen=True)
class SinkIOError(HarnessFault):
    """The ``write``-th record written to a wrapped sink raises
    ``OSError(errno_code)`` — ENOSPC by default."""

    write: int = 0
    errno_code: int = errno.ENOSPC
    kind = "sink_io_error"

    def validate(self) -> None:
        super().validate()
        _require(self.write >= 0, f"{self.kind}: write must be >= 0, got {self.write!r}")


_FAULT_TYPES: Dict[str, Type[HarnessFault]] = {
    cls.kind: cls
    for cls in (
        WorkerCrash,
        WorkerHang,
        WorkerSlowdown,
        CorruptResult,
        TornJournalWrite,
        SinkIOError,
    )
}


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HarnessFaultPlan:
    """An immutable, validated schedule of harness faults.

    Faults sort by kind then field values, so two plans built from the
    same events in any order compare — and serialize — identically.
    """

    faults: Tuple[HarnessFault, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.faults,
                key=lambda f: (f.kind, tuple(sorted(asdict(f).items()))),
            )
        )
        object.__setattr__(self, "faults", ordered)
        for fault in ordered:
            fault.validate()

    @classmethod
    def of(cls, *faults: HarnessFault) -> "HarnessFaultPlan":
        """Build a plan from faults given in any order."""
        return cls(faults=tuple(faults))

    @classmethod
    def sampled(
        cls,
        seed: int,
        n_jobs: int,
        *,
        crashes: int = 0,
        hard_crashes: int = 0,
        hangs: int = 0,
        slowdowns: int = 0,
        corruptions: int = 0,
        torn_writes: int = 0,
        sink_errors: int = 0,
        hang_seconds: float = 3600.0,
        slowdown_seconds: float = 0.25,
    ) -> "HarnessFaultPlan":
        """A deterministic, seeded plan over ``n_jobs`` compiled jobs.

        Job targets are drawn without replacement per fault class from
        ``random.Random(seed)``, so the same seed and job count always
        produce the same plan — chaos runs are replayable by seed.
        """
        _require(n_jobs >= 1, f"sampled plan needs n_jobs >= 1, got {n_jobs!r}")
        wanted = crashes + hard_crashes + hangs + slowdowns + corruptions
        _require(
            wanted <= n_jobs,
            f"cannot target {wanted} job fault(s) across {n_jobs} job(s)",
        )
        rng = random.Random(seed)
        targets = rng.sample(range(n_jobs), wanted)
        it = iter(targets)
        faults: List[HarnessFault] = []
        faults.extend(WorkerCrash(job=next(it)) for _ in range(crashes))
        faults.extend(WorkerCrash(job=next(it), hard=True) for _ in range(hard_crashes))
        faults.extend(WorkerHang(job=next(it), seconds=hang_seconds) for _ in range(hangs))
        faults.extend(
            WorkerSlowdown(job=next(it), seconds=slowdown_seconds)
            for _ in range(slowdowns)
        )
        faults.extend(CorruptResult(job=next(it)) for _ in range(corruptions))
        faults.extend(
            TornJournalWrite(entry=rng.randrange(n_jobs)) for _ in range(torn_writes)
        )
        faults.extend(
            SinkIOError(write=rng.randrange(64)) for _ in range(sink_errors)
        )
        return cls(faults=tuple(faults))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def job_faults(self, job: int) -> Tuple[HarnessFault, ...]:
        """Faults targeting campaign job ``job``, in plan order."""
        return tuple(
            f for f in self.faults if isinstance(f, _JobFault) and f.job == job
        )

    def torn_writes(self) -> Tuple[TornJournalWrite, ...]:
        return tuple(f for f in self.faults if isinstance(f, TornJournalWrite))

    def sink_errors(self) -> Tuple[SinkIOError, ...]:
        return tuple(f for f in self.faults if isinstance(f, SinkIOError))

    # ------------------------------------------------------------------
    # JSON round-trip (mirrors FaultPlan)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        entries: List[Dict[str, Any]] = []
        for fault in self.faults:
            entry = {"kind": fault.kind}
            entry.update(asdict(fault))
            entries.append(entry)
        return {"harness_faults": entries}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HarnessFaultPlan":
        raw = data.get("harness_faults")
        if not isinstance(raw, list):
            raise HarnessFaultError(
                "harness fault plan document must contain a 'harness_faults' list"
            )
        faults: List[HarnessFault] = []
        for entry in raw:
            if not isinstance(entry, dict) or "kind" not in entry:
                raise HarnessFaultError(
                    f"each fault entry needs a 'kind' field, got {entry!r}"
                )
            kind = entry["kind"]
            fault_type = _FAULT_TYPES.get(kind)
            if fault_type is None:
                known = ", ".join(sorted(_FAULT_TYPES))
                raise HarnessFaultError(
                    f"unknown harness fault kind {kind!r} (known: {known})"
                )
            fields = {k: v for k, v in entry.items() if k != "kind"}
            try:
                faults.append(fault_type(**fields))
            except TypeError as exc:
                raise HarnessFaultError(
                    f"bad fields for harness fault kind {kind!r}: {exc}"
                ) from exc
        return cls(faults=tuple(faults))

    @classmethod
    def from_json(cls, text: str) -> "HarnessFaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise HarnessFaultError(f"invalid harness fault plan JSON: {exc}") from exc
        if not isinstance(payload, Mapping):
            raise HarnessFaultError("harness fault plan must be a JSON object")
        return cls.from_dict(payload)


def load_harness_plan(path: Union[str, Path]) -> HarnessFaultPlan:
    """Load a :class:`HarnessFaultPlan` from a JSON file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise HarnessFaultError(f"cannot read harness fault plan {path}: {exc}") from exc
    return HarnessFaultPlan.from_json(text)


# ----------------------------------------------------------------------
# The controller: arming a plan against a live campaign
# ----------------------------------------------------------------------
class HarnessFaultController:
    """Arms a :class:`HarnessFaultPlan` with cross-process firing state.

    Parameters
    ----------
    plan:
        What goes wrong.
    state_dir:
        Directory for the marker files that make each fault fire exactly
        ``times`` times across every process — and every resume — that
        shares it.  Created on first claim.
    """

    def __init__(self, plan: HarnessFaultPlan, state_dir: Union[str, Path]) -> None:
        self.plan = plan
        self.state_dir = Path(state_dir)

    # -- claim protocol ------------------------------------------------
    def claim(self, fault: HarnessFault) -> bool:
        """Atomically claim the next firing slot for ``fault``.

        Returns True exactly ``fault.times`` times across all processes
        sharing the state directory, False forever after.
        """
        return _claim(self.state_dir, fault)

    def fired(self, fault: HarnessFault) -> int:
        """How many of ``fault``'s firing slots have been claimed."""
        count = 0
        for slot in range(fault.times):
            if (self.state_dir / _marker_name(fault, slot)).exists():
                count += 1
        return count

    # -- integration points --------------------------------------------
    def wrap_worker(
        self, worker: Callable[[Any], Any], index_by_digest: Mapping[str, int]
    ) -> "FaultyWorker":
        """A picklable worker that injects this plan's job faults around
        ``worker``.  ``index_by_digest`` maps config digests to compiled
        job indices (faults target jobs by index; workers only see
        configs)."""
        return FaultyWorker(
            worker=worker,
            plan=self.plan,
            state_dir=str(self.state_dir),
            index_by_digest=dict(index_by_digest),
        )

    def wrap_sink(self, sink: Any) -> "FaultySink":
        """A sink delegating to ``sink`` whose planned writes raise."""
        return FaultySink(sink, self)

    def claim_torn_write(self, entry: int) -> Optional[TornJournalWrite]:
        """The torn-write fault firing on completion append ``entry``,
        with its slot claimed — or None."""
        for fault in self.plan.torn_writes():
            if fault.entry == entry and self.claim(fault):
                return fault
        return None


def _marker_name(fault: HarnessFault, slot: int) -> str:
    digest = fault.fault_id().replace("/", "_").replace(" ", "")
    return f"{digest}.slot{slot}"


def _claim(state_dir: Path, fault: HarnessFault) -> bool:
    state_dir.mkdir(parents=True, exist_ok=True)
    for slot in range(fault.times):
        marker = state_dir / _marker_name(fault, slot)
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return True
    return False


class FaultyWorker:
    """Picklable worker wrapper injecting job-targeted harness faults.

    Process-pool backends pickle the worker into each pool process; the
    wrapper carries only plain data (the plan, the state directory path,
    and the digest→index map), so it crosses that boundary intact and
    the marker-file claims stay atomic across workers.
    """

    def __init__(
        self,
        worker: Callable[[Any], Any],
        plan: HarnessFaultPlan,
        state_dir: str,
        index_by_digest: Dict[str, int],
    ) -> None:
        self.worker = worker
        self.plan = plan
        self.state_dir = state_dir
        self.index_by_digest = index_by_digest

    def __call__(self, config: Any) -> Any:
        from repro.experiments.cache import config_digest

        index = self.index_by_digest.get(config_digest(config))
        corrupt = False
        if index is not None:
            state_dir = Path(self.state_dir)
            for fault in self.plan.job_faults(index):
                if not _claim(state_dir, fault):
                    continue
                if isinstance(fault, WorkerCrash):
                    if fault.hard:
                        # A hard crash takes the whole pool process with
                        # it — the poison-job path the supervisor must
                        # quarantine, not a tidy exception.
                        os._exit(23)
                    raise InjectedWorkerCrash(
                        f"injected worker crash on job {index}"
                    )
                if isinstance(fault, (WorkerHang, WorkerSlowdown)):
                    time.sleep(fault.seconds)
                elif isinstance(fault, CorruptResult):
                    corrupt = True
        result = self.worker(config)
        if corrupt:
            return {"__corrupt__": "injected payload corruption"}
        return result


class FaultySink:
    """Sink wrapper whose planned write raises ``OSError``."""

    def __init__(self, sink: Any, controller: HarnessFaultController) -> None:
        self.sink = sink
        self.controller = controller
        self.writes = 0

    def write(self, record: Any) -> None:
        index = self.writes
        self.writes += 1
        for fault in self.controller.plan.sink_errors():
            if fault.write == index and self.controller.claim(fault):
                raise OSError(
                    fault.errno_code,
                    f"injected sink IO error on write {index}: "
                    f"{os.strerror(fault.errno_code)}",
                )
        self.sink.write(record)

    def close(self) -> None:
        close = getattr(self.sink, "close", None)
        if callable(close):
            close()


__all__ = [
    "CorruptResult",
    "FaultySink",
    "FaultyWorker",
    "HarnessFault",
    "HarnessFaultController",
    "HarnessFaultError",
    "HarnessFaultPlan",
    "HarnessInterrupt",
    "InjectedWorkerCrash",
    "SinkIOError",
    "TornJournalWrite",
    "WorkerCrash",
    "WorkerHang",
    "WorkerSlowdown",
    "load_harness_plan",
]
