"""Fault injection for robustness experiments.

The paper's evaluation assumes a benign environment apart from the
wormhole itself: nodes never crash, links never flap, the channel never
degrades.  This package deliberately breaks those assumptions so the
countermeasure's behaviour under churn can be measured:

- :mod:`repro.faults.plan` — a declarative, JSON-loadable description of
  *what* goes wrong and *when* (crash-stop, crash-recover, link flap,
  ambient-loss burst, MAC saturation, energy depletion, clock drift);
- :mod:`repro.faults.controller` — the executor that arms a plan on a
  live :class:`~repro.net.network.Network` via simulator timers;
- :mod:`repro.faults.harness` — faults against the experiment harness
  itself (worker crash/hang, corrupted results, torn journal writes,
  sink IO errors), validating the campaign supervisor's crash
  consistency rather than the protocol's.

Fault plans are pure data: the same plan applied to the same seeded
scenario reproduces the exact same run, byte for byte.
"""

from repro.faults.controller import FaultController
from repro.faults.harness import (
    CorruptResult,
    HarnessFault,
    HarnessFaultController,
    HarnessFaultError,
    HarnessFaultPlan,
    HarnessInterrupt,
    InjectedWorkerCrash,
    SinkIOError,
    TornJournalWrite,
    WorkerCrash,
    WorkerHang,
    WorkerSlowdown,
    load_harness_plan,
)
from repro.faults.plan import (
    ClockDrift,
    CrashRecover,
    CrashStop,
    EnergyDepletion,
    Fault,
    FaultPlan,
    LinkFlap,
    LossBurst,
    MacSaturation,
)

__all__ = [
    "ClockDrift",
    "CorruptResult",
    "CrashRecover",
    "CrashStop",
    "EnergyDepletion",
    "Fault",
    "FaultController",
    "FaultPlan",
    "HarnessFault",
    "HarnessFaultController",
    "HarnessFaultError",
    "HarnessFaultPlan",
    "HarnessInterrupt",
    "InjectedWorkerCrash",
    "LinkFlap",
    "LossBurst",
    "MacSaturation",
    "SinkIOError",
    "TornJournalWrite",
    "WorkerCrash",
    "WorkerHang",
    "WorkerSlowdown",
    "load_harness_plan",
]
