"""Declarative fault plans.

A :class:`FaultPlan` is an ordered collection of scheduled fault events —
pure data, independent of any live network.  Plans round-trip through
JSON (:meth:`FaultPlan.to_json` / :meth:`FaultPlan.from_json`) so chaos
scenarios can be stored alongside experiment configs and replayed
exactly.

Each fault type is a frozen dataclass with an ``at`` time (seconds into
the run) and a ``validate`` method raising :class:`ValueError` eagerly —
a malformed plan fails at construction, not three hundred simulated
seconds into a run.

Fault taxonomy
--------------
``CrashStop``
    The node halts permanently: radio deaf and silent, MAC queue lost.
``CrashRecover``
    As above, but the node reboots after ``downtime`` seconds and re-runs
    its join procedure (volatile state lost, nonvolatile revocations
    kept).
``EnergyDepletion``
    Battery exhaustion — semantically a permanent crash, kept distinct so
    traces and reports can attribute the outage correctly.
``LinkFlap``
    One symmetric link goes down for ``downtime`` seconds, then returns.
``LossBurst``
    The channel-wide ambient loss probability rises to ``probability``
    for ``duration`` seconds, then returns to its previous value.
``MacSaturation``
    A node floods meaningless frames at ``rate`` per second for
    ``duration`` seconds, congesting its neighborhood.
``ClockDrift``
    The node's clock rate is skewed by ``skew`` (e.g. 0.05 = 5% fast),
    stretching every locally timed interval such as heartbeat periods.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Tuple, Type

from repro.net.packet import NodeId


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class Fault:
    """Base class: one scheduled fault event."""

    at: float = 0.0

    #: Discriminator used in the JSON encoding; set per subclass.
    kind = "fault"

    def validate(self) -> None:
        """Raise :class:`ValueError` if the fault is malformed."""
        _require(self.at >= 0, f"{self.kind}: injection time must be >= 0, got {self.at!r}")

    def end_time(self) -> float:
        """When the fault's effect (including recovery) is over."""
        return self.at


@dataclass(frozen=True)
class CrashStop(Fault):
    """Permanent halt of ``node`` at time ``at``."""

    node: NodeId = 0
    kind = "crash_stop"


@dataclass(frozen=True)
class EnergyDepletion(Fault):
    """Battery exhaustion of ``node`` — a permanent halt with its own
    trace attribution."""

    node: NodeId = 0
    kind = "energy_depletion"


@dataclass(frozen=True)
class CrashRecover(Fault):
    """Halt of ``node`` at ``at`` followed by a reboot ``downtime``
    seconds later."""

    node: NodeId = 0
    downtime: float = 10.0
    kind = "crash_recover"

    def validate(self) -> None:
        super().validate()
        _require(self.downtime > 0, f"{self.kind}: downtime must be positive, got {self.downtime!r}")

    def end_time(self) -> float:
        return self.at + self.downtime


@dataclass(frozen=True)
class LinkFlap(Fault):
    """The symmetric link ``a <-> b`` is severed for ``downtime`` seconds."""

    a: NodeId = 0
    b: NodeId = 0
    downtime: float = 5.0
    kind = "link_flap"

    def validate(self) -> None:
        super().validate()
        _require(self.a != self.b, f"{self.kind}: link endpoints must differ, got {self.a!r}")
        _require(self.downtime > 0, f"{self.kind}: downtime must be positive, got {self.downtime!r}")

    def end_time(self) -> float:
        return self.at + self.downtime


@dataclass(frozen=True)
class LossBurst(Fault):
    """Channel-wide ambient loss raised to ``probability`` for
    ``duration`` seconds."""

    probability: float = 0.1
    duration: float = 10.0
    kind = "loss_burst"

    def validate(self) -> None:
        super().validate()
        _require(
            0.0 < self.probability < 1.0,
            f"{self.kind}: probability must be in (0, 1), got {self.probability!r}",
        )
        _require(self.duration > 0, f"{self.kind}: duration must be positive, got {self.duration!r}")

    def end_time(self) -> float:
        return self.at + self.duration


@dataclass(frozen=True)
class MacSaturation(Fault):
    """``node`` floods ``rate`` junk frames per second for ``duration``
    seconds (deterministic schedule: one frame every ``1 / rate``)."""

    node: NodeId = 0
    duration: float = 5.0
    rate: float = 50.0
    payload_size: int = 32
    kind = "mac_saturation"

    def validate(self) -> None:
        super().validate()
        _require(self.duration > 0, f"{self.kind}: duration must be positive, got {self.duration!r}")
        _require(self.rate > 0, f"{self.kind}: rate must be positive, got {self.rate!r}")
        _require(
            self.payload_size > 0,
            f"{self.kind}: payload_size must be positive, got {self.payload_size!r}",
        )

    def end_time(self) -> float:
        return self.at + self.duration


@dataclass(frozen=True)
class ClockDrift(Fault):
    """``node``'s clock rate is skewed by ``skew`` from time ``at`` on."""

    node: NodeId = 0
    skew: float = 0.05
    kind = "clock_drift"

    def validate(self) -> None:
        super().validate()
        _require(
            -0.5 <= self.skew <= 0.5,
            f"{self.kind}: skew must be within +/-0.5, got {self.skew!r}",
        )


_FAULT_TYPES: Dict[str, Type[Fault]] = {
    cls.kind: cls
    for cls in (
        CrashStop,
        EnergyDepletion,
        CrashRecover,
        LinkFlap,
        LossBurst,
        MacSaturation,
        ClockDrift,
    )
}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated schedule of faults.

    Faults are stored sorted by injection time (ties broken by kind then
    field order) so two plans built from the same events in any order
    compare — and serialize — identically.
    """

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.faults, key=lambda f: (f.at, f.kind, tuple(sorted(asdict(f).items()))))
        )
        object.__setattr__(self, "faults", ordered)
        for fault in ordered:
            fault.validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, *faults: Fault) -> "FaultPlan":
        """Build a plan from fault events given in any order."""
        return cls(faults=tuple(faults))

    def extended(self, *faults: Fault) -> "FaultPlan":
        """A new plan with ``faults`` added."""
        return FaultPlan(faults=self.faults + tuple(faults))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def crashed_nodes(self) -> Tuple[NodeId, ...]:
        """Nodes subject to any crash-class fault, sorted."""
        nodes = {
            f.node
            for f in self.faults
            if isinstance(f, (CrashStop, CrashRecover, EnergyDepletion))
        }
        return tuple(sorted(nodes))

    def permanently_down(self) -> Tuple[NodeId, ...]:
        """Nodes that never come back (crash-stop / depletion), sorted."""
        nodes = {f.node for f in self.faults if isinstance(f, (CrashStop, EnergyDepletion))}
        return tuple(sorted(nodes))

    def end_time(self) -> float:
        """When the last fault effect is over (0.0 for an empty plan)."""
        return max((f.end_time() for f in self.faults), default=0.0)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form: ``{"faults": [{"kind": ..., ...}, ...]}``."""
        entries: List[Dict[str, Any]] = []
        for fault in self.faults:
            entry = {"kind": fault.kind}
            entry.update(asdict(fault))
            entries.append(entry)
        return {"faults": entries}

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a stable JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; unknown kinds raise ValueError."""
        raw = data.get("faults")
        if not isinstance(raw, list):
            raise ValueError("fault plan document must contain a 'faults' list")
        faults: List[Fault] = []
        for entry in raw:
            if not isinstance(entry, dict) or "kind" not in entry:
                raise ValueError(f"each fault entry needs a 'kind' field, got {entry!r}")
            kind = entry["kind"]
            fault_type = _FAULT_TYPES.get(kind)
            if fault_type is None:
                known = ", ".join(sorted(_FAULT_TYPES))
                raise ValueError(f"unknown fault kind {kind!r} (known: {known})")
            fields = {k: v for k, v in entry.items() if k != "kind"}
            try:
                faults.append(fault_type(**fields))
            except TypeError as exc:
                raise ValueError(f"bad fields for fault kind {kind!r}: {exc}") from exc
        return cls(faults=tuple(faults))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from its JSON form."""
        return cls.from_dict(json.loads(text))
