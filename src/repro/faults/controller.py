"""Fault plan execution.

:class:`FaultController` arms a :class:`~repro.faults.plan.FaultPlan` on a
live :class:`~repro.net.network.Network`: every fault becomes one or more
simulator timers that manipulate the physical substrate (node lifecycle,
channel links and loss, MAC air time, node clocks).  The controller emits
a ``fault_injected`` trace record at each injection and a
``fault_cleared`` record when a transient fault's effect ends, so
experiment post-processing can correlate protocol behaviour with the
fault timeline.

Determinism: the controller draws no randomness of its own.  All timing
comes from the plan; MAC-saturation frames go out on the fixed grid
``at + i / rate``.  Identical seed + identical plan therefore reproduces
the identical event sequence.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.faults.plan import (
    ClockDrift,
    CrashRecover,
    CrashStop,
    EnergyDepletion,
    Fault,
    FaultPlan,
    LinkFlap,
    LossBurst,
    MacSaturation,
)
from repro.net.network import Network
from repro.net.packet import NoisePacket
from repro.sim.trace import TraceLog


class FaultController:
    """Executes fault plans against one network."""

    def __init__(self, network: Network, trace: Optional[TraceLog] = None) -> None:
        self.network = network
        self.sim = network.sim
        self.trace = trace if trace is not None else network.trace
        self.injected = 0
        self.cleared = 0
        self._armed_plans: List[FaultPlan] = []
        self._noise_sequence = itertools.count()

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def apply(self, plan: FaultPlan) -> None:
        """Schedule every fault in ``plan``.  May be called before or
        during the run; faults whose time is already past fire immediately
        on the next simulator step."""
        plan_index = len(self._armed_plans)
        self._armed_plans.append(plan)
        for fault in plan:
            self.sim.schedule_at(max(fault.at, self.sim.now), self._inject, fault)
        if len(plan):
            self.trace.emit(
                self.sim.now, "fault_plan_armed", plan=plan_index, faults=len(plan)
            )

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def _inject(self, fault: Fault) -> None:
        self.injected += 1
        self._emit("fault_injected", fault)
        if isinstance(fault, (CrashStop, EnergyDepletion)):
            self.network.node(fault.node).fail()
        elif isinstance(fault, CrashRecover):
            self.network.node(fault.node).fail()
            self.sim.schedule(fault.downtime, self._recover, fault)
        elif isinstance(fault, LinkFlap):
            self.network.channel.set_link_down(fault.a, fault.b)
            self.sim.schedule(fault.downtime, self._link_restore, fault)
        elif isinstance(fault, LossBurst):
            previous = self.network.channel.ambient_loss
            self.network.channel.set_ambient_loss(fault.probability)
            self.sim.schedule(fault.duration, self._loss_restore, fault, previous)
        elif isinstance(fault, MacSaturation):
            self._start_saturation(fault)
        elif isinstance(fault, ClockDrift):
            self.network.node(fault.node).clock_skew = fault.skew
        else:  # pragma: no cover - plan validation keeps this unreachable
            raise TypeError(f"unknown fault type: {fault!r}")

    # ------------------------------------------------------------------
    # Transient-fault clearing
    # ------------------------------------------------------------------
    def _recover(self, fault: CrashRecover) -> None:
        self.network.node(fault.node).recover()
        self._clear(fault)

    def _link_restore(self, fault: LinkFlap) -> None:
        self.network.channel.set_link_up(fault.a, fault.b)
        self._clear(fault)

    def _loss_restore(self, fault: LossBurst, previous: float) -> None:
        self.network.channel.set_ambient_loss(previous)
        self._clear(fault)

    def _start_saturation(self, fault: MacSaturation) -> None:
        node = self.network.node(fault.node)
        count = int(fault.duration * fault.rate)
        for i in range(count):
            self.sim.schedule(i / fault.rate, self._noise, node, fault.payload_size)
        self.sim.schedule(fault.duration, self._clear, fault)

    def _noise(self, node, payload_size: int) -> None:
        node.broadcast(
            NoisePacket(
                sender=node.node_id,
                sequence=next(self._noise_sequence),
                payload_size=payload_size,
            ),
            jitter=0.0,
        )

    def _clear(self, fault: Fault) -> None:
        self.cleared += 1
        self._emit("fault_cleared", fault)

    def _emit(self, kind: str, fault: Fault) -> None:
        fields = {k: v for k, v in vars(fault).items() if not k.startswith("_")}
        self.trace.emit(self.sim.now, kind, fault=fault.kind, **fields)
