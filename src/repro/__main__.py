"""Entry point for ``python -m repro``."""

import signal
import sys

from repro.cli import main

if hasattr(signal, "SIGPIPE"):
    # Die quietly when piped into `head` etc. instead of tracebacking.
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

sys.exit(main())
