"""The no-defense baseline: every hook is a no-op.

Keeping "none" as a real registered plugin (rather than a special case
in scenario assembly) is the point of the registry — the undefended
network is one more row of the defense × attack matrix, not an if-branch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.defenses.base import Defense

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collector import MetricsReport


class NoDefense(Defense):
    """Undefended network (the paper's "without LITEWORP" arm)."""

    name = "none"
    config_cls = None
    description = "no protection; the undefended baseline"

    def detected(self, report: "MetricsReport") -> bool:
        return False
