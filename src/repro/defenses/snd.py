"""Secure neighbor discovery via time-of-flight handshakes (Poturalski
et al. style).

Rather than detecting a wormhole after the fact, this baseline refuses
to *admit* a link that cannot prove physical proximity.  Each honest
node challenges every candidate neighbor (ground-truth deployment
adjacency plus any transmitter it overhears); the peer must return an
authenticated response within ``response_window`` seconds, measured
from the instant the challenge actually hit the air (a channel
tx-observer timestamps it, so the challenger's own MAC queueing never
counts against the peer).

The window is sized between the honest handshake (one challenge air
time + one response air time on an idle medium, ≈ 13 ms at 40 kbps) and
the same exchange through a packet-relay wormhole, which must re-air
both frames (≥ +11 ms): relayed responses are *late*, high-power
attackers beyond real radio range are *unanswered*, and insiders
without proximity never verify.  After ``activate_time`` every honest
node drops frames from unverified transmitters, so fake links are never
usable for routing.  Genuine insider colluders with working radios do
verify — a time-of-flight check proves proximity, not honesty — which
is exactly the scope the literature gives these protocols
(docs/DEFENSES.md discusses it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Set, Tuple

from repro.crypto.auth import Authenticator
from repro.crypto.keys import KeyStore
from repro.defenses.base import Defense, DefenseContext
from repro.net.packet import Frame, NodeId, SndChallengePacket, SndResponsePacket

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collector import MetricsReport
    from repro.net.node import Node
    from repro.sim.engine import Simulator
    from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class SndConfig:
    """Tunables for time-of-flight neighbor verification.

    Attributes
    ----------
    start_time:
        When the first challenge round begins.
    rounds / round_interval:
        Scheduled verification rounds; a link that fails one round is
        retried in the next (verification is sticky once achieved).
    round_stagger:
        Each node offsets its rounds by a seed-derived uniform draw from
        this window, so the whole deployment does not challenge at once.
    challenge_spacing:
        Gap between successive challenges at one node, keeping its own
        MAC queue out of the measurement.
    response_window:
        Maximum seconds from challenge air-start to response arrival
        for the link to verify.
    answer_timeout:
        Seconds after which an outstanding challenge is declared
        unanswered.
    rechallenge_limit / rechallenge_interval:
        Budget and spacing for on-demand challenges of transmitters
        first heard after the admission filter is already active.
    grace:
        Slack between the end of the last scheduled round and
        ``activate_time``.
    """

    start_time: float = 1.0
    rounds: int = 4
    round_interval: float = 4.0
    round_stagger: float = 1.5
    challenge_spacing: float = 0.1
    response_window: float = 0.020
    answer_timeout: float = 0.6
    rechallenge_limit: int = 3
    rechallenge_interval: float = 2.0
    grace: float = 1.0

    def __post_init__(self) -> None:
        for name in ("start_time", "challenge_spacing", "grace", "round_stagger"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative, got {getattr(self, name)!r}")
        for name in ("round_interval", "response_window", "answer_timeout",
                     "rechallenge_interval"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)!r}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be at least 1, got {self.rounds!r}")
        if self.rechallenge_limit < 0:
            raise ValueError(
                f"rechallenge_limit must be non-negative, got {self.rechallenge_limit!r}"
            )
        if self.answer_timeout <= self.response_window:
            raise ValueError("answer_timeout must exceed response_window")

    @property
    def activate_time(self) -> float:
        """When the admission filter switches on."""
        return self.start_time + self.rounds * self.round_interval + self.grace


class SndResponder:
    """Response half of the handshake: answer challenges addressed to us.

    Runs on every node with legitimate keys — insiders included, since a
    captured node still holds its material and a working radio.
    """

    def __init__(self, node: "Node", keys: KeyStore) -> None:
        self._node = node
        self._keys = keys
        node.add_listener(self._respond)

    def _respond(self, frame: Frame) -> None:
        packet = frame.packet
        if not isinstance(packet, SndChallengePacket):
            return
        if packet.target != self._node.node_id:
            return
        if packet.sender == self._node.node_id:
            return  # a relayed copy of our own frame
        key = self._keys.key_with(packet.sender)
        if key is None:
            return
        auth = Authenticator.tag(
            key, "SND", packet.sender, self._node.node_id, packet.nonce
        )
        self._node.broadcast(
            SndResponsePacket(
                sender=self._node.node_id,
                target=packet.sender,
                nonce=packet.nonce,
                auth=auth,
            ),
            jitter=0.0,
        )


class SndAgent(SndResponder):
    """Challenger + admission filter running on one honest node."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        keys: KeyStore,
        config: SndConfig,
        trace: "TraceLog",
        rng: random.Random,
        candidates: Tuple[NodeId, ...] = (),
    ) -> None:
        super().__init__(node, keys)
        self._sim = sim
        self._config = config
        self._trace = trace
        self._rng = rng
        self._candidates: Set[NodeId] = set(candidates)
        self.verified: Set[NodeId] = set()
        self._challenged: Set[NodeId] = set()
        self._rejected_peers: Set[NodeId] = set()
        self._pending: Dict[int, NodeId] = {}
        self._air_times: Dict[int, float] = {}
        self._sent_times: Dict[int, float] = {}
        self._rechallenges: Dict[NodeId, int] = {}
        self._last_rechallenge: Dict[NodeId, float] = {}
        self._nonce = 0
        self.frames_blocked = 0
        self.responses_late = 0
        self.responses_unanswered = 0
        self.responses_bad_auth = 0
        self.challenges_sent = 0
        node.add_observer(self._observe)
        node.add_filter(self._filter)
        node.add_listener(self._on_response)
        stagger = rng.uniform(0.0, config.round_stagger)
        for round_index in range(config.rounds):
            sim.schedule(
                config.start_time + round_index * config.round_interval + stagger,
                self._round,
            )

    # -- tx-observer callback (wired by the plugin's prepare) ----------
    def note_air(self, nonce: int, time: float) -> None:
        """Record when our own challenge actually hit the air."""
        self._air_times.setdefault(nonce, time)

    # -- candidate discovery -------------------------------------------
    def _observe(self, frame: Frame) -> None:
        transmitter = frame.transmitter
        if transmitter == self._node.node_id:
            return
        if transmitter not in self._candidates:
            self._candidates.add(transmitter)
            if self._sim.now >= self._config.activate_time:
                self._maybe_rechallenge(transmitter)

    # -- challenging ---------------------------------------------------
    def _round(self) -> None:
        if not self._node.alive:
            return
        targets = sorted(self._candidates - self.verified)
        for index, peer in enumerate(targets):
            self._sim.schedule(
                index * self._config.challenge_spacing, self._challenge, peer
            )

    def _maybe_rechallenge(self, peer: NodeId) -> None:
        if peer == self._node.node_id:
            return
        config = self._config
        used = self._rechallenges.get(peer, 0)
        if used >= config.rechallenge_limit:
            return
        last = self._last_rechallenge.get(peer)
        if last is not None and self._sim.now - last < config.rechallenge_interval:
            return
        self._rechallenges[peer] = used + 1
        self._last_rechallenge[peer] = self._sim.now
        self._challenge(peer)

    def _challenge(self, peer: NodeId) -> None:
        if not self._node.alive or peer in self.verified:
            return
        self._nonce += 1
        nonce = self._nonce
        packet = SndChallengePacket(
            sender=self._node.node_id, target=peer, nonce=nonce
        )
        # Broadcast: no link-layer ARQ, so the challenge airs exactly
        # once and the tx-observer timestamp is unambiguous.
        if not self._node.broadcast(packet, jitter=0.0):
            return
        self.challenges_sent += 1
        self._challenged.add(peer)
        self._pending[nonce] = peer
        self._sent_times[nonce] = self._sim.now
        self._sim.schedule(self._config.answer_timeout, self._expire, nonce)

    def _expire(self, nonce: int) -> None:
        peer = self._pending.pop(nonce, None)
        self._air_times.pop(nonce, None)
        self._sent_times.pop(nonce, None)
        if peer is None or peer in self.verified:
            return
        self.responses_unanswered += 1
        self._trace.emit(
            self._sim.now, "snd_link_rejected", node=self._node.node_id,
            peer=peer, reason="unanswered",
        )

    # -- verification --------------------------------------------------
    def _on_response(self, frame: Frame) -> None:
        packet = frame.packet
        if not isinstance(packet, SndResponsePacket):
            return
        if packet.target != self._node.node_id:
            return
        peer = self._pending.get(packet.nonce)
        if peer is None or packet.sender != peer:
            return
        now = self._sim.now
        config = self._config
        started = self._air_times.get(packet.nonce, self._sent_times[packet.nonce])
        elapsed = now - started
        key = self._keys.key_with(peer)
        if not Authenticator.verify(
            key, packet.auth, "SND", self._node.node_id, peer, packet.nonce
        ):
            self._pending.pop(packet.nonce, None)
            self.responses_bad_auth += 1
            self._trace.emit(
                now, "snd_link_rejected", node=self._node.node_id,
                peer=peer, reason="auth",
            )
            return
        self._pending.pop(packet.nonce, None)
        self._air_times.pop(packet.nonce, None)
        self._sent_times.pop(packet.nonce, None)
        if elapsed <= config.response_window:
            self.verified.add(peer)
            self._trace.emit(
                now, "snd_link_verified", node=self._node.node_id,
                peer=peer, elapsed=elapsed,
            )
        else:
            self.responses_late += 1
            self._trace.emit(
                now, "snd_link_rejected", node=self._node.node_id,
                peer=peer, reason="late", elapsed=elapsed,
            )

    # -- admission -----------------------------------------------------
    def _filter(self, frame: Frame) -> bool:
        if self._sim.now < self._config.activate_time:
            return True
        packet = frame.packet
        if isinstance(packet, (SndChallengePacket, SndResponsePacket)):
            return True  # the handshake itself must always flow
        transmitter = frame.transmitter
        if transmitter == self._node.node_id:
            return True  # a wormhole echoing our own frames back at us
        if transmitter in self.verified:
            return True
        self.frames_blocked += 1
        self._trace.emit(
            self._sim.now, "frame_rejected", node=self._node.node_id,
            reason="snd_unverified", **frame.describe(),
        )
        if transmitter not in self._rejected_peers:
            self._rejected_peers.add(transmitter)
            self._trace.emit(
                self._sim.now, "snd_link_rejected", node=self._node.node_id,
                peer=transmitter, reason="unverified",
            )
        self._maybe_rechallenge(transmitter)
        return False

    @property
    def counters(self) -> Dict[str, int]:
        """Protocol counters for ``MetricsReport.node_counters``."""
        return {
            "snd_challenges_sent": self.challenges_sent,
            "snd_links_verified": len(self.verified),
            "snd_links_unverified": len(self._challenged - self.verified),
            "snd_responses_late": self.responses_late,
            "snd_responses_unanswered": self.responses_unanswered,
            "snd_responses_bad_auth": self.responses_bad_auth,
            "snd_frames_blocked": self.frames_blocked,
        }


class SndDefense(Defense):
    """Time-of-flight verified neighbor admission."""

    name = "snd"
    config_cls = SndConfig
    description = "secure neighbor discovery: time-of-flight verified links"

    def default_config(self) -> SndConfig:
        return SndConfig()

    def prepare(self, ctx: DefenseContext) -> None:
        agents: Dict[NodeId, SndAgent] = {}
        ctx.state["snd_agents"] = agents

        def on_transmit(sender: NodeId, frame: Frame, time: float) -> None:
            packet = frame.packet
            # Only the original airing counts: a relayed copy keeps the
            # challenger in packet.sender but is aired by someone else.
            if isinstance(packet, SndChallengePacket) and sender == packet.sender:
                agent = agents.get(sender)
                if agent is not None:
                    agent.note_air(packet.nonce, time)

        ctx.network.channel.add_tx_observer(on_transmit)

    def attach_honest(self, node: "Node", sim: "Simulator", ctx: DefenseContext) -> None:
        agent = SndAgent(
            sim,
            node,
            ctx.keys.enroll(node.node_id),
            ctx.plugin_config,
            ctx.trace,
            rng=ctx.node_stream("snd", node.node_id),
            candidates=ctx.adjacency.get(node.node_id, ()),
        )
        ctx.state["snd_agents"][node.node_id] = agent

    def attach_insider(self, node: "Node", sim: "Simulator", ctx: DefenseContext) -> None:
        # A captured node keeps its keys and a working radio; refusing to
        # answer would just get its links rejected everywhere.
        SndResponder(node, ctx.keys.enroll(node.node_id))

    def node_counters(self, ctx: DefenseContext) -> Dict[NodeId, Dict[str, int]]:
        agents = ctx.state.get("snd_agents", {})
        return {node_id: dict(agent.counters) for node_id, agent in agents.items()}

    def metrics_contribution(self, report: "MetricsReport", config: Any) -> Dict[str, float]:
        def total(counter: str) -> float:
            return float(sum(
                counters.get(counter, 0)
                for counters in report.node_counters.values()
            ))

        return {
            "links_verified": total("snd_links_verified"),
            "links_unverified": total("snd_links_unverified"),
            "frames_blocked": total("snd_frames_blocked"),
        }

    def detected(self, report: "MetricsReport") -> bool:
        return any(
            counters.get("snd_links_unverified", 0) > 0
            for counters in report.node_counters.values()
        )
