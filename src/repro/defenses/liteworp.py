"""LITEWORP as a defense plugin (the paper's own scheme).

Honest nodes run the full :class:`~repro.core.agent.LiteworpAgent`
composition — guard monitoring, legitimacy filters, θ-quorum isolation —
and wire into routing so revoked neighbors become unusable.  Insider
nodes participate in neighbor discovery when the oracle is off (they are
compromised only after the paper's compromise-threshold time, so honest
tables must include them).  The wiring here is a line-for-line port of
the pre-registry ``scenario.py`` ladder: same construction order, same
RNG stream names, byte-identical reports (a pinned test holds it to
that).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.defenses.base import Defense, DefenseContext
from repro.net.packet import NodeId

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collector import MetricsReport
    from repro.net.node import Node
    from repro.routing.ondemand import OnDemandRouting
    from repro.sim.engine import Simulator


class LiteworpDefense(Defense):
    """Guard-based local monitoring with local + distributed isolation."""

    name = "liteworp"
    config_cls = LiteworpConfig
    description = "LITEWORP guard monitoring, MalC accusations, θ-quorum isolation"

    def default_config(self) -> None:
        # The block lives on ScenarioConfig.liteworp (and always has);
        # a spec-level block overrides it when present.
        return None

    def prepare(self, ctx: DefenseContext) -> None:
        ctx.state["liteworp_config"] = (
            ctx.plugin_config if ctx.plugin_config is not None else ctx.config.liteworp
        )

    def attach_honest(self, node: "Node", sim: "Simulator", ctx: DefenseContext) -> None:
        agent = LiteworpAgent(
            sim,
            node,
            ctx.keys.enroll(node.node_id),
            ctx.state["liteworp_config"],
            ctx.trace,
            rng=ctx.node_stream("liteworp", node.node_id),
        )
        ctx.agents[node.node_id] = agent
        ctx.network.channel.attach_loss_handler(
            node.node_id, agent.monitor.note_reception_loss
        )

    def attach_insider(self, node: "Node", sim: "Simulator", ctx: DefenseContext) -> None:
        if ctx.config.oracle_neighbors:
            return
        # Insider nodes are compromised only after the compromise
        # threshold time T_CT: during discovery they participate like
        # everyone else (reply to HELLOs, broadcast their neighbor list)
        # so honest tables include them.
        from repro.core.discovery import NeighborDiscovery
        from repro.core.tables import NeighborTable

        NeighborDiscovery(
            sim,
            node,
            NeighborTable(node.node_id),
            ctx.keys.enroll(node.node_id),
            ctx.state["liteworp_config"],
            ctx.trace,
            ctx.node_stream("liteworp", node.node_id),
        ).start()

    def attach_router(
        self, node_id: NodeId, router: "OnDemandRouting", ctx: DefenseContext
    ) -> None:
        ctx.agents[node_id].attach_router(router)

    def finalize(self, ctx: DefenseContext) -> None:
        for _, agent in ctx.agents.items():
            if ctx.config.oracle_neighbors:
                agent.install_oracle(ctx.adjacency)
            else:
                agent.start_discovery()

    def node_counters(self, ctx: DefenseContext) -> Dict[NodeId, Dict[str, int]]:
        from repro.obs.counters import snapshot_counters

        return snapshot_counters(ctx.agents)

    def metrics_contribution(self, report: "MetricsReport", config: Any) -> Dict[str, float]:
        alerts = sum(
            counters.get("alerts_sent", 0)
            for counters in report.node_counters.values()
        )
        rejects = sum(
            counters.get("reject_nonneighbor", 0)
            + counters.get("reject_revoked", 0)
            + counters.get("reject_secondhop", 0)
            for counters in report.node_counters.values()
        )
        return {"alerts_sent": float(alerts), "frames_rejected": float(rejects)}
