"""RTT-based statistical wormhole detector (Buch & Jinwala style).

Each honest node periodically probes every transmitter it has overheard
and measures the request/echo round-trip time.  A packet-relay wormhole
cannot shorten the physics: every relayed leg adds a full frame air time,
so the RTT of a *fake* link sits well above the population of genuine
one-hop links.  Two signals flag a peer:

- ``rtt`` — the peer's median RTT exceeds ``alpha`` × the median of all
  per-peer medians (and an absolute floor, so a uniformly fast
  neighborhood is never flagged);
- ``timeouts`` — ``max_misses`` consecutive probes went unanswered,
  which catches the high-power attacker: its long-range transmissions
  make it look like a neighbor, but it is too far away to hear a
  normal-power probe.

A flagged peer is blocked at the receive filter and accused via a
``guard_detection`` trace record.  Note the attribution caveat: a
transparent packet-relay attacker spoofs the victims' link-layer
headers, so the *flagged* peer of a relayed link is the honest far-end
victim — the detector fires (the fake link dies), but the accusation
lands on the spoofed identity, which the metrics report as a false
isolation.  Tunnel modes (out-of-band, encapsulation) re-originate
frames from real colluders with genuine radios and fast echoes; RTT
cannot see those, by design (docs/DEFENSES.md discusses the scope).
"""

from __future__ import annotations

import random
import statistics
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Deque, Dict, Set

from repro.defenses.base import Defense, DefenseContext
from repro.net.packet import Frame, NodeId, RttEchoPacket, RttProbePacket

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collector import MetricsReport
    from repro.net.node import Node
    from repro.sim.engine import Simulator
    from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class RttConfig:
    """Tunables for the RTT detector.

    Attributes
    ----------
    start_time:
        When probing begins (after neighbor discovery settles).
    probe_interval:
        Seconds between probe rounds at each node.
    round_jitter:
        Fresh uniform slack added to every inter-round gap, so two
        neighbors whose rounds once collided do not collide every round
        (phase-locked collisions masquerade as dead links).
    probe_spacing:
        Gap between successive probes within one round, so a node's own
        MAC queue never inflates the measurement of later targets.
    timeout:
        Seconds after which an unanswered probe counts as a miss.
    sample_window:
        Per-peer ring of retained RTT samples (median over these).
    min_samples:
        Samples required before a peer's median participates.
    min_population:
        Distinct measurable peers required before the statistical test
        runs at all (a lone link has no population to stand out from).
    alpha:
        Relative threshold: flag when median > alpha × population median.
    min_rtt_floor:
        Absolute threshold floor in seconds; both must be exceeded.
    max_misses:
        Consecutive unanswered probes that flag a peer outright.
    """

    start_time: float = 5.0
    probe_interval: float = 6.0
    round_jitter: float = 1.0
    probe_spacing: float = 0.2
    timeout: float = 0.5
    sample_window: int = 8
    min_samples: int = 6
    min_population: int = 3
    alpha: float = 1.8
    min_rtt_floor: float = 0.02
    max_misses: int = 5

    def __post_init__(self) -> None:
        for name in ("start_time", "probe_spacing", "round_jitter"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative, got {getattr(self, name)!r}")
        for name in ("probe_interval", "timeout", "alpha", "min_rtt_floor"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)!r}")
        for name in ("sample_window", "min_samples", "min_population", "max_misses"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1, got {getattr(self, name)!r}")
        if self.min_samples > self.sample_window:
            raise ValueError("min_samples cannot exceed sample_window")


class RttResponder:
    """Echo half of the protocol: reply to probes addressed to us.

    Runs on every node — including insiders, whose radios genuinely work;
    a tunnel endpoint answering probes promptly is exactly why RTT cannot
    expose tunnels.
    """

    def __init__(self, node: "Node") -> None:
        self._node = node
        node.add_listener(self._on_frame)

    def _on_frame(self, frame: Frame) -> None:
        packet = frame.packet
        if not isinstance(packet, RttProbePacket):
            return
        if packet.target != self._node.node_id:
            return
        if packet.sender == self._node.node_id:
            return  # a relayed copy of our own frame
        # Broadcast: no link-layer ARQ, so the echo airs exactly once and
        # the measured round trip is pure medium + turnaround time.
        self._node.broadcast(
            RttEchoPacket(
                sender=self._node.node_id, target=packet.sender, nonce=packet.nonce
            ),
            jitter=0.0,
        )


class RttAgent(RttResponder):
    """Prober + statistical detector running on one honest node."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        config: RttConfig,
        trace: "TraceLog",
        rng: random.Random,
    ) -> None:
        super().__init__(node)
        self._sim = sim
        self._config = config
        self._trace = trace
        self._rng = rng
        self._peers: Set[NodeId] = set()
        self._samples: Dict[NodeId, Deque[float]] = {}
        self._misses: Dict[NodeId, int] = {}
        self._pending: Dict[int, tuple] = {}
        self._air_times: Dict[int, float] = {}
        self._nonce = 0
        self.blocked: Set[NodeId] = set()
        self.counters: Dict[str, int] = {
            "rtt_probes_sent": 0,
            "rtt_samples": 0,
            "rtt_links_flagged": 0,
            "rtt_frames_blocked": 0,
        }
        node.add_observer(self._observe)
        node.add_filter(self._filter)
        node.add_listener(self._on_echo)
        sim.schedule(
            config.start_time + rng.uniform(0.0, config.probe_interval), self._round
        )

    # -- peer discovery (promiscuous) ----------------------------------
    def _observe(self, frame: Frame) -> None:
        transmitter = frame.transmitter
        if transmitter != self._node.node_id:
            self._peers.add(transmitter)

    # -- probing -------------------------------------------------------
    def _round(self) -> None:
        if self._node.alive:
            targets = sorted(self._peers - self.blocked)
            for index, peer in enumerate(targets):
                self._sim.schedule(index * self._config.probe_spacing, self._probe, peer)
        self._sim.schedule(
            self._config.probe_interval
            + self._rng.uniform(0.0, self._config.round_jitter),
            self._round,
        )

    def _probe(self, peer: NodeId) -> None:
        if not self._node.alive or peer in self.blocked:
            return
        self._nonce += 1
        nonce = self._nonce
        packet = RttProbePacket(sender=self._node.node_id, target=peer, nonce=nonce)
        # Broadcast: unicast ARQ would re-air the probe on a lost first
        # attempt and poison the sample with retry backoffs.
        if not self._node.broadcast(packet, jitter=0.0):
            return
        self.counters["rtt_probes_sent"] += 1
        self._pending[nonce] = (peer, self._sim.now)
        self._sim.schedule(self._config.timeout, self._expire, nonce)

    def note_air(self, nonce: int, time: float) -> None:
        """Record when our own probe actually hit the air (wired through
        the plugin's channel tx-observer), so our MAC queueing never
        counts against the peer being measured."""
        self._air_times.setdefault(nonce, time)

    def _expire(self, nonce: int) -> None:
        entry = self._pending.pop(nonce, None)
        self._air_times.pop(nonce, None)
        if entry is None:
            return
        peer, _ = entry
        misses = self._misses.get(peer, 0) + 1
        self._misses[peer] = misses
        if misses >= self._config.max_misses and peer not in self.blocked:
            self._flag(peer, "timeouts", misses=misses)

    # -- echo handling + statistics ------------------------------------
    def _on_echo(self, frame: Frame) -> None:
        packet = frame.packet
        if not isinstance(packet, RttEchoPacket) or packet.target != self._node.node_id:
            return
        entry = self._pending.get(packet.nonce)
        if entry is None:
            return
        peer, sent_at = entry
        if packet.sender != peer:
            return
        self._pending.pop(packet.nonce, None)
        started = self._air_times.pop(packet.nonce, sent_at)
        window = self._samples.setdefault(
            peer, deque(maxlen=self._config.sample_window)
        )
        window.append(self._sim.now - started)
        self._misses[peer] = 0
        self.counters["rtt_samples"] += 1
        self._evaluate()

    def _evaluate(self) -> None:
        config = self._config
        medians = {
            peer: statistics.median(window)
            for peer, window in self._samples.items()
            if len(window) >= config.min_samples and peer not in self.blocked
        }
        if len(medians) < config.min_population:
            return
        population = statistics.median(medians.values())
        threshold = max(config.alpha * population, config.min_rtt_floor)
        for peer, median in sorted(medians.items()):
            if median > threshold:
                self._flag(peer, "rtt", rtt=median, baseline=population)

    def _flag(self, peer: NodeId, reason: str, **extra: Any) -> None:
        self.blocked.add(peer)
        self.counters["rtt_links_flagged"] += 1
        now = self._sim.now
        self._trace.emit(
            now, "rtt_link_flagged", node=self._node.node_id, peer=peer,
            reason=reason, **extra,
        )
        self._trace.emit(now, "guard_detection", guard=self._node.node_id, accused=peer)

    # -- admission -----------------------------------------------------
    def _filter(self, frame: Frame) -> bool:
        if frame.transmitter in self.blocked:
            self.counters["rtt_frames_blocked"] += 1
            self._trace.emit(
                self._sim.now, "frame_rejected", node=self._node.node_id,
                reason="rtt_flagged", **frame.describe(),
            )
            return False
        return True


class RttDefense(Defense):
    """Round-trip-time statistics over overheard links."""

    name = "rtt"
    config_cls = RttConfig
    description = "RTT probing with population-median outlier + timeout detection"

    def default_config(self) -> RttConfig:
        return RttConfig()

    def prepare(self, ctx: DefenseContext) -> None:
        agents: Dict[NodeId, RttAgent] = {}
        ctx.state["rtt_agents"] = agents

        def on_transmit(sender: NodeId, frame: Frame, time: float) -> None:
            packet = frame.packet
            # Only the original airing counts: a relayed copy keeps the
            # prober in packet.sender but is aired by someone else.
            if isinstance(packet, RttProbePacket) and sender == packet.sender:
                agent = agents.get(sender)
                if agent is not None:
                    agent.note_air(packet.nonce, time)

        ctx.network.channel.add_tx_observer(on_transmit)

    def attach_honest(self, node: "Node", sim: "Simulator", ctx: DefenseContext) -> None:
        agent = RttAgent(
            sim, node, ctx.plugin_config, ctx.trace,
            rng=ctx.node_stream("rtt", node.node_id),
        )
        ctx.state["rtt_agents"][node.node_id] = agent

    def attach_insider(self, node: "Node", sim: "Simulator", ctx: DefenseContext) -> None:
        # A compromised node still answers probes — looking unreachable
        # would flag it instantly, and its radio genuinely works.
        RttResponder(node)

    def node_counters(self, ctx: DefenseContext) -> Dict[NodeId, Dict[str, int]]:
        agents = ctx.state.get("rtt_agents", {})
        return {node_id: dict(agent.counters) for node_id, agent in agents.items()}

    def metrics_contribution(self, report: "MetricsReport", config: Any) -> Dict[str, float]:
        flagged = sum(
            counters.get("rtt_links_flagged", 0)
            for counters in report.node_counters.values()
        )
        probes = sum(
            counters.get("rtt_probes_sent", 0)
            for counters in report.node_counters.values()
        )
        return {"links_flagged": float(flagged), "probes_sent": float(probes)}
