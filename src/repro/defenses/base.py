"""The defense plugin protocol.

A *defense* is everything a protection scheme needs to exist inside one
scenario: per-node wiring on honest and insider (captured) nodes, hooks
into routing, bootstrap finalisation, and a metrics surface.  The four
schemes the reproduction grew up with (LITEWORP itself, the two packet
leashes, and "none") are plugins like any other; third-party schemes
register through :func:`repro.defenses.register_defense` and become
selectable as ``ScenarioConfig(defense=...)`` values with no scenario
code changes.

Two contracts matter:

- **Statelessness** — one :class:`Defense` instance serves every run of
  that scheme, concurrently.  All per-run state lives on the
  :class:`DefenseContext`; a plugin that caches anything on ``self``
  will corrupt parallel sweeps.
- **Determinism** — any randomness must come from named streams of
  ``ctx.rng`` (:class:`~repro.sim.rng.RngRegistry`), keyed by node id
  (e.g. ``f"rtt:{node_id}"``), so results depend only on the seed, never
  on construction order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, Mapping, Optional, Tuple

from repro.net.packet import NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.crypto.keys import PairwiseKeyManager
    from repro.metrics.collector import MetricsReport
    from repro.net.network import Network
    from repro.net.node import Node
    from repro.net.topology import Topology
    from repro.routing.ondemand import OnDemandRouting
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngRegistry
    from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class DefenseSpec:
    """Which defense to run, plus its per-defense config block.

    ``ScenarioConfig.defense`` accepts a bare string (``"liteworp"``), a
    ``DefenseSpec``, or a mapping (``{"name": "rtt", "config": {...}}``);
    all three coerce here.  ``config=None`` means "the plugin's default"
    — for the legacy schemes that is the matching ``ScenarioConfig``
    field (``.liteworp`` / ``.leash``), for new plugins it is the
    default-constructed ``config_cls``.

    The spec is a dataclass field of :class:`ScenarioConfig`, so the
    plugin's config block participates in
    :func:`repro.experiments.cache.config_digest` — two runs of
    different plugins (or the same plugin under different tunings) can
    never collide in the result cache.
    """

    name: str
    config: Any = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"defense name must be a non-empty string, got {self.name!r}")

    @classmethod
    def coerce(cls, value: Any) -> "DefenseSpec":
        """Normalise ``str | Mapping | DefenseSpec`` into a spec."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            extra = set(value) - {"name", "config"}
            if extra:
                raise ValueError(
                    f"defense mapping has unknown key(s) {sorted(extra)}; "
                    "expected {'name', 'config'}"
                )
            if "name" not in value:
                raise ValueError("defense mapping needs a 'name'")
            return cls(name=str(value["name"]), config=value.get("config"))
        raise ValueError(
            "defense must be a name, a DefenseSpec, or a {'name', 'config'} "
            f"mapping, got {type(value).__name__}"
        )


@dataclass
class DefenseContext:
    """Everything a defense may touch while wiring one scenario.

    Built once per run by ``build_scenario`` and threaded through every
    hook; ``state`` is the plugin's per-run scratch space (derived
    configs, per-node agents, shared observers).  ``agents`` and
    ``leash_agents`` are the dictionaries the :class:`Scenario` dataclass
    exposes — the LITEWORP and leash plugins populate them so existing
    callers keep their handles on the live objects.
    """

    config: Any  # ScenarioConfig (untyped to avoid an import cycle)
    spec: DefenseSpec
    plugin_config: Any
    sim: "Simulator"
    network: "Network"
    topology: "Topology"
    adjacency: Dict[NodeId, Tuple[NodeId, ...]]
    trace: "TraceLog"
    rng: "RngRegistry"
    keys: "PairwiseKeyManager"
    malicious: FrozenSet[NodeId]
    agents: Dict[NodeId, Any] = field(default_factory=dict)
    leash_agents: Dict[NodeId, Any] = field(default_factory=dict)
    state: Dict[str, Any] = field(default_factory=dict)

    def node_stream(self, prefix: str, node_id: NodeId) -> random.Random:
        """The named per-node RNG stream ``f"{prefix}:{node_id}"``."""
        return self.rng.stream(f"{prefix}:{node_id}")


class Defense:
    """Base class every defense plugin extends.

    Subclasses override the hooks they need; every default is a no-op,
    so a minimal plugin is just a ``name`` (the "none" plugin overrides
    nothing at all).  Hook order per scenario build::

        resolve_config(spec.config)      # validate the config block
        prepare(ctx)                     # once, before the node loop
        per node, in node-id order:
            attach_insider(node, sim, ctx)   # malicious nodes (router exists)
            attach_honest(node, sim, ctx)    # honest nodes (before router)
            attach_router(node_id, router, ctx)  # honest nodes, after router
        finalize(ctx)                    # once, after the node loop

    and at report time::

        node_counters(ctx)               # -> MetricsReport.node_counters
        metrics_contribution(report, config)  # matrix-report extras
        detected(report)                 # did this run raise the alarm?
    """

    #: Registry key and ``ScenarioConfig(defense=...)`` value.
    name: str = ""
    #: Dataclass type of the per-defense config block (None: no block).
    config_cls: Optional[type] = None
    #: One-line human description (shown by ``repro matrix`` and docs).
    description: str = ""

    # ------------------------------------------------------------------
    # Config validation
    # ------------------------------------------------------------------
    def validate(self, config: Any) -> Any:
        """Check an already-typed config block; return it (or a
        normalised copy).  Raise ``ValueError`` on bad parameters."""
        return config

    def resolve_config(self, config: Any) -> Any:
        """Coerce the spec's config block into this plugin's config type.

        ``None`` stays ``None`` when the plugin declares no
        ``config_cls`` or sources its defaults elsewhere (the legacy
        schemes read ``ScenarioConfig.liteworp`` / ``.leash``); otherwise
        it default-constructs.  Mappings construct ``config_cls(**...)``.
        """
        if config is None:
            return self.validate(self.default_config())
        if self.config_cls is None:
            raise ValueError(
                f"defense {self.name!r} takes no config block, got {config!r}"
            )
        if isinstance(config, Mapping):
            try:
                config = self.config_cls(**config)
            except TypeError as exc:
                raise ValueError(
                    f"bad config for defense {self.name!r}: {exc}"
                ) from exc
        if not isinstance(config, self.config_cls):
            raise ValueError(
                f"defense {self.name!r} expects a {self.config_cls.__name__} "
                f"config block, got {type(config).__name__}"
            )
        return self.validate(config)

    def default_config(self) -> Any:
        """The config used when the spec carries none.  The legacy
        schemes return ``None`` here (their block lives on
        :class:`ScenarioConfig` itself, where it always has)."""
        return None

    # ------------------------------------------------------------------
    # Scenario wiring hooks
    # ------------------------------------------------------------------
    def prepare(self, ctx: DefenseContext) -> None:
        """Called once before the per-node loop."""

    def attach_honest(self, node: "Node", sim: "Simulator", ctx: DefenseContext) -> None:
        """Wire the defense onto an honest node (its router does not
        exist yet; use :meth:`attach_router` for routing hooks)."""

    def attach_insider(self, node: "Node", sim: "Simulator", ctx: DefenseContext) -> None:
        """Wire the defense onto a malicious (insider) node — whatever a
        compromised-but-undetected node would still run."""

    def attach_router(
        self, node_id: NodeId, router: "OnDemandRouting", ctx: DefenseContext
    ) -> None:
        """Called for honest nodes after their routing agent exists."""

    def finalize(self, ctx: DefenseContext) -> None:
        """Called once after every node is wired (bootstrap kick-off)."""

    # ------------------------------------------------------------------
    # Metrics surface
    # ------------------------------------------------------------------
    def node_counters(self, ctx: DefenseContext) -> Dict[NodeId, Dict[str, int]]:
        """Per-node protocol counters for ``MetricsReport.node_counters``."""
        return {}

    def metrics_contribution(self, report: "MetricsReport", config: Any) -> Dict[str, float]:
        """Defense-specific scalar metrics for the matrix report (e.g.
        overhead bytes, links flagged).  Keys are plugin-defined."""
        return {}

    def detected(self, report: "MetricsReport") -> bool:
        """Whether this run's report shows the defense raised the alarm.
        Default: any guard detection.  Plugins whose signal lives in
        their own counters override this."""
        return report.detections > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Defense {self.name!r}>"
