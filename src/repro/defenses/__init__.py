"""Defense plugin registry and the built-in schemes.

``ScenarioConfig(defense=...)`` resolves through this package: the four
schemes the reproduction grew up with (``liteworp``, ``geo_leash``,
``temporal_leash``, ``none``) plus the two literature baselines added
with the registry (``rtt``, ``snd``) register here at import time.
Third-party schemes subclass :class:`Defense` and call
:func:`register_defense`; see docs/DEFENSES.md for the full protocol.
"""

from __future__ import annotations

from repro.defenses.base import Defense, DefenseContext, DefenseSpec
from repro.defenses.leash import GeoLeashDefense, TemporalLeashDefense
from repro.defenses.liteworp import LiteworpDefense
from repro.defenses.null import NoDefense
from repro.defenses.registry import (
    available_defenses,
    get_defense,
    register_defense,
    unregister_defense,
)
from repro.defenses.rtt import RttConfig, RttDefense
from repro.defenses.snd import SndConfig, SndDefense

register_defense(LiteworpDefense())
register_defense(GeoLeashDefense())
register_defense(TemporalLeashDefense())
register_defense(NoDefense())
register_defense(RttDefense())
register_defense(SndDefense())

__all__ = [
    "Defense",
    "DefenseContext",
    "DefenseSpec",
    "GeoLeashDefense",
    "LiteworpDefense",
    "NoDefense",
    "RttConfig",
    "RttDefense",
    "SndConfig",
    "SndDefense",
    "TemporalLeashDefense",
    "available_defenses",
    "get_defense",
    "register_defense",
    "unregister_defense",
]
