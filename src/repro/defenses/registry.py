"""The defense registry: name -> :class:`~repro.defenses.base.Defense`.

Plugins register at import time (the built-ins do so from
``repro.defenses.__init__``); third-party code calls
:func:`register_defense` before building scenarios.  Lookup failures
list what *is* registered, so a typo'd ``defense=`` fails with the valid
vocabulary in the message.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.defenses.base import Defense

_REGISTRY: Dict[str, Defense] = {}


def register_defense(defense: Defense, replace: bool = False) -> Defense:
    """Add ``defense`` to the registry under its ``name``.

    Registering a name that is already taken raises unless ``replace``
    is set (tests and third-party overrides use it deliberately).
    """
    name = defense.name
    if not name or not isinstance(name, str):
        raise ValueError(f"defense must declare a non-empty string name, got {name!r}")
    if name == "auto":
        raise ValueError("'auto' is reserved for ScenarioConfig defense resolution")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"defense {name!r} is already registered "
            f"({_REGISTRY[name]!r}); pass replace=True to override"
        )
    _REGISTRY[name] = defense
    return defense


def unregister_defense(name: str) -> None:
    """Remove a registered defense (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_defense(name: str) -> Defense:
    """The registered defense called ``name``.

    Raises ``ValueError`` naming the available defenses on a miss.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown defense {name!r}; available: {available_defenses()}"
        ) from None


def available_defenses() -> Tuple[str, ...]:
    """Every registered defense name, sorted."""
    return tuple(sorted(_REGISTRY))
