"""Packet leashes (Hu, Perrig, Johnson) as defense plugins.

Two registrations share one implementation: ``geo_leash`` binds the
geographic leash, ``temporal_leash`` the temporal one.  Honest nodes
stamp at the radio and verify incoming frames; insider attackers stamp
truthfully but never verify — leashing their own transmissions is
exactly how they evade the scheme (see :mod:`repro.baselines.leashes`).

The effective :class:`~repro.baselines.leashes.LeashConfig` is derived
once per run in :meth:`prepare`: the plugin pins ``kind`` to its own
flavour and inherits ``comm_range`` / ``bandwidth_bps`` from the
scenario, exactly like the pre-registry ladder did.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Dict

from repro.baselines.leashes import LeashAgent, LeashConfig
from repro.defenses.base import Defense, DefenseContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collector import MetricsReport
    from repro.net.node import Node
    from repro.sim.engine import Simulator


class LeashDefense(Defense):
    """Shared wiring for both leash flavours."""

    config_cls = LeashConfig
    #: ``LeashConfig.kind`` this registration enforces.
    kind = "geographic"

    def default_config(self) -> None:
        # The block lives on ScenarioConfig.leash (and always has); a
        # spec-level block overrides it when present.
        return None

    def prepare(self, ctx: DefenseContext) -> None:
        base = ctx.plugin_config if ctx.plugin_config is not None else ctx.config.leash
        ctx.state["leash_config"] = replace(
            base,
            kind=self.kind,
            comm_range=ctx.config.tx_range,
            bandwidth_bps=ctx.config.network.bandwidth_bps,
        )

    def attach_honest(self, node: "Node", sim: "Simulator", ctx: DefenseContext) -> None:
        agent = LeashAgent(
            sim, node, ctx.network.radio, ctx.state["leash_config"], ctx.trace
        )
        ctx.leash_agents[node.node_id] = agent
        ctx.network.channel.set_frame_stamper(node.node_id, agent.stamp)

    def attach_insider(self, node: "Node", sim: "Simulator", ctx: DefenseContext) -> None:
        # Insider attackers run the leash protocol too: leashing their
        # own transmissions truthfully is exactly how they evade the
        # scheme.  Attackers stamp but never reject (a filter would only
        # protect them, and their behaviour stays unconstrained).
        insider = LeashAgent(
            sim, node, ctx.network.radio, ctx.state["leash_config"], ctx.trace,
            verify_incoming=False,
        )
        ctx.network.channel.set_frame_stamper(node.node_id, insider.stamp)

    def metrics_contribution(self, report: "MetricsReport", config: Any) -> Dict[str, float]:
        block = config if isinstance(config, LeashConfig) else LeashConfig()
        bytes_per_frame = (
            replace(block, kind=self.kind).leash_bytes
        )
        return {"leash_bytes_per_frame": float(bytes_per_frame)}


class GeoLeashDefense(LeashDefense):
    """Authenticated (position, send time) stamp; distance-bound check."""

    name = "geo_leash"
    kind = "geographic"
    description = "geographic packet leash (authenticated position + time stamp)"


class TemporalLeashDefense(LeashDefense):
    """Authenticated send-time stamp; packet-age bound check."""

    name = "temporal_leash"
    kind = "temporal"
    description = "temporal packet leash (authenticated send-time stamp)"
