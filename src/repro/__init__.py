"""repro — a full reproduction of LITEWORP (DSN 2005).

LITEWORP is a lightweight countermeasure for the wormhole attack in
multihop wireless networks (Khalil, Bagchi, Shroff).  This package
contains the protocol itself (:mod:`repro.core`), every substrate it needs
(discrete-event simulator, wireless network, crypto, routing, traffic),
the five wormhole attack modes (:mod:`repro.attacks`), the closed-form
coverage and cost analysis (:mod:`repro.analysis`), and the experiment
harness regenerating the paper's tables and figures
(:mod:`repro.experiments`).

Downstream code should reach for the stable facade in :mod:`repro.api`
(``run`` / ``sweep`` / ``campaign`` / ``report``) rather than deep-import
the experiment internals.

Quickstart
----------
>>> from repro import api
>>> report = api.run(n_nodes=30, duration=120.0, seed=7)
>>> report.wormhole_drops >= 0
True
"""

from repro.analysis import CostModel, CoverageParams, detection_probability
from repro.attacks import ATTACK_MODES, WormholeCoordinator, taxonomy_table
from repro.baselines import LeashAgent, LeashConfig
from repro.core import LiteworpAgent, LiteworpConfig
from repro.faults import FaultController, FaultPlan
from repro.mobility import DynamicNeighborhood, RandomWaypointModel, WaypointConfig
from repro.experiments import (
    ScenarioConfig,
    TABLE2,
    build_scenario,
    run_fig10,
    run_fig8,
    run_fig9,
    run_scenario,
)
from repro.metrics import MetricsCollector, MetricsReport
from repro.net import Network, NetworkConfig, Topology, generate_connected_topology
from repro.routing import OnDemandRouting, RoutingConfig
from repro.sim import Simulator
from repro.traffic import TrafficConfig, TrafficGenerator

__version__ = "1.0.0"

__all__ = [
    "ATTACK_MODES",
    "CostModel",
    "CoverageParams",
    "DynamicNeighborhood",
    "FaultController",
    "FaultPlan",
    "LeashAgent",
    "LeashConfig",
    "LiteworpAgent",
    "LiteworpConfig",
    "MetricsCollector",
    "MetricsReport",
    "Network",
    "NetworkConfig",
    "OnDemandRouting",
    "RandomWaypointModel",
    "RoutingConfig",
    "ScenarioConfig",
    "WaypointConfig",
    "Simulator",
    "TABLE2",
    "Topology",
    "TrafficConfig",
    "TrafficGenerator",
    "WormholeCoordinator",
    "build_scenario",
    "detection_probability",
    "generate_connected_topology",
    "run_fig10",
    "run_fig8",
    "run_fig9",
    "run_scenario",
    "taxonomy_table",
]
