"""Unit tests for network assembly."""

import pytest

from repro.net.network import Network
from repro.net.topology import grid_topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


def build():
    topo = grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0)
    return Network(Simulator(), topo, RngRegistry(0)), topo


def test_one_node_per_placement():
    network, topo = build()
    assert set(network.node_ids()) == set(topo.node_ids)
    for node_id in topo.node_ids:
        assert network.node(node_id).position == topo.positions[node_id]


def test_neighbors_match_topology():
    network, topo = build()
    assert set(network.neighbors(1)) == {0, 2}


def test_common_neighbors():
    network, _ = build()
    assert set(network.common_neighbors(0, 2)) == {1}


def test_frames_flow_between_nodes():
    network, _ = build()
    from repro.net.packet import HelloPacket
    seen = []
    network.node(1).add_listener(seen.append)
    network.node(0).broadcast(HelloPacket(sender=0), jitter=0.0)
    network.sim.run()
    assert len(seen) == 1


def test_set_high_power_extends_reach():
    network, _ = build()
    from repro.net.packet import HelloPacket
    seen = []
    network.node(2).add_listener(seen.append)
    network.set_high_power(0, 2.0)
    network.node(0).broadcast(
        HelloPacket(sender=0), jitter=0.0, tx_range=network.radio.tx_range(0)
    )
    network.sim.run()
    assert len(seen) == 1  # 50 m away but high-power reaches 60 m


def test_set_high_power_invalid():
    network, _ = build()
    with pytest.raises(ValueError):
        network.set_high_power(0, 0)


def test_emit_stamps_time():
    network, _ = build()
    network.sim.schedule(2.0, network.emit, "checkpoint", foo=1)
    network.sim.run()
    record = network.trace.first("checkpoint")
    assert record is not None and record.time == 2.0 and record["foo"] == 1
