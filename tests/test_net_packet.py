"""Unit tests for packet and frame definitions."""

from repro.net.packet import (
    AlertPacket,
    DataPacket,
    Frame,
    HelloPacket,
    HelloReplyPacket,
    NeighborListPacket,
    RouteErrorPacket,
    RouteReply,
    RouteRequest,
)


def test_request_key_stable_across_hops():
    request = RouteRequest(origin=1, request_id=5, target=9, hop_count=0, path=(1,))
    forwarded = request.forwarded_by(4)
    assert request.key() == forwarded.key()
    assert forwarded.hop_count == 1
    assert forwarded.path == (1, 4)


def test_request_keys_distinguish_discoveries():
    a = RouteRequest(origin=1, request_id=5, target=9)
    b = RouteRequest(origin=1, request_id=6, target=9)
    c = RouteRequest(origin=2, request_id=5, target=9)
    assert a.key() != b.key()
    assert a.key() != c.key()


def test_reply_key_matches_request_family():
    request = RouteRequest(origin=1, request_id=5, target=9)
    reply = RouteReply(origin=1, request_id=5, target=9)
    assert reply.key()[1:] == request.key()[1:]
    assert reply.key()[0] == "REP"


def test_data_key_includes_sequence():
    a = DataPacket(origin=1, destination=2, flow_id=2, sequence=1)
    b = DataPacket(origin=1, destination=2, flow_id=2, sequence=2)
    assert a.key() != b.key()


def test_data_is_not_control():
    assert not DataPacket().is_control
    assert RouteRequest().is_control
    assert RouteReply().is_control


def test_uids_unique():
    packets = [HelloPacket(sender=i) for i in range(10)]
    assert len({p.uid for p in packets}) == 10


def test_neighbor_list_auth_lookup():
    packet = NeighborListPacket(sender=1, neighbors=(2, 3), auths=((2, b"t2"), (3, b"t3")))
    assert packet.auth_for(2) == b"t2"
    assert packet.auth_for(4) is None


def test_neighbor_list_size_scales():
    small = NeighborListPacket(sender=1, neighbors=(2,), auths=((2, b"t"),))
    large = NeighborListPacket(
        sender=1, neighbors=tuple(range(2, 12)), auths=tuple((i, b"t") for i in range(2, 12))
    )
    assert large.size_bytes > small.size_bytes


def test_route_error_carries_inner_key():
    reply = RouteReply(origin=1, request_id=2, target=3)
    rerr = RouteErrorPacket(reporter=5, inner_key=reply.key())
    assert rerr.inner_key == reply.key()
    assert rerr.key()[0] == "RERR"


def test_frame_broadcast_vs_unicast():
    packet = HelloPacket(sender=1)
    broadcast = Frame(packet=packet, transmitter=1)
    unicast = Frame(packet=packet, transmitter=1, link_dst=2)
    assert broadcast.is_broadcast
    assert not unicast.is_broadcast


def test_frame_size_adds_header():
    packet = DataPacket(payload_size=64)
    frame = Frame(packet=packet, transmitter=1)
    assert frame.size_bytes == 64 + 12


def test_frame_describe_fields():
    frame = Frame(
        packet=RouteRequest(origin=1, request_id=2, target=3),
        transmitter=7,
        link_dst=None,
        prev_hop=6,
    )
    d = frame.describe()
    assert d["tx"] == 7
    assert d["prev"] == 6
    assert d["dst"] is None
    assert d["packet"][0] == "REQ"


def test_all_packets_have_positive_size():
    for packet in (
        HelloPacket(),
        HelloReplyPacket(),
        NeighborListPacket(),
        RouteRequest(),
        RouteReply(),
        DataPacket(),
        AlertPacket(),
        RouteErrorPacket(),
    ):
        assert packet.size_bytes > 0
