"""Tests for lowest-ID clustering and its wormhole corruption."""

import pytest

from repro.clustering.lowest_id import (
    ClusterAnnounce,
    ClusteringConfig,
    ClusterWormhole,
    LowestIdClustering,
    cluster_integrity,
)
from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.crypto.keys import PairwiseKeyManager
from repro.net.topology import Topology, grid_topology
from tests.conftest import Harness


def two_islands():
    """Two 4-node cliques ~500 m apart: no radio path between them."""
    positions = {}
    for i in range(4):
        positions[i] = (i * 15.0, 0.0)            # island A: ids 0..3
    for i in range(4):
        positions[10 + i] = (500.0 + i * 15.0, 0.0)  # island B: ids 10..13
    return Topology(positions=positions, tx_range=50.0)


def build(topology, liteworp_ids=(), wormhole=None):
    harness = Harness(topology)
    keys = PairwiseKeyManager()
    adjacency = topology.adjacency()
    agents = {}
    for node_id in topology.node_ids:
        if node_id in liteworp_ids:
            lw = LiteworpAgent(
                harness.sim, harness.node(node_id), keys.enroll(node_id),
                LiteworpConfig(), harness.trace,
            )
            lw.install_oracle(adjacency)
        agents[node_id] = LowestIdClustering(
            harness.sim, harness.node(node_id), ClusteringConfig(), harness.trace
        )
    attacker = None
    if wormhole is not None:
        near, far = wormhole
        attacker = ClusterWormhole(
            harness.sim, harness.node(near), harness.node(far), harness.trace
        )
        attacker.activate()
    for agent in agents.values():
        agent.start()
    return harness, agents, attacker


def test_single_clique_elects_lowest_id():
    topology = grid_topology(columns=3, rows=1, spacing=10.0, tx_range=30.0)
    harness, agents, _ = build(topology)
    harness.run(10.0)
    assert agents[0].is_head
    assert agents[1].head == 0
    assert agents[2].head == 0


def test_islands_elect_independent_heads():
    harness, agents, _ = build(two_islands())
    harness.run(10.0)
    assert agents[0].is_head
    assert agents[10].is_head
    for member in (1, 2, 3):
        assert agents[member].head == 0
    for member in (11, 12, 13):
        assert agents[member].head == 10


def test_integrity_clean_without_attack():
    topology = two_islands()
    harness, agents, _ = build(topology)
    harness.run(10.0)
    audit = cluster_integrity(agents, topology)
    assert audit["ok"]
    assert audit["heads"] == [0, 10]
    assert audit["broken_memberships"] == []


def test_wormhole_creates_phantom_memberships():
    """Replaying island A's head announcement into island B makes B's
    nodes join a head 500 m away."""
    topology = two_islands()
    harness, agents, attacker = build(topology, wormhole=(3, 13))
    harness.run(10.0)
    audit = cluster_integrity(agents, topology)
    assert attacker.replayed >= 1
    assert not audit["ok"]
    # Some island-B node believes head 0 (unreachable) is its head.
    assert any(agents[m].head == 0 for m in (10, 11, 12))
    assert audit["broken_memberships"]


def test_liteworp_blocks_phantom_memberships():
    topology = two_islands()
    liteworp_ids = tuple(topology.node_ids)
    harness, agents, attacker = build(
        topology, liteworp_ids=liteworp_ids, wormhole=(3, 13)
    )
    harness.run(10.0)
    audit = cluster_integrity(agents, topology)
    # Replays happened but every one was rejected as non-neighbor.
    assert attacker.replayed >= 1
    assert audit["ok"], audit
    assert harness.trace.count("frame_rejected", reason="nonneighbor") >= 1


def test_integrity_flags_unassigned():
    topology = grid_topology(columns=2, rows=1, spacing=10.0, tx_range=30.0)
    harness, agents, _ = build(topology)
    # Do not run the sim: nobody has a head yet.
    audit = cluster_integrity(agents, topology)
    assert not audit["ok"]
    assert audit["unassigned"] == [0, 1]


def test_config_validation():
    with pytest.raises(ValueError):
        ClusteringConfig(start_time=-1)
    with pytest.raises(ValueError):
        ClusteringConfig(slot=0)


def test_announce_packet_key():
    assert ClusterAnnounce(head=5).key() == ("CH", 5)
    assert not ClusterAnnounce(head=5).monitored  # one-hop message
