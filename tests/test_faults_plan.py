"""FaultPlan DSL: validation, canonical ordering, JSON round-trip."""

import pytest

from repro.faults.plan import (
    ClockDrift,
    CrashRecover,
    CrashStop,
    EnergyDepletion,
    FaultPlan,
    LinkFlap,
    LossBurst,
    MacSaturation,
)


def sample_plan() -> FaultPlan:
    return FaultPlan.of(
        CrashStop(at=10.0, node=3),
        CrashRecover(at=20.0, node=5, downtime=15.0),
        EnergyDepletion(at=30.0, node=7),
        LinkFlap(at=12.0, a=1, b=2, downtime=4.0),
        LossBurst(at=40.0, probability=0.2, duration=25.0),
        MacSaturation(at=5.0, node=0, duration=3.0, rate=20.0),
        ClockDrift(at=0.0, node=4, skew=-0.1),
    )


def test_plan_sorts_by_time():
    plan = sample_plan()
    times = [fault.at for fault in plan]
    assert times == sorted(times)


def test_plan_order_independent():
    faults = tuple(sample_plan())
    assert FaultPlan(faults=faults) == FaultPlan(faults=tuple(reversed(faults)))


def test_crashed_and_permanent_queries():
    plan = sample_plan()
    assert plan.crashed_nodes() == (3, 5, 7)
    assert plan.permanently_down() == (3, 7)


def test_end_time_covers_recovery():
    plan = sample_plan()
    assert plan.end_time() == 65.0  # loss burst: 40 + 25
    assert FaultPlan().end_time() == 0.0
    assert CrashRecover(at=20.0, downtime=15.0).end_time() == 35.0


def test_extended_returns_new_plan():
    plan = FaultPlan.of(CrashStop(at=1.0, node=1))
    bigger = plan.extended(CrashStop(at=0.5, node=2))
    assert len(plan) == 1
    assert len(bigger) == 2
    assert bigger.faults[0].node == 2  # re-sorted


def test_json_round_trip():
    plan = sample_plan()
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_json_is_stable():
    plan = sample_plan()
    assert plan.to_json() == FaultPlan(faults=tuple(reversed(plan.faults))).to_json()


@pytest.mark.parametrize(
    "fault",
    [
        CrashStop(at=-1.0, node=0),
        CrashRecover(at=0.0, node=0, downtime=0.0),
        LinkFlap(at=0.0, a=1, b=1),
        LinkFlap(at=0.0, a=1, b=2, downtime=-1.0),
        LossBurst(at=0.0, probability=0.0),
        LossBurst(at=0.0, probability=1.0),
        LossBurst(at=0.0, probability=0.5, duration=0.0),
        MacSaturation(at=0.0, rate=0.0),
        MacSaturation(at=0.0, payload_size=0),
        ClockDrift(at=0.0, skew=0.6),
    ],
)
def test_malformed_faults_rejected_eagerly(fault):
    with pytest.raises(ValueError):
        FaultPlan.of(fault)


def test_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan.from_dict({"faults": [{"kind": "gamma_ray", "at": 1.0}]})


def test_from_dict_rejects_bad_fields():
    with pytest.raises(ValueError, match="bad fields"):
        FaultPlan.from_dict({"faults": [{"kind": "crash_stop", "at": 1.0, "bogus": 2}]})


def test_from_dict_rejects_non_list():
    with pytest.raises(ValueError, match="'faults' list"):
        FaultPlan.from_dict({"faults": "nope"})


def test_from_dict_rejects_entry_without_kind():
    with pytest.raises(ValueError, match="'kind' field"):
        FaultPlan.from_dict({"faults": [{"at": 1.0}]})
